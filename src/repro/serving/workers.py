"""Worker pool and micro-batching scheduler.

Two pieces of the serving engine's execution substrate:

* :class:`WorkerPool` — a counted wrapper around
  :class:`concurrent.futures.ThreadPoolExecutor`.  The service uses one
  pool to shard per-term detection (an expanded query scores each
  community term independently — an embarrassingly parallel fan-out) and
  a second, separate pool to execute batched submissions, so a batch task
  that itself fans out per-term work can never deadlock waiting on its
  own pool.

* :class:`MicroBatchScheduler` — an asynchronous submission front.  Calls
  arriving within one batching window are buffered; duplicate keys in a
  window collapse onto a single execution whose result fans back out to
  every submitter (the batched complement of in-flight single-flight).
  A burst of identical popular queries therefore costs one scoring pass.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Dict, Generic, Hashable, Iterable, List, Tuple, TypeVar

from repro.serving.errors import ServiceClosedError

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")
T = TypeVar("T")
R = TypeVar("R")


@dataclass(frozen=True)
class PoolStats:
    submitted: int
    completed: int
    failed: int

    @property
    def outstanding(self) -> int:
        return self.submitted - self.completed - self.failed


class WorkerPool:
    """A ThreadPoolExecutor with task accounting and a strict-order map."""

    def __init__(self, max_workers: int, name: str = "repro-serving") -> None:
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self.max_workers = max_workers
        self._executor = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix=name
        )
        self._lock = threading.Lock()
        self._submitted = 0  # guarded-by: _lock
        self._completed = 0  # guarded-by: _lock
        self._failed = 0  # guarded-by: _lock
        self._closed = False  # guarded-by: _lock

    def submit(self, fn: Callable[..., V], *args, **kwargs) -> "Future[V]":
        with self._lock:
            if self._closed:
                raise ServiceClosedError("worker pool is shut down")
            self._submitted += 1
        try:
            future = self._executor.submit(fn, *args, **kwargs)
        except RuntimeError as exc:
            with self._lock:
                self._submitted -= 1
                closed = self._closed
            if closed:
                # shutdown() won the race between our closed-check and
                # the executor call; surface the typed error, not the
                # raw one
                raise ServiceClosedError("worker pool is shut down") from exc
            # a RuntimeError on an open pool is a real failure (e.g.
            # thread-spawn exhaustion), not a shutdown — don't mask it
            raise
        future.add_done_callback(self._account)
        return future

    def map_ordered(
        self, fn: Callable[[T], R], items: Iterable[T]
    ) -> List[R]:
        """Apply ``fn`` to every item on the pool; results in input order.

        Unlike ``Executor.map`` this submits everything up front and
        surfaces the *first* failure after all tasks settle, so one bad
        item cannot strand siblings mid-flight.
        """
        futures = [self.submit(fn, item) for item in items]
        results: List[R] = []
        first_error: BaseException | None = None
        for future in futures:
            try:
                results.append(future.result())
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                if first_error is None:
                    first_error = exc
        if first_error is not None:
            raise first_error
        return results

    def _account(self, future: "Future[V]") -> None:
        with self._lock:
            if future.exception() is not None:
                self._failed += 1
            else:
                self._completed += 1

    def stats(self) -> PoolStats:
        with self._lock:
            return PoolStats(
                submitted=self._submitted,
                completed=self._completed,
                failed=self._failed,
            )

    def shutdown(self, wait: bool = True) -> None:
        with self._lock:
            self._closed = True
        self._executor.shutdown(wait=wait)


class MicroBatchScheduler(Generic[K, V]):
    """Buffer submissions briefly; execute each distinct key once per batch.

    ``submit(key, fn)`` returns a future immediately.  A background
    dispatcher wakes at most every ``window_seconds`` (or immediately
    when a batch reaches ``max_batch`` distinct keys), moves the pending
    batch to the pool, and fans each key's single result out to all of
    its submitters.
    """

    def __init__(
        self,
        pool: WorkerPool,
        window_seconds: float = 0.002,
        max_batch: int = 64,
    ) -> None:
        if window_seconds <= 0:
            raise ValueError(
                f"window_seconds must be positive, got {window_seconds}"
            )
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self.pool = pool
        self.window_seconds = window_seconds
        self.max_batch = max_batch
        self._condition = threading.Condition()
        #: key -> (fn to run once, futures awaiting the result)
        self._pending: Dict[K, Tuple[Callable[[], V], List["Future[V]"]]] = {}  # guarded-by: _condition
        self._closed = False  # guarded-by: _condition
        self._batches_dispatched = 0  # guarded-by: _condition
        self._coalesced = 0  # guarded-by: _condition
        self._dispatcher = threading.Thread(
            target=self._run, name="repro-serving-batcher", daemon=True
        )
        self._dispatcher.start()

    def submit(self, key: K, fn: Callable[[], V]) -> "Future[V]":
        future: "Future[V]" = Future()
        with self._condition:
            if self._closed:
                raise ServiceClosedError("scheduler is shut down")
            entry = self._pending.get(key)
            if entry is not None:
                entry[1].append(future)
                self._coalesced += 1
            else:
                self._pending[key] = (fn, [future])
            # always wake the dispatcher: it may be parked on an empty queue
            self._condition.notify()
        return future

    def flush(self) -> None:
        """Dispatch whatever is pending right now (test/shutdown hook)."""
        with self._condition:
            batch = self._take_batch_locked()
        self._dispatch(batch)

    def _take_batch_locked(  # holds: _condition
        self,
    ) -> Dict[K, Tuple[Callable[[], V], List["Future[V]"]]]:
        batch = self._pending
        self._pending = {}
        return batch

    def _dispatch(
        self, batch: Dict[K, Tuple[Callable[[], V], List["Future[V]"]]]
    ) -> None:
        if not batch:
            return
        with self._condition:
            self._batches_dispatched += 1
        for _key, (fn, futures) in batch.items():
            try:
                self.pool.submit(self._run_entry, fn, futures)
            except ServiceClosedError as exc:
                # the pool shut down mid-dispatch: fail these futures
                # loudly instead of stranding their submitters forever
                for future in futures:
                    if not future.done():
                        future.set_exception(exc)

    @staticmethod
    def _run_entry(fn: Callable[[], V], futures: List["Future[V]"]) -> None:
        try:
            value = fn()
        except BaseException as exc:  # noqa: BLE001 - forwarded to waiters
            for future in futures:
                future.set_exception(exc)
        else:
            for future in futures:
                future.set_result(value)

    def _run(self) -> None:
        while True:
            with self._condition:
                if self._closed and not self._pending:
                    return
                if not self._pending:
                    self._condition.wait()
                    continue
                # a batch is forming: give stragglers one window to join,
                # but dispatch immediately once it reaches max_batch keys
                self._condition.wait_for(
                    lambda: len(self._pending) >= self.max_batch
                    or self._closed,
                    timeout=self.window_seconds,
                )
                batch = self._take_batch_locked()
            self._dispatch(batch)

    @property
    def batches_dispatched(self) -> int:
        with self._condition:
            return self._batches_dispatched

    @property
    def coalesced(self) -> int:
        """Submissions that piggybacked on another submission's execution."""
        with self._condition:
            return self._coalesced

    def close(self) -> None:
        with self._condition:
            self._closed = True
            self._condition.notify_all()
        self._dispatcher.join(timeout=2.0)
        self.flush()

"""Atomically hot-swappable serving state.

§6.3: *"The offline part of our system runs weekly"* while the online
path keeps answering queries.  The seed implementation reassigned the
offline artifacts and the online pipeline in two separate statements, so
a concurrent reader could observe a fresh domain store paired with a
stale pipeline.  Here the pair is frozen into one :class:`ServiceSnapshot`
and published with a single reference assignment — atomic under the GIL —
so every reader that pins a snapshot sees one internally-consistent
version of the world for the whole request.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.core.offline import OfflineArtifacts
from repro.core.online import OnlinePipeline
from repro.detector.palcounts import PalCountsDetector
from repro.expansion.domainstore import DomainStore
from repro.serving.errors import ServingError


@dataclass(frozen=True)
class ServiceSnapshot:
    """One immutable generation of serving state.

    Everything the online path needs hangs off the pipeline; the offline
    artifacts ride along for diagnostics and refresh (the weekly rebuild
    reuses the world model).  ``version`` increases by one per swap and is
    stamped onto every answer so clients (and tests) can prove they never
    observed a mixed generation.
    """

    version: int
    offline: OfflineArtifacts
    pipeline: OnlinePipeline

    @property
    def domain_store(self) -> DomainStore:
        return self.pipeline.domain_store

    @property
    def detector(self) -> PalCountsDetector:
        return self.pipeline.detector

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ServiceSnapshot(version={self.version}, "
            f"domains={self.domain_store.domain_count})"
        )


class SnapshotHolder:
    """Publish/read point for the current :class:`ServiceSnapshot`.

    Readers call :meth:`get` — a single attribute read, never blocked by
    a writer.  Writers serialise on a lock only to allocate monotonically
    increasing versions; the publication itself is one reference store,
    so there is no window in which a reader can see partially-swapped
    state (the rolling, zero-downtime refresh).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._current: ServiceSnapshot | None = None

    def get(self) -> ServiceSnapshot | None:
        """The current snapshot (``None`` before the first publish)."""
        return self._current

    @property
    def version(self) -> int:
        """Version of the current snapshot (0 before the first publish)."""
        snapshot = self._current
        return snapshot.version if snapshot is not None else 0

    def publish(
        self,
        offline: OfflineArtifacts,
        pipeline: OnlinePipeline,
        expected_version: int | None = None,
        version: int | None = None,
    ) -> ServiceSnapshot:
        """Atomically install a new generation; returns it.

        ``expected_version`` is an optional compare-and-swap guard for
        writers whose new generation was *derived from* a specific old
        one (the delta-refresh path): if another writer published in
        between, installing the derived state would silently drop that
        generation's changes, so the publish fails loudly instead.

        ``version`` installs the generation at an explicit version
        instead of ``current + 1``.  This is the artifact warm-start
        path: a loaded artifact carries the version it was *saved* at in
        its manifest, and every replica loading the same artifact must
        serve (and cache-key) it under that same version — otherwise two
        replicas could hand out identical answers stamped with different
        generations.  Versions stay strictly monotonic: publishing at or
        below the current version raises :class:`StaleSnapshotError`.
        """
        with self._lock:
            if (
                expected_version is not None
                and self.version != expected_version
            ):
                raise StaleSnapshotError(
                    f"snapshot moved to version {self.version} while a "
                    f"derived generation expected {expected_version}"
                )
            if version is None:
                version = self.version + 1
            elif version <= self.version:
                raise StaleSnapshotError(
                    f"cannot publish version {version}: the holder is "
                    f"already at version {self.version} (versions are "
                    "strictly monotonic)"
                )
            snapshot = ServiceSnapshot(
                version=version,
                offline=offline,
                pipeline=pipeline,
            )
            self._current = snapshot
        return snapshot


class StaleSnapshotError(ServingError):
    """A derived generation lost the publish race (CAS mismatch).

    Lives in the :class:`~repro.serving.errors.ServingError` hierarchy
    (which itself subclasses ``RuntimeError``, so pre-existing handlers
    keep catching it) — the fleet's wire layer maps it by name and the
    router keys version-skew retries on it.
    """

"""Typed failure modes of the serving tier.

The online path of the paper is interactive (Table 9: expansion < 100 ms,
detection < 1 s), so the serving layer fails *fast and typed* rather than
queueing unboundedly: a saturated service raises
:class:`ServiceOverloadedError` instead of letting latency collapse.
"""

from __future__ import annotations


class ServingError(RuntimeError):
    """Base class for every serving-tier failure."""


class ServiceClosedError(ServingError):
    """The service was shut down; no further queries are accepted."""


class AdmissionProtocolError(ServingError):
    """The admission gate was misused (release without matching acquire)."""


class DeadlineExceededError(ServingError):
    """The request's end-to-end deadline budget ran out.

    Terminal by design: the router does **not** fail a deadline miss
    over to another replica (the budget is already gone) — it surfaces
    the miss so the caller's own timeout machinery stays honest.
    """

    def __init__(
        self,
        message: str,
        *,
        budget_seconds: float | None = None,
        elapsed_seconds: float | None = None,
    ) -> None:
        super().__init__(message)
        self.budget_seconds = budget_seconds
        self.elapsed_seconds = elapsed_seconds


class ServiceOverloadedError(ServingError):
    """Admission control rejected the request (queue full or wait too long).

    Carries enough context for a client to implement sensible backoff.
    """

    def __init__(
        self,
        reason: str,
        *,
        in_flight: int = 0,
        waiting: int = 0,
    ) -> None:
        super().__init__(
            f"service overloaded ({reason}): "
            f"{in_flight} in flight, {waiting} waiting"
        )
        self.reason = reason
        self.in_flight = in_flight
        self.waiting = waiting


class TenantOverloadedError(ServiceOverloadedError):
    """One tenant's admission quota rejected the request.

    Subclasses :class:`ServiceOverloadedError` so existing backoff
    handling keeps working, but the type distinguishes "this tenant is
    over *its own* quota" from global saturation — a client of a healthy
    tenant should never see this for a noisy neighbour's traffic.
    """

    def __init__(
        self,
        tenant: str,
        reason: str,
        *,
        in_flight: int = 0,
        waiting: int = 0,
    ) -> None:
        super().__init__(
            f"tenant {tenant!r} {reason}",
            in_flight=in_flight,
            waiting=waiting,
        )
        self.tenant = tenant


class UnknownTenantError(ServingError):
    """The request names a tenant this process does not serve."""

    def __init__(self, tenant: str, known=()) -> None:
        known_names = ", ".join(sorted(known)) or "none"
        super().__init__(
            f"unknown tenant {tenant!r} (serving: {known_names})"
        )
        self.tenant = tenant
        self.known = tuple(sorted(known))


class TenantStageError(ServingError):
    """A tenant-scoped promote was attempted without a staged generation."""

"""The `ExpertService` facade — e# as a traffic-serving engine.

One built :class:`~repro.core.esharp.ESharp` system answers queries for
many concurrent clients through this facade:

* every request **pins one snapshot** (domain store + detector +
  pipeline) for its whole execution, so a weekly-refresh swap happening
  underneath can never mix generations within an answer;
* results are cached in a bounded LRU(+TTL) keyed on
  ``(tenant, snapshot version, normalised query, threshold)`` — a swap
  simply starts a new key space and the old generation ages out;
* duplicate in-flight queries are coalesced (single-flight), and the
  asynchronous :meth:`submit` path micro-batches duplicates arriving
  within one scheduling window;
* per-term detection of an expanded query is sharded across a worker
  pool (each community term scores independently, §5 union semantics);
* admission control bounds in-flight work and queue depth, rejecting the
  overflow with :class:`~repro.serving.errors.ServiceOverloadedError`.

Tenancy: every service carries a ``tenant`` label (``"default"`` for the
classic single-tenant deployment) which prefixes every cache,
single-flight, and micro-batch key — so a
:class:`~repro.serving.tenancy.MultiTenantService` can share one cache,
one batcher, and one fair admission controller across many tenants with
zero cross-tenant key collisions.  The shared components are injectable;
a standalone service constructs (and owns) its own, keeping the
single-tenant path exactly as before.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Callable, Iterable, List, Tuple

from repro.detector.ranking import RankedExpert
from repro.serving.admission import AdmissionController, AdmissionStats
from repro.serving.cache import CacheInfo, LRUCache
from repro.serving.errors import DeadlineExceededError, ServiceClosedError
from repro.serving.singleflight import SingleFlight
from repro.serving.snapshot import ServiceSnapshot, SnapshotHolder
from repro.serving.workers import MicroBatchScheduler, PoolStats, WorkerPool
from repro.utils.text import phrase_key

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.esharp import ESharp
    from repro.core.incremental import DeltaRefreshStats
    from repro.querylog.records import Impression
    from repro.querylog.store import QueryLogStore

#: the tenant name of every pre-tenancy deployment — a plain
#: ``ExpertService`` is the trivial one-tenant case of the registry
DEFAULT_TENANT = "default"


@dataclass(frozen=True)
class ServiceConfig:
    """Every serving knob, with defaults sized for a laptop-scale deploy."""

    #: threads sharding per-term detection of expanded queries
    detection_workers: int = 4
    #: threads executing micro-batched asynchronous submissions
    batch_workers: int = 4
    #: result-cache entries (0 disables caching)
    cache_capacity: int = 2048
    #: result-cache entry lifetime (None = never expires)
    cache_ttl_seconds: float | None = None
    #: coalesce duplicate in-flight queries
    single_flight: bool = True
    max_in_flight: int = 16
    max_queue_depth: int = 128
    admission_timeout_seconds: float = 10.0
    #: how long the async scheduler lets a micro-batch form
    batch_window_seconds: float = 0.002
    max_batch: int = 64
    #: how long close() waits for admitted requests to finish before
    #: tearing the pools down under them
    drain_timeout_seconds: float = 30.0

    def __post_init__(self) -> None:
        if self.detection_workers < 1 or self.batch_workers < 1:
            raise ValueError("worker counts must be >= 1")
        if self.drain_timeout_seconds < 0:
            raise ValueError("drain_timeout_seconds must be >= 0")


@dataclass(frozen=True)
class ServedAnswer:
    """One answered query, stamped with serving provenance."""

    query: str
    experts: Tuple[RankedExpert, ...]
    terms: Tuple[str, ...]
    matched_domain: str | None
    #: which generation of the domain collection answered
    snapshot_version: int
    #: served straight from the result cache
    cache_hit: bool
    #: piggybacked on another request's in-flight computation
    coalesced: bool
    expansion_seconds: float
    detection_seconds: float
    total_seconds: float
    #: which tenant's corpus answered (``"default"`` pre-tenancy)
    tenant: str = DEFAULT_TENANT


@dataclass(frozen=True)
class PartialPool:
    """A shard-scoped partial answer: best-per-user over a subset of terms.

    The fleet router scatters an expanded query's terms across replica
    shards; each shard reduces its terms to one ``(term index, expert)``
    entry per candidate user — the entry with the highest score, ties
    broken towards the **lowest global term index** (the same
    first-term-wins rule the single-replica union applies).  Merging
    shard pools under the identical rule therefore reproduces the
    single-replica ranking exactly.
    """

    query: str
    snapshot_version: int
    #: ``(global term index, expert)`` per candidate user, user-id order
    entries: Tuple[Tuple[int, RankedExpert], ...]
    #: which tenant's shard produced this pool — the merge refuses to
    #: combine pools across tenants
    tenant: str = DEFAULT_TENANT


@dataclass(frozen=True)
class TenantHealth:
    """One tenant's slice of a replica's vitals.

    A single scalar ``snapshot_version`` would silently alias tenants
    (tenant versions are independent monotonic sequences), so health and
    stats carry this per-tenant breakdown alongside the legacy scalar.
    """

    tenant: str
    snapshot_version: int
    #: hit ratio of *this tenant's* cache traffic (shared caches report
    #: per-tenant numbers from the service's own counters)
    cache_hit_ratio: float
    requests: int
    partial_requests: int = 0

    def to_dict(self) -> dict:
        return {
            "tenant": self.tenant,
            "snapshot_version": self.snapshot_version,
            "cache_hit_ratio": self.cache_hit_ratio,
            "requests": self.requests,
            "partial_requests": self.partial_requests,
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "TenantHealth":
        return cls(
            tenant=str(raw.get("tenant", DEFAULT_TENANT)),
            snapshot_version=int(raw.get("snapshot_version", 0)),
            cache_hit_ratio=float(raw.get("cache_hit_ratio", 0.0)),
            requests=int(raw.get("requests", 0)),
            partial_requests=int(raw.get("partial_requests", 0)),
        )


@dataclass(frozen=True)
class ReplicaHealthReport:
    """The routing-relevant vitals of one serving replica.

    A fleet front-end makes health and routing decisions from exactly
    these fields: the snapshot version proves which generation the
    replica serves (a promotion in flight shows up as skew), the result
    cache's hit ratio signals how warm this replica is for its shard,
    and the admission gauges expose instantaneous load.
    """

    snapshot_version: int
    #: lifetime hit ratio of the result cache (0.0 when never used)
    cache_hit_ratio: float
    requests: int
    partial_requests: int
    in_flight: int
    waiting: int
    #: per-tenant version/hit-ratio breakdown (one entry — ``default``
    #: — on a single-tenant replica)
    tenants: Tuple[TenantHealth, ...] = ()

    def to_dict(self) -> dict:
        return {
            "snapshot_version": self.snapshot_version,
            "cache_hit_ratio": self.cache_hit_ratio,
            "requests": self.requests,
            "partial_requests": self.partial_requests,
            "in_flight": self.in_flight,
            "waiting": self.waiting,
            "tenants": [tenant.to_dict() for tenant in self.tenants],
        }

    def tenant_version(self, tenant: str) -> int | None:
        """The snapshot version one tenant serves (None when unknown)."""
        for entry in self.tenants:
            if entry.tenant == tenant:
                return entry.snapshot_version
        if tenant == DEFAULT_TENANT:
            return self.snapshot_version
        return None


@dataclass(frozen=True)
class ServiceStats:
    """Aggregated serving counters (the ops surface)."""

    requests: int
    snapshot_version: int
    cache: CacheInfo
    admission: AdmissionStats
    flight_leaders: int
    flight_coalesced: int
    batches_dispatched: int
    batch_coalesced: int
    detection_pool: PoolStats
    #: completed zero-downtime domain rebuilds on this service
    refreshes: int = 0
    #: wall-clock of the most recent rebuild (None before the first)
    last_refresh_seconds: float | None = None
    #: completed incremental (delta-ingest) refreshes on this service
    delta_refreshes: int = 0
    #: wall-clock of the most recent delta refresh (None before the first)
    last_delta_refresh_seconds: float | None = None
    #: accounting of the most recent delta refresh (None before the first)
    last_delta_refresh: "DeltaRefreshStats | None" = None
    #: shard-scoped partial-scoring requests served (the fleet path)
    partial_requests: int = 0
    #: per-tenant version + cache-hit-ratio breakdown
    tenants: Tuple[TenantHealth, ...] = ()

    @property
    def cache_hit_rate(self) -> float:
        return self.cache.hit_rate

    @property
    def cache_hit_ratio(self) -> float:
        """Alias of :attr:`cache_hit_rate` (the fleet router's name)."""
        return self.cache.hit_rate


class ExpertService:
    """Concurrent query serving over a built e# system."""

    def __init__(
        self,
        system: "ESharp",
        config: ServiceConfig | None = None,
        *,
        tenant: str = DEFAULT_TENANT,
        cache: LRUCache | None = None,
        flight: SingleFlight | None = None,
        admission=None,
        detect_pool: WorkerPool | None = None,
        batch_pool: WorkerPool | None = None,
        batcher: MicroBatchScheduler | None = None,
    ) -> None:
        """Serve one built system, optionally as one tenant of a shared
        deployment.

        The keyword components (``cache``, ``flight``, ``admission``,
        the pools and ``batcher``) exist for
        :class:`~repro.serving.tenancy.MultiTenantService`, which shares
        one of each across every tenant; when injected, this service
        keys its entries by its ``tenant`` label and does **not** tear
        the component down on :meth:`close`.  Omitted (the single-tenant
        default) the service builds and owns its own, exactly as before
        tenancy existed.
        """
        if not system.is_built:
            raise ValueError(
                "ExpertService requires a built system; call ESharp.build() first"
            )
        self.system = system
        self.config = config or ServiceConfig()
        self.tenant = tenant
        self._snapshots: SnapshotHolder = system.snapshots
        self._owns_cache = cache is None
        self._cache: LRUCache = (
            cache
            if cache is not None
            else LRUCache(
                self.config.cache_capacity, self.config.cache_ttl_seconds
            )
        )
        if flight is not None:
            self._flight: SingleFlight | None = flight
        else:
            self._flight = SingleFlight() if self.config.single_flight else None
        self._owns_admission = admission is None
        self._admission = (
            admission
            if admission is not None
            else AdmissionController(
                max_in_flight=self.config.max_in_flight,
                max_queue_depth=self.config.max_queue_depth,
                timeout_seconds=self.config.admission_timeout_seconds,
            )
        )
        #: tenant-aware controllers take the tenant name per call
        self._admission_per_tenant = getattr(
            self._admission, "per_tenant", False
        )
        self._owns_detect_pool = detect_pool is None
        self._detect_pool = (
            detect_pool
            if detect_pool is not None
            else WorkerPool(self.config.detection_workers, name="repro-detect")
        )
        self._owns_batch_pool = batch_pool is None and batcher is None
        self._batch_pool = (
            batch_pool
            if batch_pool is not None
            else (
                WorkerPool(self.config.batch_workers, name="repro-batch")
                if batcher is None
                else None
            )
        )
        self._owns_batcher = batcher is None
        self._batcher: MicroBatchScheduler = (
            batcher
            if batcher is not None
            else MicroBatchScheduler(
                self._batch_pool,
                window_seconds=self.config.batch_window_seconds,
                max_batch=self.config.max_batch,
            )
        )
        self._counter_lock = threading.Lock()
        #: serialises refreshes: two interleaved rebuilds could publish
        #: the staler build last, and the incremental refresher's state
        #: must advance one generation at a time
        self._refresh_lock = threading.Lock()
        self._requests = 0  # guarded-by: _counter_lock
        self._partials = 0  # guarded-by: _counter_lock
        # per-tenant cache accounting: a shared cache's global CacheInfo
        # cannot attribute hits to tenants, so each service counts its own
        self._cache_lookups = 0  # guarded-by: _counter_lock
        self._cache_hits = 0  # guarded-by: _counter_lock
        self._refreshes = 0  # guarded-by: _counter_lock
        self._last_refresh_seconds: float | None = None  # guarded-by: _counter_lock
        self._delta_refreshes = 0  # guarded-by: _counter_lock
        self._last_delta_refresh_seconds: float | None = None  # guarded-by: _counter_lock
        self._last_delta_refresh: "DeltaRefreshStats | None" = None  # guarded-by: _counter_lock
        # deliberately lock-free: a close() flag read racily on the hot
        # path, re-checked by admission under its own condition
        self._closed = False

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> bool:
        """Stop accepting work, drain in-flight requests, then release
        the pools (idempotent).

        Requests admitted before the close keep the pools they are
        executing on: new arrivals are rejected with
        :class:`ServiceClosedError`, the admission controller drains,
        and only then are the batcher and pools torn down — an admitted
        request never sees its worker pool vanish mid-computation.

        Shared components (a multi-tenant deployment injected them) are
        left running: this service drains only *its own tenant's*
        admitted work and never tears down infrastructure other tenants
        are still serving on.

        Returns ``True`` when every admitted request drained within
        ``drain_timeout_seconds``; ``False`` means the drain timed out
        and stragglers lost their pools (they surface
        :class:`ServiceClosedError`) — the caller chose bounded
        shutdown over waiting forever, but the outcome is not silent.
        """
        self._closed = True
        if self._owns_admission:
            self._admission.close()
            remaining = self._admission.drain(
                self.config.drain_timeout_seconds
            )
        elif self._admission_per_tenant:
            remaining = self._admission.drain_tenant(
                self.tenant, self.config.drain_timeout_seconds
            )
        else:
            remaining = self._admission.drain(
                self.config.drain_timeout_seconds
            )
        if self._owns_batcher:
            self._batcher.close()
        if self._owns_batch_pool and self._batch_pool is not None:
            self._batch_pool.shutdown()
        if self._owns_detect_pool:
            self._detect_pool.shutdown()
        return remaining == 0

    def __enter__(self) -> "ExpertService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def _slot(self):
        """One admission slot — scoped to this tenant on shared gates."""
        if self._admission_per_tenant:
            return self._admission.slot(self.tenant)
        return self._admission.slot()

    # -- the synchronous serving path -------------------------------------------

    def query(
        self,
        query: str,
        min_zscore: float | None = None,
        *,
        budget_seconds: float | None = None,
    ) -> ServedAnswer:
        """Answer one query against the current snapshot.

        Raises :class:`ServiceOverloadedError` under backpressure and
        :class:`ServiceClosedError` after :meth:`close`.  With
        ``budget_seconds``, a request whose admission wait already spent
        the deadline fails typed (:class:`DeadlineExceededError`) before
        any detection work runs — nobody is waiting for the answer.
        """
        started = time.perf_counter()
        if self._closed:
            raise ServiceClosedError("service is closed")
        self._check_budget(budget_seconds, started)
        with self._slot():
            self._check_budget(budget_seconds, started)
            snapshot = self._require_snapshot()
            threshold = (
                min_zscore
                if min_zscore is not None
                else snapshot.detector.ranking.min_zscore
            )
            key = (self.tenant, snapshot.version, phrase_key(query), threshold)
            cached = self._cache.get(key)
            with self._counter_lock:
                self._requests += 1
                self._cache_lookups += 1
                if cached is not None:
                    self._cache_hits += 1
            if cached is not None:
                return replace(
                    cached,
                    cache_hit=True,
                    coalesced=False,
                    total_seconds=time.perf_counter() - started,
                )

            def compute() -> ServedAnswer:
                return self._compute(snapshot, query, threshold)

            if self._flight is not None:
                answer, leader = self._flight.do(key, compute)
            else:
                answer, leader = compute(), True
            if leader:
                self._cache.put(key, answer)
            return replace(
                answer,
                coalesced=not leader,
                total_seconds=time.perf_counter() - started,
            )

    # -- the shard-scoped partial path (the fleet's scatter unit) ----------------

    def score_partial(
        self,
        query: str,
        indexed_terms: "Iterable[Tuple[int, str]]",
        *,
        budget_seconds: float | None = None,
    ) -> PartialPool:
        """Score a subset of an expanded query's terms on this replica.

        ``indexed_terms`` carries each term's **global** position in the
        full expansion, so the per-user reduction can apply the exact
        tie-break of the single-replica union (highest score wins, equal
        scores go to the earliest term) even though this replica sees
        only its shard's slice.  The fleet router merges shard pools
        under the same rule and gets a byte-identical ranking.

        Passes through admission control like :meth:`query` (a scatter
        leg is real detection work), pins one snapshot, shards per-term
        scoring across the detection pool, and caches the reduced pool
        under ``(tenant, version, 'partial', terms)`` — hedged
        duplicates of the same scatter leg coalesce via single-flight
        exactly like whole queries do.

        Raises :class:`ServiceOverloadedError` under backpressure and
        :class:`ServiceClosedError` after :meth:`close`.
        """
        if self._closed:
            raise ServiceClosedError("service is closed")
        started = time.perf_counter()
        self._check_budget(budget_seconds, started)
        indexed = tuple(
            (int(index), str(term)) for index, term in indexed_terms
        )
        with self._slot():
            self._check_budget(budget_seconds, started)
            snapshot = self._require_snapshot()
            key = (self.tenant, snapshot.version, "partial", indexed)
            cached = self._cache.get(key)
            with self._counter_lock:
                self._partials += 1
                self._cache_lookups += 1
                if cached is not None:
                    self._cache_hits += 1
            if cached is not None:
                return cached

            def compute() -> PartialPool:
                return self._compute_partial(snapshot, query, indexed)

            if self._flight is not None:
                pool, leader = self._flight.do(key, compute)
            else:
                pool, leader = compute(), True
            if leader:
                self._cache.put(key, pool)
            return pool

    def _compute_partial(
        self,
        snapshot: ServiceSnapshot,
        query: str,
        indexed: Tuple[Tuple[int, str], ...],
    ) -> PartialPool:
        pools = self._term_scorer(snapshot)([term for _, term in indexed])
        best: dict[int, Tuple[int, RankedExpert]] = {}
        for (index, _term), pool in zip(indexed, pools):
            for expert in pool:
                incumbent = best.get(expert.user_id)
                # strictly-greater keeps the earliest term on equal
                # scores because ``indexed`` arrives in ascending global
                # order — the same first-term-wins rule as score_terms
                if incumbent is None or expert.score > incumbent[1].score:
                    best[expert.user_id] = (index, expert)
        entries = tuple(
            sorted(best.values(), key=lambda entry: entry[1].user_id)
        )
        return PartialPool(
            query=query,
            snapshot_version=snapshot.version,
            entries=entries,
            tenant=self.tenant,
        )

    # -- the asynchronous, micro-batched path ------------------------------------

    def submit(
        self, query: str, min_zscore: float | None = None
    ) -> "Future[ServedAnswer]":
        """Enqueue a query; duplicates within one batching window coalesce.

        The batch key folds in the current snapshot version (like the
        sync-path cache key does): duplicates straddling a
        ``refresh_domains`` swap within one window must not share an
        execution, or the later submitter could pin the stale generation.
        The threshold is **resolved** before keying, again like the sync
        path: ``submit(q)`` and ``submit(q, default_threshold)`` are the
        same request and must coalesce, not double-compute.
        """
        if self._closed:
            raise ServiceClosedError("service is closed")
        snapshot = self._require_snapshot()
        threshold = (
            min_zscore
            if min_zscore is not None
            else snapshot.detector.ranking.min_zscore
        )
        key = (self.tenant, snapshot.version, phrase_key(query), threshold)
        return self._batcher.submit(key, lambda: self.query(query, threshold))

    def query_many(
        self, queries: List[str], min_zscore: float | None = None
    ) -> List[ServedAnswer]:
        """Answer a batch; results in input order."""
        futures = [self.submit(q, min_zscore) for q in queries]
        return [future.result() for future in futures]

    # -- refresh (§6.3 weekly rebuild, zero downtime) ----------------------------

    def refresh_domains(self, querylog_config=None) -> ServiceSnapshot:
        """Rebuild the domain collection and atomically swap it in.

        In-flight requests keep the snapshot they pinned; requests that
        start after the swap see the new generation.  Cached results of
        the old generation become unreachable (the version is part of
        the cache key) and age out via LRU.

        The rebuild runs the accumulator-join offline path, so the swap
        latency is dominated by clustering, not extraction; the measured
        wall-clock is surfaced as ``last_refresh_seconds`` in
        :meth:`stats` and tracked by the serving bench.

        Refreshes are serialised on this service: two concurrent calls
        run one after the other (each returning the snapshot *its own*
        rebuild published), so a slower, staler build can never be
        swapped in over a newer one and every caller observes a strictly
        increasing version.
        """
        if self._closed:
            raise ServiceClosedError("service is closed")
        with self._refresh_lock:
            started = time.perf_counter()
            self.system.refresh_domains(querylog_config)
            snapshot = self._require_snapshot()
            with self._counter_lock:
                self._refreshes += 1
                self._last_refresh_seconds = time.perf_counter() - started
            return snapshot

    def refresh_delta(
        self, delta: "QueryLogStore | Iterable[Impression]"
    ) -> ServiceSnapshot:
        """Incrementally fold a batch of new impressions into serving.

        The delta path of §6.3-at-production-granularity: instead of
        re-running the whole offline pipeline, the delta batch updates
        the similarity join incrementally, re-clusters only the dirty
        region (with an exact full-re-cluster fallback past the churn
        threshold), rebuilds only the affected domains, and publishes
        through the same zero-downtime snapshot swap.  Serialised with
        :meth:`refresh_domains` on the same lock; accounting lands in
        :meth:`stats` (``delta_refreshes``, ``last_delta_refresh_seconds``,
        ``last_delta_refresh``).
        """
        if self._closed:
            raise ServiceClosedError("service is closed")
        with self._refresh_lock:
            started = time.perf_counter()
            stats = self.system.refresh_domains_delta(delta)
            snapshot = self._require_snapshot()
            with self._counter_lock:
                self._delta_refreshes += 1
                self._last_delta_refresh_seconds = (
                    time.perf_counter() - started
                )
                self._last_delta_refresh = stats
            return snapshot

    # -- observability -----------------------------------------------------------

    @property
    def snapshot_version(self) -> int:
        return self._snapshots.version

    def cache_info(self) -> CacheInfo:
        return self._cache.cache_info()

    def health(self) -> ReplicaHealthReport:
        """The routing-relevant vitals (what a fleet router polls).

        Surfaces the result-cache hit ratio and the current snapshot
        version alongside the admission gauges — the fields a front-end
        needs to pick replicas and to detect version skew during a
        promotion.
        """
        admission = self._admission.stats()
        tenant_health = self.tenant_health()
        return ReplicaHealthReport(
            snapshot_version=self._snapshots.version,
            cache_hit_ratio=self._cache.cache_info().hit_rate,
            requests=tenant_health.requests,
            partial_requests=tenant_health.partial_requests,
            in_flight=admission.in_flight,
            waiting=admission.waiting,
            tenants=(tenant_health,),
        )

    def tenant_health(self) -> TenantHealth:
        """This tenant's slice of the vitals, from the service's own
        counters (valid even when the cache is shared across tenants)."""
        with self._counter_lock:
            requests = self._requests
            partials = self._partials
            lookups = self._cache_lookups
            hits = self._cache_hits
        return TenantHealth(
            tenant=self.tenant,
            snapshot_version=self._snapshots.version,
            cache_hit_ratio=hits / lookups if lookups else 0.0,
            requests=requests,
            partial_requests=partials,
        )

    def stats(self) -> ServiceStats:
        with self._counter_lock:
            requests = self._requests
            partials = self._partials
            refreshes = self._refreshes
            last_refresh_seconds = self._last_refresh_seconds
            delta_refreshes = self._delta_refreshes
            last_delta_refresh_seconds = self._last_delta_refresh_seconds
            last_delta_refresh = self._last_delta_refresh
        flight = self._flight
        return ServiceStats(
            requests=requests,
            partial_requests=partials,
            refreshes=refreshes,
            last_refresh_seconds=last_refresh_seconds,
            delta_refreshes=delta_refreshes,
            last_delta_refresh_seconds=last_delta_refresh_seconds,
            last_delta_refresh=last_delta_refresh,
            snapshot_version=self._snapshots.version,
            cache=self._cache.cache_info(),
            admission=self._admission.stats(),
            flight_leaders=flight.leaders if flight is not None else 0,
            flight_coalesced=flight.coalesced if flight is not None else 0,
            batches_dispatched=self._batcher.batches_dispatched,
            batch_coalesced=self._batcher.coalesced,
            detection_pool=self._detect_pool.stats(),
            tenants=(self.tenant_health(),),
        )

    # -- internals ---------------------------------------------------------------

    def _require_snapshot(self) -> ServiceSnapshot:
        snapshot = self._snapshots.get()
        if snapshot is None:  # pragma: no cover - guarded by constructor
            raise ServiceClosedError("no snapshot published")
        return snapshot

    @staticmethod
    def _check_budget(
        budget_seconds: float | None, started: float
    ) -> None:
        """Fail typed once a request's end-to-end budget is spent.

        Checked on entry and again after the admission wait — queue time
        counts against the deadline, so a request that waited out its
        budget is refused before it costs any detection work.
        """
        if budget_seconds is None:
            return
        elapsed = time.perf_counter() - started
        if elapsed >= budget_seconds:
            raise DeadlineExceededError(
                f"deadline budget of {budget_seconds:.3f}s spent "
                f"({elapsed:.3f}s elapsed) before detection started",
                budget_seconds=budget_seconds,
                elapsed_seconds=elapsed,
            )

    def _compute(
        self, snapshot: ServiceSnapshot, query: str, threshold: float
    ) -> ServedAnswer:
        expander = snapshot.pipeline.expander
        started = time.perf_counter()
        terms, domain_id = expander.expand_terms(query)
        expansion_seconds = time.perf_counter() - started

        started = time.perf_counter()
        result = expander.score_terms(
            query,
            terms,
            domain_id,
            term_scorer=self._term_scorer(snapshot),
        )
        kept = [e for e in result.scored_pool if e.score >= threshold]
        experts = tuple(kept[: snapshot.detector.ranking.max_results])
        detection_seconds = time.perf_counter() - started

        return ServedAnswer(
            query=query,
            experts=experts,
            terms=tuple(terms),
            matched_domain=domain_id,
            snapshot_version=snapshot.version,
            cache_hit=False,
            coalesced=False,
            expansion_seconds=expansion_seconds,
            detection_seconds=detection_seconds,
            total_seconds=0.0,
            tenant=self.tenant,
        )

    def _term_scorer(
        self, snapshot: ServiceSnapshot
    ) -> Callable[[List[str]], List[List[RankedExpert]]]:
        """Shard per-term scoring across the detection pool."""

        def scorer(terms: List[str]) -> List[List[RankedExpert]]:
            if len(terms) <= 1:
                return [snapshot.detector.score(term) for term in terms]
            return self._detect_pool.map_ordered(snapshot.detector.score, terms)

        return scorer

"""S12 — The serving tier: e# under concurrent traffic.

The paper's production deployment answers interactive queries (Table 9)
while the offline stage rebuilds the domain collection weekly.  This
package supplies the machinery between those two facts:

* :mod:`repro.serving.snapshot` — atomically hot-swappable serving state
  (zero-downtime weekly refresh)
* :mod:`repro.serving.cache` — bounded LRU+TTL result cache with counters
* :mod:`repro.serving.singleflight` — duplicate in-flight coalescing
* :mod:`repro.serving.workers` — worker pool + micro-batch scheduler
* :mod:`repro.serving.admission` — backpressure / overload rejection
* :mod:`repro.serving.quotas` — per-tenant quotas, weighted-fair admission
* :mod:`repro.serving.service` — the :class:`ExpertService` facade
* :mod:`repro.serving.tenancy` — many corpora behind one shared engine
* :mod:`repro.serving.loadgen` — Zipf workload replay + latency harness

Exports resolve lazily, so importing one light piece (say, the errors)
never drags in the whole service stack and its thread machinery.
"""

from __future__ import annotations

from typing import Any

_EXPORTS = {
    "AdmissionController": "repro.serving.admission",
    "AdmissionStats": "repro.serving.admission",
    "CacheInfo": "repro.serving.cache",
    "LRUCache": "repro.serving.cache",
    "DEFAULT_TENANT": "repro.serving.service",
    "ExpertService": "repro.serving.service",
    "PartialPool": "repro.serving.service",
    "ReplicaHealthReport": "repro.serving.service",
    "ServiceConfig": "repro.serving.service",
    "ServiceStats": "repro.serving.service",
    "ServedAnswer": "repro.serving.service",
    "TenantHealth": "repro.serving.service",
    "FairAdmissionController": "repro.serving.quotas",
    "TenantAdmissionStats": "repro.serving.quotas",
    "TenantQuota": "repro.serving.quotas",
    "MultiTenantService": "repro.serving.tenancy",
    "TenantClient": "repro.serving.tenancy",
    "TenantRegistry": "repro.serving.tenancy",
    "TenantSpec": "repro.serving.tenancy",
    "ServiceClosedError": "repro.serving.errors",
    "ServiceOverloadedError": "repro.serving.errors",
    "ServingError": "repro.serving.errors",
    "TenantOverloadedError": "repro.serving.errors",
    "TenantStageError": "repro.serving.errors",
    "UnknownTenantError": "repro.serving.errors",
    "ServiceSnapshot": "repro.serving.snapshot",
    "SnapshotHolder": "repro.serving.snapshot",
    "SingleFlight": "repro.serving.singleflight",
    "MicroBatchScheduler": "repro.serving.workers",
    "PoolStats": "repro.serving.workers",
    "WorkerPool": "repro.serving.workers",
    "LatencyReport": "repro.serving.loadgen",
    "LoadGenerator": "repro.serving.loadgen",
    "WorkloadConfig": "repro.serving.loadgen",
    "build_workload": "repro.serving.loadgen",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str) -> Any:
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_EXPORTS))

"""S2 — Search query-log simulator.

Stand-in for the paper's 998 GB month of commercial search-engine logs
(§4.1, §6.1).  The downstream pipeline consumes only ``(query, url,
clicks)`` aggregates, so the simulator's contract is to produce aggregates
whose *structure* matches a real log:

* query popularity is Zipfian with a long noisy tail,
* same-topic queries share clicked URLs, different-topic queries mostly
  do not, with domain hubs and global portals providing weak cross-topic
  co-clicks,
* surface-form variants (``49ers``/``#49ers``/``niners``) behave like the
  canonical term because users click the same results,
* rare queries fall below the support threshold (the paper drops queries
  seen fewer than 50 times/month).
"""

from repro.querylog.config import QueryLogConfig
from repro.querylog.generator import QueryLogGenerator, generate_query_log
from repro.querylog.records import ClickAggregate, Impression
from repro.querylog.store import QueryLogStore

__all__ = [
    "ClickAggregate",
    "Impression",
    "QueryLogConfig",
    "QueryLogGenerator",
    "QueryLogStore",
    "generate_query_log",
]

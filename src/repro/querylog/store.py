"""Aggregated query-log storage with support filtering and I/O accounting.

The store is the hand-off point between the simulator (S2) and the
similarity-graph extraction (S3): it holds ``(query, url) → clicks``
aggregates plus per-query impression counts, implements the paper's
minimum-support filter, and tracks the byte volumes that feed the Table 9
reproduction.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Iterator

from repro.querylog.records import ClickAggregate, Impression


class QueryLogStore:
    """Mutable aggregate store for a simulated query log."""

    def __init__(self, min_support: int = 1) -> None:
        if min_support < 1:
            raise ValueError(f"min_support must be >= 1, got {min_support}")
        self.min_support = min_support
        self._clicks: Counter[tuple[str, str]] = Counter()
        self._query_counts: Counter[str] = Counter()
        self._raw_bytes = 0
        self._impressions = 0

    # -- ingestion ---------------------------------------------------------

    def add_impression(self, impression: Impression) -> None:
        """Record one search event."""
        self._impressions += 1
        self._raw_bytes += impression.raw_bytes()
        self._query_counts[impression.query] += 1
        for url in impression.clicked_urls:
            self._clicks[(impression.query, url)] += 1

    def extend(self, impressions: Iterable[Impression]) -> None:
        for impression in impressions:
            self.add_impression(impression)

    # -- statistics --------------------------------------------------------

    @property
    def impressions(self) -> int:
        return self._impressions

    @property
    def raw_bytes(self) -> int:
        """Approximate size of the raw log — the Table 9 'Read' column."""
        return self._raw_bytes

    def query_count(self, query: str) -> int:
        return self._query_counts.get(query, 0)

    def distinct_queries(self) -> int:
        return len(self._query_counts)

    # -- filtered views ----------------------------------------------------

    def supported_queries(self) -> set[str]:
        """Queries meeting the §4.1 support threshold."""
        return {
            query
            for query, count in self._query_counts.items()
            if count >= self.min_support
        }

    def aggregates(self, supported_only: bool = True) -> Iterator[ClickAggregate]:
        """Yield ``(query, url, clicks)`` rows, filtered by support by default."""
        supported = self.supported_queries() if supported_only else None
        for (query, url), clicks in sorted(self._clicks.items()):
            if supported is not None and query not in supported:
                continue
            yield ClickAggregate(query=query, url=url, clicks=clicks)

    def click_vectors(
        self, supported_only: bool = True
    ) -> dict[str, dict[str, int]]:
        """Materialise per-query click vectors (url → clicks).

        This is the exact input of Figure 2's vector-space construction.
        """
        supported = self.supported_queries() if supported_only else None
        vectors: dict[str, dict[str, int]] = {}
        for (query, url), clicks in self._clicks.items():
            if supported is not None and query not in supported:
                continue
            vectors.setdefault(query, {})[url] = clicks
        return vectors

    def click_vectors_for(
        self, queries: set[str]
    ) -> dict[str, dict[str, int]]:
        """Click vectors for just ``queries``, in one pass over the pairs.

        The incremental refresh path rebuilds only the vectors its delta
        batch touched; per-query URL order matches
        :meth:`click_vectors` (global pair insertion order, filtered).
        """
        vectors: dict[str, dict[str, int]] = {}
        for (query, url), clicks in self._clicks.items():
            if query in queries:
                vectors.setdefault(query, {})[url] = clicks
        return vectors

    # -- persistence hooks (the artifact codec's exact state surface) ------

    def iter_query_counts(self) -> Iterator[tuple[str, int]]:
        """``(query, impressions)`` pairs in insertion order."""
        return iter(self._query_counts.items())

    def iter_clicks(self) -> Iterator[tuple[tuple[str, str], int]]:
        """``((query, url), clicks)`` pairs in insertion order.

        Order matters: per-query URL order feeds the float summation of
        :class:`~repro.simgraph.vectors.SparseVector` norms, so an exact
        round-trip must replay pairs in the order this store holds them.
        """
        return iter(self._clicks.items())

    @classmethod
    def restore(
        cls,
        *,
        min_support: int,
        impressions: int,
        raw_bytes: int,
        query_counts: Iterable[tuple[str, int]],
        clicks: Iterable[tuple[str, str, int]],
    ) -> "QueryLogStore":
        """Rebuild a store from persisted aggregates, byte-exactly.

        The inverse of :meth:`iter_query_counts`/:meth:`iter_clicks`:
        counters are replayed in the given order so the restored store's
        iteration order — and everything derived from it — matches the
        original.
        """
        if impressions < 0 or raw_bytes < 0:
            raise ValueError("impressions/raw_bytes must be non-negative")
        store = cls(min_support=min_support)
        for query, count in query_counts:
            if count <= 0:
                raise ValueError(f"count for {query!r} must be positive")
            store._query_counts[query] = count
        for query, url, count in clicks:
            if count <= 0:
                raise ValueError(
                    f"clicks for ({query!r}, {url!r}) must be positive"
                )
            store._clicks[(query, url)] = count
        store._impressions = impressions
        store._raw_bytes = raw_bytes
        return store

    @classmethod
    def restore_columnar(
        cls,
        *,
        min_support: int,
        impressions: int,
        raw_bytes: int,
        query_counts: dict,
        clicks: dict,
    ) -> "QueryLogStore":
        """Bulk variant of :meth:`restore` for prebuilt dicts.

        The columnar artifact codec assembles the counter contents with
        C-level ``zip``/``dict`` construction; this installs them
        directly — validating in bulk with ``min()`` rather than one
        branch per pair — which is the difference between a ~0.3 s and a
        ~0.01 s query-log restore at standard scale.  Insertion order of
        the passed dicts is preserved verbatim (the same order contract
        as :meth:`restore`: downstream ``SparseVector`` norms sum floats
        in this order).
        """
        if impressions < 0 or raw_bytes < 0:
            raise ValueError("impressions/raw_bytes must be non-negative")
        if query_counts and min(query_counts.values()) <= 0:
            raise ValueError("query counts must be positive")
        if clicks and min(clicks.values()) <= 0:
            raise ValueError("click counts must be positive")
        store = cls(min_support=min_support)
        store._query_counts = Counter(query_counts)
        store._clicks = Counter(clicks)
        store._impressions = impressions
        store._raw_bytes = raw_bytes
        return store

    # -- composition ---------------------------------------------------------

    def copy(self) -> "QueryLogStore":
        """An independent deep-enough copy (aggregates are scalars)."""
        clone = QueryLogStore(min_support=self.min_support)
        clone._clicks = Counter(self._clicks)
        clone._query_counts = Counter(self._query_counts)
        clone._raw_bytes = self._raw_bytes
        clone._impressions = self._impressions
        return clone

    def merge(self, other: "QueryLogStore") -> "QueryLogStore":
        """Fold another store's aggregates into this one (in place).

        The production pipeline accumulates weekly logs into the monthly
        window it clusters (§6.3); merging stores is the equivalent
        operation here.  The support threshold of ``self`` is kept.
        """
        self._impressions += other._impressions
        self._raw_bytes += other._raw_bytes
        self._query_counts.update(other._query_counts)
        self._clicks.update(other._clicks)
        return self

    def __repr__(self) -> str:
        return (
            f"QueryLogStore(impressions={self._impressions}, "
            f"queries={len(self._query_counts)}, "
            f"pairs={len(self._clicks)}, min_support={self.min_support})"
        )

"""Impression-level simulation of a month of search traffic.

Every impression is generated as a real search session would unfold:

1. a topic is drawn Zipf-style from the world model's popularity weights,
2. a surface form of that topic is drawn by keyword weight (heads dominate,
   hashtags and misspellings trail),
3. 0–3 clicks are drawn; each click lands on the topic's own URLs (official
   site first), a domain hub, a global portal, or — rarely — a random
   off-topic URL.

A small fraction of impressions are gibberish noise queries, which is what
gives the §4.1 support filter something to do.
"""

from __future__ import annotations

import random
from typing import Iterator

from repro.utils.rng import SeedSequenceFactory
from repro.utils.zipf import ZipfSampler
from repro.querylog.config import QueryLogConfig
from repro.querylog.records import Impression
from repro.querylog.store import QueryLogStore
from repro.worldmodel.model import Topic, WorldModel
from repro.worldmodel.vocab import GLOBAL_HUB_URLS


class QueryLogGenerator:
    """Generates impressions against a :class:`WorldModel`."""

    def __init__(self, world: WorldModel, config: QueryLogConfig | None = None) -> None:
        self.world = world
        self.config = config or QueryLogConfig()
        factory = SeedSequenceFactory(self.config.seed)
        self._rng = factory.stream("querylog")
        # topic sampler over popularity-sorted topics
        self._topics = sorted(
            world.topics, key=lambda t: t.popularity, reverse=True
        )
        weights = [topic.popularity for topic in self._topics]
        total = sum(weights)
        self._topic_cumulative: list[float] = []
        acc = 0.0
        for weight in weights:
            acc += weight / total
            self._topic_cumulative.append(acc)
        # per-topic keyword samplers (plain cumulative tables)
        self._keyword_tables: dict[int, tuple[list[float], list[str]]] = {}
        for topic in self._topics:
            texts = [kw.text for kw in topic.keywords]
            kw_weights = [kw.weight for kw in topic.keywords]
            kw_total = sum(kw_weights)
            cumulative: list[float] = []
            acc = 0.0
            for weight in kw_weights:
                acc += weight / kw_total
                cumulative.append(acc)
            self._keyword_tables[topic.topic_id] = (cumulative, texts)
        self._noise_sampler = ZipfSampler(5000, 1.0, self._rng)

    # -- sampling primitives -------------------------------------------------

    def _sample_topic(self) -> Topic:
        point = self._rng.random()
        for index, bound in enumerate(self._topic_cumulative):
            if point <= bound:
                return self._topics[index]
        return self._topics[-1]

    def _sample_keyword(self, topic: Topic) -> str:
        cumulative, texts = self._keyword_tables[topic.topic_id]
        point = self._rng.random()
        for index, bound in enumerate(cumulative):
            if point <= bound:
                return texts[index]
        return texts[-1]

    def _sample_click_count(self) -> int:
        point = self._rng.random()
        acc = 0.0
        for count, probability in enumerate(self.config.click_count_probs):
            acc += probability
            if point <= acc:
                return count
        return len(self.config.click_count_probs) - 1

    def _sample_url(self, topic: Topic) -> str:
        """One click: topic URL, domain hub, global portal, or noise."""
        rng = self._rng
        point = rng.random()
        cfg = self.config
        if point < cfg.topic_url_prob:
            # official site (index 0) is clicked most; geometric-ish decay
            urls = topic.urls
            for url in urls:
                if rng.random() < 0.55:
                    return url
            return urls[-1]
        point -= cfg.topic_url_prob
        if point < cfg.hub_url_prob and topic.hub_urls:
            return rng.choice(topic.hub_urls)
        point -= cfg.hub_url_prob
        if point < cfg.global_url_prob:
            return rng.choice(GLOBAL_HUB_URLS)
        return f"random{rng.randrange(100_000)}.net"

    def _noise_query(self) -> str:
        """A gibberish tail query; Zipf-ranked so a handful recur."""
        rank = self._noise_sampler.sample()
        return f"zzq{rank}"

    # -- public API ------------------------------------------------------------

    def impressions(self, count: int | None = None) -> Iterator[Impression]:
        """Yield ``count`` impressions (default: ``config.impressions``)."""
        total = self.config.impressions if count is None else count
        if total < 0:
            raise ValueError(f"count must be non-negative, got {total}")
        for _ in range(total):
            if self._rng.random() < self.config.noise_rate:
                query = self._noise_query()
                clicks = tuple(
                    f"random{self._rng.randrange(100_000)}.net"
                    for _ in range(self._sample_click_count())
                )
                yield Impression(query=query, clicked_urls=clicks)
                continue
            topic = self._sample_topic()
            query = self._sample_keyword(topic)
            clicks = tuple(
                self._sample_url(topic) for _ in range(self._sample_click_count())
            )
            yield Impression(query=query, clicked_urls=clicks)

    def fill_store(self, count: int | None = None) -> QueryLogStore:
        """Generate impressions straight into a support-filtering store."""
        store = QueryLogStore(min_support=self.config.min_support)
        store.extend(self.impressions(count))
        return store


def generate_query_log(
    world: WorldModel, config: QueryLogConfig | None = None
) -> QueryLogStore:
    """One-call convenience: build generator, run it, return the store."""
    return QueryLogGenerator(world, config).fill_store()

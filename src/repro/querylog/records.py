"""Query-log record types."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Impression:
    """One search event: a query issued and the URLs clicked for it.

    ``clicked_urls`` may be empty (abandoned search).  The raw-log byte
    estimate treats the impression as one tab-separated line per click,
    matching the layout the extraction job of §6.3 scans.
    """

    query: str
    clicked_urls: tuple[str, ...]

    def raw_bytes(self) -> int:
        """Approximate on-disk size of this impression in a TSV log."""
        if not self.clicked_urls:
            return len(self.query) + 1
        return sum(len(self.query) + 1 + len(url) + 1 for url in self.clicked_urls)


@dataclass(frozen=True)
class ClickAggregate:
    """Aggregated click count for one ``(query, url)`` pair."""

    query: str
    url: str
    clicks: int

    def __post_init__(self) -> None:
        if self.clicks <= 0:
            raise ValueError(f"clicks must be positive, got {self.clicks}")

"""Sizing and behaviour knobs for the query-log simulator."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class QueryLogConfig:
    """Parameters of :class:`repro.querylog.QueryLogGenerator`.

    The defaults generate roughly 300k impressions — about six orders of
    magnitude below the paper's month of Bing traffic, but enough for every
    structural statistic the pipeline depends on (see package docstring).
    """

    seed: int = 2016
    impressions: int = 300_000
    #: probability that an impression is pure noise (gibberish query) —
    #: exercises the min-support filter exactly like real tail traffic
    noise_rate: float = 0.02
    #: distribution of clicks per impression: P(0), P(1), P(2), P(3)
    click_count_probs: tuple[float, float, float, float] = (0.2, 0.5, 0.2, 0.1)
    #: probability mass of a click landing on the topic's own URLs vs the
    #: domain hubs vs the global portals vs a random off-topic URL
    topic_url_prob: float = 0.72
    hub_url_prob: float = 0.15
    global_url_prob: float = 0.08
    #: remaining mass (1 - the three above) goes to random noise URLs
    #: §4.1: "we remove all the queries which appear less than 50 times
    #: per month"
    min_support: int = 50

    def __post_init__(self) -> None:
        if self.impressions < 0:
            raise ValueError("impressions must be non-negative")
        if not 0.0 <= self.noise_rate <= 1.0:
            raise ValueError(f"noise_rate must be in [0,1], got {self.noise_rate}")
        if len(self.click_count_probs) != 4:
            raise ValueError("click_count_probs must have 4 entries (0..3 clicks)")
        if abs(sum(self.click_count_probs) - 1.0) > 1e-9:
            raise ValueError("click_count_probs must sum to 1")
        url_mass = self.topic_url_prob + self.hub_url_prob + self.global_url_prob
        if url_mass > 1.0 + 1e-9:
            raise ValueError("URL probability masses exceed 1")
        if self.min_support < 1:
            raise ValueError("min_support must be at least 1")

    @property
    def noise_url_prob(self) -> float:
        return max(
            0.0,
            1.0 - self.topic_url_prob - self.hub_url_prob - self.global_url_prob,
        )

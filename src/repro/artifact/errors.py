"""Typed failure modes of the versioned artifact layer.

Every load-side failure — missing files, truncation, bit rot, format
drift, config drift — surfaces as an :class:`ArtifactError` subclass.
The loader never unpickles, never ``eval``s, and never returns a
half-decoded object: a corrupted artifact is rejected *before* any stage
payload is parsed (checksums are verified against the manifest first),
so callers can catch one exception type and fall back to a cold build.
"""

from __future__ import annotations


class ArtifactError(RuntimeError):
    """Base class for every artifact save/load failure."""


class ArtifactCorruptError(ArtifactError):
    """A stage file is missing, truncated, or fails its checksum/parse."""


class ArtifactVersionError(ArtifactError):
    """The artifact speaks a format version this code does not."""


class ArtifactMismatchError(ArtifactError):
    """The artifact was built from a different config/seed fingerprint."""


class ArtifactIncompleteError(ArtifactError):
    """The build that wrote this artifact never finished (no final manifest)."""

"""Binary column sidecars: aligned raw bytes, opened as zero-copy views.

A sidecar holds every *numeric* column of one packed stage in a single
``stage-<name>.bin`` file next to the stage's JSON metadata.  The layout
is deliberately dumb::

    [0:8)    magic  b"RPROBIN1"
    [8:12)   u32 little-endian header length
    [12:..)  header JSON (kind, codec version, byteorder, column table,
             SHA-256 over the payload)
    ...      zero padding to the 64-byte alignment boundary
    payload  columns back to back, each starting on a 64-byte boundary

Column offsets in the header are relative to the payload start, so the
header can be serialised in one pass.  The write side is crash-atomic
(scratch sibling + ``os.replace``, same discipline as the stage files)
and hashes the payload as it writes.

The read side is where the layout earns its keep:
:func:`open_sidecar` maps the file with :class:`mmap.mmap` and hands
columns out as :class:`memoryview` casts over the mapping — **no bytes
are copied and no pages are touched** until a consumer actually reads a
column.  Structural integrity (size vs manifest, magic, versions,
endianness, per-column itemsize and bounds) is verified eagerly, so a
truncated or mislabelled sidecar raises a typed
:class:`~repro.artifact.errors.ArtifactError` before any decode; the
payload hash is verified on save and on demand
(:meth:`SidecarView.verify_payload`) rather than at open, because
hashing would fault in the whole file and defeat the zero-copy load.
"""

from __future__ import annotations

import hashlib
import json
import mmap
import os
import pathlib
import struct
import sys
from array import array
from typing import Iterator

from repro.artifact.errors import (
    ArtifactCorruptError,
    ArtifactError,
    ArtifactVersionError,
)
from repro.chaos.inject import fire

__all__ = ["SidecarView", "SidecarWriter", "open_sidecar", "sidecar_filename"]

MAGIC = b"RPROBIN1"
ALIGN = 64
_FIXED = struct.Struct("<8sI")  # magic + header length

#: logical typecode for raw byte blobs (string payloads, offsets aside)
BLOB_TYPECODE = "B"


def sidecar_filename(output: str) -> str:
    """The on-disk name of one stage output's sidecar."""
    return f"stage-{output}.bin"


def _align_up(value: int) -> int:
    return (value + ALIGN - 1) // ALIGN * ALIGN


class SidecarWriter:
    """Accumulates columns, then writes one sidecar file atomically."""

    def __init__(self, path, kind: str, codec_version: int) -> None:
        self.path = pathlib.Path(path)
        self.kind = kind
        self.codec_version = codec_version
        #: [name, typecode, itemsize, payload-relative offset, item count]
        self._table: list[list] = []
        self._chunks: list[bytes] = []
        self._cursor = 0
        self._names: set[str] = set()

    def add_column(self, name: str, column) -> None:
        """Append one native-typed numeric column.

        Accepts owned :class:`array.array` columns and typed
        ``memoryview`` columns alike (re-saving an mmap-loaded artifact
        streams views from one mapping into the next sidecar).
        """
        typecode = getattr(column, "typecode", None) or column.format
        self._add(name, typecode, column.itemsize, column.tobytes())

    def add_blob(self, name: str, data: bytes) -> None:
        """Append one raw byte blob (string payloads etc.)."""
        self._add(name, BLOB_TYPECODE, 1, bytes(data))

    def _add(self, name: str, typecode: str, itemsize: int, raw: bytes) -> None:
        if name in self._names:
            raise ArtifactError(f"duplicate sidecar column {name!r}")
        self._names.add(name)
        offset = _align_up(self._cursor)
        if offset > self._cursor:
            self._chunks.append(b"\x00" * (offset - self._cursor))
        self._chunks.append(raw)
        self._cursor = offset + len(raw)
        self._table.append([name, typecode, itemsize, offset, len(raw) // itemsize])

    def finish(self) -> tuple[str, int]:
        """Write the file crash-atomically; returns ``(sha256, size)``.

        The returned checksum covers the *whole file* (header included),
        matching what the manifest records for every other stage file.
        """
        payload = b"".join(self._chunks)
        header = {
            "kind": self.kind,
            "codec_version": self.codec_version,
            "byteorder": sys.byteorder,
            "align": ALIGN,
            "payload_bytes": len(payload),
            "payload_sha256": hashlib.sha256(payload).hexdigest(),
            "columns": self._table,
        }
        header_bytes = json.dumps(
            header, ensure_ascii=True, separators=(",", ":")
        ).encode("ascii")
        prefix_len = _FIXED.size + len(header_bytes)
        padding = b"\x00" * (_align_up(prefix_len) - prefix_len)
        blob = b"".join(
            (_FIXED.pack(MAGIC, len(header_bytes)), header_bytes, padding, payload)
        )
        scratch = self.path.with_name(self.path.name + ".tmp")
        scratch.write_bytes(blob)
        os.replace(scratch, self.path)
        return hashlib.sha256(blob).hexdigest(), len(blob)


class SidecarView:
    """One mapped sidecar: columns as zero-copy :class:`memoryview` casts.

    The mapping stays alive as long as any exported view does (a
    ``memoryview`` pins its exporting object), so consumers may hold
    column views beyond the life of this object.
    """

    def __init__(
        self, path: pathlib.Path, mapped: mmap.mmap, header: dict, payload_start: int
    ) -> None:
        self.path = path
        self._mmap = mapped
        self._header = header
        self._payload_start = payload_start
        self._columns: dict[str, tuple[str, int, int, int]] = {}
        for name, typecode, itemsize, offset, count in header["columns"]:
            self._columns[name] = (typecode, itemsize, offset, count)

    def __contains__(self, name: str) -> bool:
        return name in self._columns

    def names(self) -> Iterator[str]:
        return iter(self._columns)

    def column(self, name: str) -> memoryview:
        """The named column as a typed, read-only, zero-copy view."""
        try:
            typecode, itemsize, offset, count = self._columns[name]
        except KeyError:
            raise ArtifactCorruptError(
                f"{self.path} has no column {name!r}"
            ) from None
        start = self._payload_start + offset
        view = memoryview(self._mmap)[start : start + count * itemsize]
        if typecode == BLOB_TYPECODE:
            return view
        return view.cast(typecode)

    def verify_payload(self) -> None:
        """Hash the payload against the header (faults in every page)."""
        start = self._payload_start
        stop = start + self._header["payload_bytes"]
        digest = hashlib.sha256(memoryview(self._mmap)[start:stop]).hexdigest()
        if digest != self._header["payload_sha256"]:
            raise ArtifactCorruptError(
                f"{self.path} payload fails its embedded checksum"
            )


def open_sidecar(
    path,
    kind: str,
    codec_version: int,
    size_bytes: int | None = None,
) -> SidecarView:
    """Map one sidecar and validate its structure (never its content).

    ``size_bytes`` is the manifest's recorded size; a mismatch means a
    torn or clobbered write and is rejected before the header is even
    parsed.  All structural checks raise typed
    :class:`~repro.artifact.errors.ArtifactError` subclasses.
    """
    path = pathlib.Path(path)
    fire("artifact.read", path=str(path))
    try:
        handle = open(path, "rb")
    except FileNotFoundError:
        raise ArtifactCorruptError(f"sidecar missing: {path}") from None
    except OSError as exc:
        raise ArtifactCorruptError(f"cannot open {path}: {exc}") from exc
    with handle:
        size = os.fstat(handle.fileno()).st_size
        if size_bytes is not None and size != size_bytes:
            raise ArtifactCorruptError(
                f"{path} is {size} bytes, manifest says {size_bytes} "
                "(truncated or overwritten)"
            )
        if size < _FIXED.size:
            raise ArtifactCorruptError(f"{path} is too short to be a sidecar")
        mapped = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
    magic, header_len = _FIXED.unpack(mapped[: _FIXED.size])
    if magic != MAGIC:
        raise ArtifactCorruptError(f"{path} has no {MAGIC!r} magic")
    prefix_len = _FIXED.size + header_len
    if prefix_len > size:
        raise ArtifactCorruptError(f"{path} header overruns the file")
    try:
        header = json.loads(mapped[_FIXED.size : prefix_len].decode("ascii"))
        header_kind = header["kind"]
        header_version = header["codec_version"]
        byteorder = header["byteorder"]
        align = header["align"]
        payload_bytes = int(header["payload_bytes"])
        columns = header["columns"]
    except (KeyError, TypeError, ValueError, UnicodeDecodeError) as exc:
        raise ArtifactCorruptError(f"{path} has a malformed header: {exc}") from exc
    if header_kind != kind:
        raise ArtifactCorruptError(
            f"{path} holds a {header_kind!r} sidecar, expected {kind!r}"
        )
    if header_version != codec_version:
        raise ArtifactVersionError(
            f"{path}: codec {kind!r} version {header_version} is not "
            f"supported (this build reads version {codec_version})"
        )
    if byteorder != sys.byteorder:
        raise ArtifactError(
            f"sidecar was written on a {byteorder!r}-endian machine, this "
            f"one is {sys.byteorder!r}-endian; rebuild the artifact here"
        )
    if align != ALIGN:
        raise ArtifactCorruptError(
            f"{path} uses alignment {align}, this build expects {ALIGN}"
        )
    payload_start = _align_up(prefix_len)
    if payload_start + payload_bytes > size:
        raise ArtifactCorruptError(f"{path} payload overruns the file")
    seen: set[str] = set()
    try:
        for name, typecode, itemsize, offset, count in columns:
            if name in seen:
                raise ArtifactCorruptError(
                    f"{path} declares column {name!r} twice"
                )
            seen.add(name)
            if typecode != BLOB_TYPECODE:
                native = array(typecode).itemsize
                if native != itemsize:
                    raise ArtifactCorruptError(
                        f"{path} column {name!r}: typecode {typecode!r} is "
                        f"{native} bytes on this platform but {itemsize} in "
                        "the sidecar (cross-platform width mismatch — "
                        "rebuild the artifact here)"
                    )
            elif itemsize != 1:
                raise ArtifactCorruptError(
                    f"{path} column {name!r}: blob itemsize must be 1"
                )
            if offset < 0 or count < 0 or offset + count * itemsize > payload_bytes:
                raise ArtifactCorruptError(
                    f"{path} column {name!r} overruns the payload"
                )
    except (TypeError, ValueError) as exc:
        raise ArtifactCorruptError(
            f"{path} has a malformed column table: {exc}"
        ) from exc
    return SidecarView(path, mapped, header, payload_start)

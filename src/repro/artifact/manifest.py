"""The artifact manifest: the self-describing root of a snapshot directory.

One ``manifest.json`` names every stage file with its codec kind, codec
format version, byte length and SHA-256 — plus the config that built the
artifact (fully serialised, so a loader needs no out-of-band knowledge),
the config/seed fingerprint that guards against mixing artifacts across
configurations, and the serving ``snapshot_version`` the artifact was
published at (stamped back onto the snapshot at load so result-cache
keys stay correct across replicas loading the same artifact).

The manifest is rewritten after every completed build stage with
``complete: false``; only :meth:`Manifest finalisation <repro.artifact.store.ArtifactBuilder.finalize>`
flips the flag, so a crashed build can be resumed but never *loaded*.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pathlib
import typing
from dataclasses import dataclass, field

from repro.artifact.errors import (
    ArtifactCorruptError,
    ArtifactError,
    ArtifactVersionError,
)

#: bump when the manifest layout itself changes incompatibly
MANIFEST_FORMAT_VERSION = 1

MANIFEST_FILENAME = "manifest.json"


# -- config serialisation ----------------------------------------------------
#
# Every e# config is a (possibly nested) frozen dataclass of scalars,
# tuples and plain dicts, so a generic walk covers all of them — no
# per-config codec to keep in sync.


def config_fingerprint(config) -> str:
    """Stable digest of a config tree (nested dataclass ``repr`` is
    deterministic for scalar/tuple/dict fields)."""
    return hashlib.sha256(repr(config).encode("utf-8")).hexdigest()


def config_to_jsonable(config):
    """Recursively convert a config dataclass into JSON-safe values."""
    if dataclasses.is_dataclass(config) and not isinstance(config, type):
        return {
            f.name: config_to_jsonable(getattr(config, f.name))
            for f in dataclasses.fields(config)
        }
    if isinstance(config, tuple):
        return [config_to_jsonable(item) for item in config]
    if isinstance(config, dict):
        return {key: config_to_jsonable(value) for key, value in config.items()}
    return config


def config_from_jsonable(cls, data):
    """Rebuild a config dataclass tree from :func:`config_to_jsonable` output."""
    hints = typing.get_type_hints(cls)
    kwargs = {}
    for f in dataclasses.fields(cls):
        if f.name not in data:
            continue  # let the dataclass default stand
        value = data[f.name]
        hint = hints.get(f.name)
        origin = typing.get_origin(hint)
        if dataclasses.is_dataclass(hint) and isinstance(value, dict):
            value = config_from_jsonable(hint, value)
        elif origin is tuple or (hint is tuple and isinstance(value, list)):
            value = tuple(value)
        kwargs[f.name] = value
    return cls(**kwargs)


# -- manifest records --------------------------------------------------------


@dataclass(frozen=True)
class FileEntry:
    """One stage payload file, pinned by codec kind/version and checksum."""

    filename: str
    kind: str
    codec_version: int
    sha256: str
    size_bytes: int

    def to_jsonable(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_jsonable(cls, data: dict) -> "FileEntry":
        try:
            return cls(
                filename=str(data["filename"]),
                kind=str(data["kind"]),
                codec_version=int(data["codec_version"]),
                sha256=str(data["sha256"]),
                size_bytes=int(data["size_bytes"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ArtifactCorruptError(
                f"malformed file entry in manifest: {data!r}"
            ) from exc


@dataclass(frozen=True)
class StageEntry:
    """One completed pipeline stage: its files plus its clock report."""

    files: dict[str, FileEntry]
    #: the stage's Table 9 accounting (None for unclocked stages); replayed
    #: into the loader's StageClock so a warm start keeps the build's costs
    report: dict | None = None

    def to_jsonable(self) -> dict:
        return {
            "files": {
                name: entry.to_jsonable() for name, entry in self.files.items()
            },
            "report": self.report,
        }

    @classmethod
    def from_jsonable(cls, data: dict) -> "StageEntry":
        if not isinstance(data, dict) or not isinstance(
            data.get("files"), dict
        ):
            raise ArtifactCorruptError(
                f"malformed stage entry in manifest: {data!r}"
            )
        return cls(
            files={
                str(name): FileEntry.from_jsonable(entry)
                for name, entry in data["files"].items()
            },
            report=data.get("report"),
        )


@dataclass
class Manifest:
    """Everything needed to validate and decode an artifact directory."""

    format_version: int
    config_fingerprint: str
    seed: int
    snapshot_version: int
    complete: bool
    config: dict
    stages: dict[str, StageEntry] = field(default_factory=dict)

    def to_jsonable(self) -> dict:
        return {
            "format": "repro-artifact",
            "format_version": self.format_version,
            "config_fingerprint": self.config_fingerprint,
            "seed": self.seed,
            "snapshot_version": self.snapshot_version,
            "complete": self.complete,
            "config": self.config,
            "stages": {
                name: entry.to_jsonable()
                for name, entry in self.stages.items()
            },
        }

    @classmethod
    def from_jsonable(cls, data: dict) -> "Manifest":
        if not isinstance(data, dict) or data.get("format") != "repro-artifact":
            raise ArtifactCorruptError(
                "not a repro artifact manifest (missing format marker)"
            )
        version = data.get("format_version")
        if version != MANIFEST_FORMAT_VERSION:
            raise ArtifactVersionError(
                f"manifest format version {version!r} is not supported "
                f"(this build reads version {MANIFEST_FORMAT_VERSION})"
            )
        try:
            return cls(
                format_version=int(version),
                config_fingerprint=str(data["config_fingerprint"]),
                seed=int(data["seed"]),
                snapshot_version=int(data["snapshot_version"]),
                complete=bool(data["complete"]),
                config=dict(data["config"]),
                stages={
                    str(name): StageEntry.from_jsonable(entry)
                    for name, entry in dict(data.get("stages", {})).items()
                },
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ArtifactCorruptError(f"malformed manifest: {exc}") from exc


def write_manifest(root: pathlib.Path, manifest: Manifest) -> None:
    """Atomically (write + rename) persist the manifest."""
    payload = json.dumps(manifest.to_jsonable(), indent=2, sort_keys=True)
    target = root / MANIFEST_FILENAME
    scratch = root / (MANIFEST_FILENAME + ".tmp")
    scratch.write_text(payload + "\n", encoding="utf-8")
    os.replace(scratch, target)


def read_manifest(root: pathlib.Path) -> Manifest:
    """Load and validate ``manifest.json``; typed errors, never None."""
    source = pathlib.Path(root) / MANIFEST_FILENAME
    try:
        text = source.read_text(encoding="utf-8")
    except FileNotFoundError:
        raise ArtifactError(
            f"{root} is not an artifact directory (no {MANIFEST_FILENAME})"
        ) from None
    except OSError as exc:
        raise ArtifactCorruptError(f"cannot read {source}: {exc}") from exc
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ArtifactCorruptError(f"{source} is not valid JSON: {exc}") from exc
    return Manifest.from_jsonable(data)

"""Versioned on-disk artifacts: build once, serve anywhere (S13).

The paper's architecture is two-tier: an offline pipeline materialises
the expertise-domain collection into SQL Server, and an online tier
answers queries from it "in a few milliseconds".  This package is the
reproduction's hand-off between the tiers: every offline stage persists
as a self-describing, checksummed, versioned stage file under one
manifest, so serving replicas **warm-start from disk** instead of
rebuilding the world per process — and a checkpointed build resumes
from its last completed stage.

* :class:`ArtifactBuilder` — incremental write side (per-stage
  checkpointing for :class:`~repro.core.offline.OfflinePipeline`)
* :func:`save_artifact` / :func:`load_artifact` — whole-system snapshot
  round-trip, exact to the byte
* :class:`ArtifactError` and friends — every failure is typed; nothing
  is ever unpickled

See ``README.md`` ("Artifacts & warm start") for the CLI surface.
"""

from repro.artifact.errors import (
    ArtifactCorruptError,
    ArtifactError,
    ArtifactIncompleteError,
    ArtifactMismatchError,
    ArtifactVersionError,
)
from repro.artifact.manifest import (
    Manifest,
    config_fingerprint,
    read_manifest,
)
from repro.artifact.store import (
    ArtifactBuilder,
    LoadedArtifact,
    PartialArtifact,
    RefresherState,
    load_artifact,
    load_artifact_stages,
    save_artifact,
)
from repro.artifact.tenants import (
    TenantLayoutError,
    discover_tenants,
    parse_tenant_specs,
)

__all__ = [
    "ArtifactBuilder",
    "ArtifactCorruptError",
    "ArtifactError",
    "ArtifactIncompleteError",
    "ArtifactMismatchError",
    "ArtifactVersionError",
    "LoadedArtifact",
    "Manifest",
    "PartialArtifact",
    "RefresherState",
    "TenantLayoutError",
    "config_fingerprint",
    "discover_tenants",
    "load_artifact",
    "load_artifact_stages",
    "parse_tenant_specs",
    "read_manifest",
    "save_artifact",
]

"""Artifact directories: staged checkpoint writing and warm-start loading.

An artifact directory is one serving generation on disk::

    out/
      manifest.json            # root of trust: codecs, checksums, config
      stage-store.jsonl        # aggregated query log
      stage-weighted_graph.jsonl
      stage-multigraph.jsonl
      stage-partition.jsonl
      stage-clustering_history.jsonl
      stage-domain_store.jsonl
      stage-corpus.jsonl       # microblog users + tweets, ingestion order
      stage-refresher_*.jsonl  # optional: resumable incremental-join state

:class:`ArtifactBuilder` is the write side, designed for *checkpointed*
builds: :class:`~repro.core.offline.OfflinePipeline` hands it each
stage's outputs as the stage completes, the manifest is rewritten after
every stage (``complete: false``), and a re-run build resumes from the
longest valid prefix instead of recomputing the world.  Only
:meth:`ArtifactBuilder.finalize` marks the artifact loadable.

:func:`load_artifact` is the read side: verify the manifest, check the
config fingerprint, verify every stage checksum, decode — and hand back
the same :class:`~repro.core.offline.OfflineArtifacts` a fresh build
would have produced, byte-identically, plus the corpus platform and any
persisted incremental-refresh state.
"""

from __future__ import annotations

import os
import pathlib
import shutil
from dataclasses import dataclass

from repro.artifact.codecs import (
    CODECS,
    SIDECAR_CODECS,
    read_stage_records,
    write_stage_file,
)
from repro.artifact.sidecar import SidecarWriter, open_sidecar, sidecar_filename
from repro.artifact.errors import (
    ArtifactCorruptError,
    ArtifactError,
    ArtifactIncompleteError,
    ArtifactMismatchError,
    ArtifactVersionError,
)
from repro.artifact.manifest import (
    MANIFEST_FORMAT_VERSION,
    FileEntry,
    Manifest,
    StageEntry,
    config_fingerprint,
    config_from_jsonable,
    config_to_jsonable,
    read_manifest,
    write_manifest,
)
from repro.chaos.inject import fire
from repro.core.config import ESharpConfig
from repro.core.offline import OFFLINE_STAGES, OfflineArtifacts
from repro.microblog.platform import MicroblogPlatform
from repro.querylog.store import QueryLogStore
from repro.utils.timing import StageClock, StageReport
from repro.worldmodel.builder import build_world


def _report_to_jsonable(report: StageReport | None) -> dict | None:
    if report is None:
        return None
    return {
        "name": report.name,
        "workers": report.workers,
        "seconds": report.seconds,
        "bytes_read": report.bytes_read,
        "bytes_written": report.bytes_written,
    }


def _report_from_jsonable(data: dict | None) -> StageReport | None:
    if data is None:
        return None
    try:
        return StageReport(
            name=str(data["name"]),
            workers=int(data["workers"]),
            seconds=float(data["seconds"]),
            bytes_read=int(data["bytes_read"]),
            bytes_written=int(data["bytes_written"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ArtifactCorruptError(
            f"malformed stage report in manifest: {data!r}"
        ) from exc


class ArtifactBuilder:
    """Incremental, resumable writer for one artifact directory.

    Opening a directory that already holds (partial) stages for the
    *same* config fingerprint resumes it; a fingerprint mismatch raises
    :class:`ArtifactMismatchError` rather than silently clobbering
    someone else's artifact — delete the directory or pick another.
    """

    def __init__(
        self, root, config: ESharpConfig, *, legacy_columns: bool = True
    ) -> None:
        self.root = pathlib.Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.config = config
        #: write base64 (v1) stage files alongside binary sidecars; turned
        #: off by ``--no-legacy`` once every reader speaks the sidecar
        self.legacy_columns = legacy_columns
        self.fingerprint = config_fingerprint(config)
        try:
            existing = read_manifest(self.root)
        except ArtifactError:
            existing = None
        if existing is not None:
            if existing.config_fingerprint != self.fingerprint:
                raise ArtifactMismatchError(
                    f"{self.root} holds an artifact built from a different "
                    "config/seed; delete it or choose another directory"
                )
            self.manifest = existing
            # reopened for writing: not loadable until finalised again
            self.manifest.complete = False
        else:
            self.manifest = Manifest(
                format_version=MANIFEST_FORMAT_VERSION,
                config_fingerprint=self.fingerprint,
                seed=config.seed,
                snapshot_version=0,
                complete=False,
                config=config_to_jsonable(config),
                stages={},
            )
        write_manifest(self.root, self.manifest)

    # -- checkpoint protocol (consumed by OfflinePipeline.run) -------------

    def has_stage(self, name: str, outputs: tuple[str, ...]) -> bool:
        entry = self.manifest.stages.get(name)
        return entry is not None and all(
            _has_output(entry.files, output) for output in outputs
        )

    def load_stage(
        self, name: str, outputs: tuple[str, ...]
    ) -> tuple[dict[str, object], StageReport | None]:
        """Decode one checkpointed stage; raises :class:`ArtifactError`."""
        entry = self.manifest.stages.get(name)
        if entry is None:
            raise ArtifactCorruptError(f"stage {name!r} is not checkpointed")
        values: dict[str, object] = {}
        for output in outputs:
            if not _has_output(entry.files, output):
                raise ArtifactCorruptError(
                    f"stage {name!r} is missing output {output!r}"
                )
            values[output] = _decode_output(self.root, entry.files, output)
        return values, _report_from_jsonable(entry.report)

    def save_stage(
        self,
        name: str,
        values: dict[str, object],
        report: StageReport | None = None,
    ) -> None:
        """Persist one stage's outputs and re-write the manifest.

        Outputs with a registered sidecar codec are written in binary
        sidecar form (``stage-<output>.bin`` + ``stage-<output>.meta``)
        and — while :attr:`legacy_columns` holds — in the legacy base64
        form too, so older readers keep working during the transition.
        """
        fire("artifact.save_stage", stage=name)
        files: dict[str, FileEntry] = {}
        for output, value in values.items():
            sidecar = SIDECAR_CODECS.get(output)
            if sidecar is not None:
                kind, version, encode_sidecar, _decode = sidecar
                bin_name = sidecar_filename(output)
                writer = SidecarWriter(self.root / bin_name, kind, version)
                meta_records = list(encode_sidecar(value, writer))
                bin_sha, bin_size = writer.finish()
                files[f"{output}.bin"] = FileEntry(
                    filename=bin_name,
                    kind=kind,
                    codec_version=version,
                    sha256=bin_sha,
                    size_bytes=bin_size,
                )
                meta_name = f"stage-{output}.meta.jsonl"
                meta_sha, meta_size = write_stage_file(
                    self.root / meta_name, kind, version, meta_records
                )
                files[f"{output}.meta"] = FileEntry(
                    filename=meta_name,
                    kind=kind,
                    codec_version=version,
                    sha256=meta_sha,
                    size_bytes=meta_size,
                )
                if not self.legacy_columns:
                    continue
            kind, version, encode, _decode = CODECS[output]
            filename = f"stage-{output}.jsonl"
            sha256, size = write_stage_file(
                self.root / filename, kind, version, encode(value)
            )
            files[output] = FileEntry(
                filename=filename,
                kind=kind,
                codec_version=version,
                sha256=sha256,
                size_bytes=size,
            )
        self.manifest.stages[name] = StageEntry(
            files=files, report=_report_to_jsonable(report)
        )
        write_manifest(self.root, self.manifest)

    def drop_stage(self, name: str) -> None:
        """Remove a stage and its files from a reused directory.

        Writers that re-save into an existing artifact directory must
        drop the optional stages they are *not* re-saving ('refresher',
        'engine'): the builder keeps existing stage entries for resume,
        so a stale entry from an earlier save would otherwise be
        finalised into the new manifest and silently resurrected at
        load — e.g. an outdated refresher join state from a different
        generation than the published artifacts.
        """
        entry = self.manifest.stages.pop(name, None)
        if entry is None:
            return
        for file_entry in entry.files.values():
            (self.root / file_entry.filename).unlink(missing_ok=True)
        write_manifest(self.root, self.manifest)

    # -- corpus + refresher (the ESharp-level stages) -----------------------

    def load_corpus(self) -> MicroblogPlatform | None:
        """The checkpointed corpus, or ``None`` when absent/invalid."""
        if not self.has_stage("corpus", ("corpus",)):
            return None
        try:
            values, _report = self.load_stage("corpus", ("corpus",))
        except ArtifactError:
            return None
        platform = values["corpus"]
        assert isinstance(platform, MicroblogPlatform)
        return platform

    def save_corpus(self, platform: MicroblogPlatform) -> None:
        self.save_stage("corpus", {"corpus": platform})

    def load_engine(self) -> tuple[dict, int] | None:
        """The checkpointed packed detection index, or ``None``."""
        if not self.has_stage("engine", ("engine_index",)):
            return None
        try:
            values, _report = self.load_stage("engine", ("engine_index",))
        except ArtifactError:
            return None
        return values["engine_index"]

    def save_engine(self, packed: tuple[dict, int]) -> None:
        self.save_stage("engine", {"engine_index": packed})

    def save_refresher(
        self, store: QueryLogStore, edges: dict[tuple[str, str], float]
    ) -> None:
        """Persist the incremental refresher's maintained join state."""
        self.save_stage(
            "refresher",
            {"refresher_store": store, "refresher_edges": edges},
        )

    def finalize(self, snapshot_version: int) -> Manifest:
        """Stamp the serving version and mark the artifact loadable."""
        fire("artifact.finalize")
        if snapshot_version < 1:
            raise ArtifactVersionError(
                f"snapshot_version must be >= 1, got {snapshot_version}"
            )
        self.manifest.snapshot_version = snapshot_version
        self.manifest.complete = True
        write_manifest(self.root, self.manifest)
        return self.manifest


#: offline outputs handed to OfflineArtifacts as lazy factories — pure
#: serving never dereferences them, so a warm start skips their decode
_LAZY_OUTPUTS = frozenset({"store", "weighted_graph", "multigraph"})


def _has_output(files: dict[str, FileEntry], output: str) -> bool:
    """Whether ``files`` satisfies ``output`` in either representation."""
    return output in files or (
        f"{output}.meta" in files and f"{output}.bin" in files
    )


def _prepare_output(
    root: pathlib.Path,
    files: dict[str, FileEntry],
    output: str,
    prefer_sidecar: bool = True,
):
    """Verify one output's stage files now; return its decode as a thunk.

    Integrity stays load-time — the checksummed ``.meta`` read and the
    structural sidecar open (or the checksummed legacy read) happen
    eagerly, so a corrupted or torn stage raises its typed error from
    ``load_artifact`` itself.  Only the value construction is deferred,
    which lets the loader hand rarely-dereferenced outputs (the query
    log, the similarity graphs) to :class:`OfflineArtifacts` as lazy
    factories.

    A sidecar-capable output present in both forms loads zero-copy
    unless ``prefer_sidecar`` is off (the bench uses that to measure the
    legacy decode side by side); version-gated fallback keeps artifacts
    written before the sidecar era loading through the v1 codec
    unchanged.
    """
    sidecar = SIDECAR_CODECS.get(output)
    meta_entry = files.get(f"{output}.meta")
    bin_entry = files.get(f"{output}.bin")
    if (
        sidecar is not None
        and meta_entry is not None
        and bin_entry is not None
        and (prefer_sidecar or output not in files)
    ):
        kind, version, _encode, decode = sidecar
        records = read_stage_records(
            root / meta_entry.filename,
            kind=kind,
            version=version,
            sha256=meta_entry.sha256,
            size_bytes=meta_entry.size_bytes,
        )
        view = open_sidecar(
            root / bin_entry.filename,
            kind=kind,
            codec_version=version,
            size_bytes=bin_entry.size_bytes,
        )
        return lambda: decode(records, view)
    entry = files.get(output)
    if entry is None:
        raise ArtifactCorruptError(f"no stage file provides output {output!r}")
    kind, version, _encode, decode = CODECS[output]
    if entry.kind != kind:
        raise ArtifactCorruptError(
            f"manifest says {output!r} is a {entry.kind!r} stage, "
            f"codec expects {kind!r}"
        )
    records = read_stage_records(
        root / entry.filename,
        kind=kind,
        version=version,
        sha256=entry.sha256,
        size_bytes=entry.size_bytes,
    )
    return lambda: decode(records)


def _decode_output(
    root: pathlib.Path,
    files: dict[str, FileEntry],
    output: str,
    prefer_sidecar: bool = True,
):
    """Decode one output now (see :func:`_prepare_output`)."""
    return _prepare_output(root, files, output, prefer_sidecar)()


# -- the read side -----------------------------------------------------------


@dataclass(frozen=True)
class RefresherState:
    """Persisted :class:`~repro.core.incremental.DeltaRefresh` join state."""

    store: QueryLogStore
    edges: dict[tuple[str, str], float]


@dataclass(frozen=True)
class LoadedArtifact:
    """Everything a process needs to serve without rebuilding."""

    config: ESharpConfig
    manifest: Manifest
    offline: OfflineArtifacts
    platform: MicroblogPlatform
    refresher: RefresherState | None
    #: packed detection index ``(token → TokenCandidates, built_at)``;
    #: None for artifacts saved without one (the loader rebuilds it)
    engine: tuple[dict, int] | None = None


def _publish_directory(scratch: pathlib.Path, root: pathlib.Path) -> None:
    """Swap a finished scratch directory into place, crash-atomically.

    ``os.replace`` is atomic for a rename onto a free name, so either
    the new generation is fully published or the previous one is still
    there — never a half-written root.  When ``root`` already exists it
    is moved aside first (a directory rename cannot clobber a non-empty
    directory), and moved *back* if publishing the scratch fails, so the
    previous generation survives every failure mode short of losing the
    filesystem.
    """
    if not root.exists():
        os.replace(scratch, root)
        return
    previous = root.parent / f"{root.name}.previous.{os.getpid()}"
    if previous.exists():
        shutil.rmtree(previous)
    os.replace(root, previous)
    try:
        os.replace(scratch, root)
    except OSError:
        os.replace(previous, root)  # roll the old generation back in
        raise
    shutil.rmtree(previous, ignore_errors=True)


def save_artifact(
    root,
    *,
    config: ESharpConfig,
    offline: OfflineArtifacts,
    platform: MicroblogPlatform,
    snapshot_version: int,
    refresher: RefresherState | None = None,
    engine: tuple[dict, int] | None = None,
    legacy_columns: bool = True,
) -> Manifest:
    """Write a complete artifact for an already-built system in one call.

    Crash-atomic: every stage file and the manifest are written into a
    temporary sibling directory and swapped into ``root`` only after
    :meth:`ArtifactBuilder.finalize` succeeds.  A crash mid-save (torn
    write, injected fault, power loss) leaves either the previous
    complete generation or nothing — never a directory that
    half-validates.  (The checkpointed-resume path used by
    ``ESharp.build(artifact_dir=...)`` intentionally still writes in
    place — partial stages are its whole point, and an unfinished
    manifest is not loadable.)
    """
    root = pathlib.Path(root)
    try:
        existing = read_manifest(root)
    except ArtifactError:
        existing = None
    if existing is not None and (
        existing.config_fingerprint != config_fingerprint(config)
    ):
        raise ArtifactMismatchError(
            f"{root} holds an artifact built from a different "
            "config/seed; delete it or choose another directory"
        )
    root.parent.mkdir(parents=True, exist_ok=True)
    scratch = root.parent / f"{root.name}.saving.{os.getpid()}"
    if scratch.exists():
        shutil.rmtree(scratch)
    try:
        builder = ArtifactBuilder(scratch, config, legacy_columns=legacy_columns)
        reports = {report.name: report for report in offline.clock.reports}
        builder.save_stage("log", {"store": offline.store})
        builder.save_stage(
            "extract",
            {
                "weighted_graph": offline.weighted_graph,
                "multigraph": offline.multigraph,
            },
            reports.get("Extraction"),
        )
        builder.save_stage(
            "cluster",
            {
                "partition": offline.partition,
                "clustering_history": offline.clustering_history,
            },
            reports.get("Clustering"),
        )
        builder.save_stage("domains", {"domain_store": offline.domain_store})
        builder.save_corpus(platform)
        if engine is not None:
            builder.save_engine(engine)
        if refresher is not None:
            builder.save_refresher(refresher.store, refresher.edges)
        manifest = builder.finalize(snapshot_version)
        _publish_directory(scratch, root)
    finally:
        shutil.rmtree(scratch, ignore_errors=True)
    return manifest


def _verified_manifest(
    root: pathlib.Path, expected_config: ESharpConfig | None
) -> tuple[Manifest, ESharpConfig]:
    """Read + verify a manifest: completeness, fingerprint, expectation."""
    manifest = read_manifest(root)
    if not manifest.complete:
        raise ArtifactIncompleteError(
            f"{root} holds an unfinished build; re-run "
            "`python -m repro build --out` to complete it"
        )
    config = config_from_jsonable(ESharpConfig, manifest.config)
    if config_fingerprint(config) != manifest.config_fingerprint:
        raise ArtifactCorruptError(
            f"{root}: embedded config does not match its own fingerprint"
        )
    if expected_config is not None and (
        config_fingerprint(expected_config) != manifest.config_fingerprint
    ):
        raise ArtifactMismatchError(
            f"{root} was built from a different config/seed than requested"
        )
    return manifest, config


@dataclass(frozen=True)
class PartialArtifact:
    """A verified subset of one artifact's stage outputs.

    The scoped counterpart of :class:`LoadedArtifact`: the manifest is
    fully verified (completeness, fingerprint, per-file checksums of the
    requested stages) but only the named outputs are decoded.  A fleet
    router warm-starts its routing state this way — the domain store is
    a few percent of the directory, so the front-end comes up in
    milliseconds while replicas pay the full corpus load.
    """

    config: ESharpConfig
    manifest: Manifest
    #: output name → decoded value, exactly the outputs requested
    values: dict[str, object]


def load_artifact_stages(
    root,
    outputs: tuple[str, ...],
    expected_config: ESharpConfig | None = None,
) -> PartialArtifact:
    """Decode only the named stage ``outputs`` of a complete artifact.

    ``outputs`` uses the same names the codecs register (for example
    ``("domain_store",)`` or ``("store", "domain_store")``).  Every
    requested output is located across the manifest's stages, its file
    checksum-verified, and decoded with the stage codec; an output the
    manifest does not carry raises :class:`ArtifactCorruptError` (the
    manifest is complete, so absence means the artifact genuinely lacks
    that stage).
    """
    root = pathlib.Path(root)
    manifest, config = _verified_manifest(root, expected_config)
    by_output: dict[str, FileEntry] = {}
    for entry in manifest.stages.values():
        by_output.update(entry.files)
    values: dict[str, object] = {}
    for output in outputs:
        if not _has_output(by_output, output):
            raise ArtifactCorruptError(
                f"{root}: no stage provides output {output!r}"
            )
        values[output] = _decode_output(root, by_output, output)
    return PartialArtifact(config=config, manifest=manifest, values=values)


def load_artifact(
    root,
    expected_config: ESharpConfig | None = None,
    *,
    prefer_sidecar: bool = True,
) -> LoadedArtifact:
    """Load a complete artifact directory, verifying everything.

    Sidecar-capable stages load zero-copy off their mmap'd ``.bin``
    files when present (``prefer_sidecar=False`` forces the legacy
    base64 path — the load bench measures both).  Raises
    :class:`ArtifactError` subclasses on any problem: missing or
    unfinished manifest, unsupported format versions, checksum failures,
    malformed stages, or (when ``expected_config`` is given) an artifact
    built from a different configuration.
    """
    root = pathlib.Path(root)
    manifest, config = _verified_manifest(root, expected_config)

    values: dict[str, object] = {}
    clock = StageClock()
    for spec in OFFLINE_STAGES:
        if not spec.checkpointable:
            continue
        entry = manifest.stages.get(spec.name)
        if entry is None:
            raise ArtifactCorruptError(
                f"{root} is marked complete but stage {spec.name!r} is missing"
            )
        for output in spec.outputs:
            if not _has_output(entry.files, output):
                raise ArtifactCorruptError(
                    f"{root}: stage {spec.name!r} lacks output {output!r}"
                )
            if output in _LAZY_OUTPUTS:
                # verified now (typed errors at load), decoded on first
                # dereference — pure serving never touches these
                values[output] = _prepare_output(
                    root, entry.files, output, prefer_sidecar
                )
            else:
                values[output] = _decode_output(
                    root, entry.files, output, prefer_sidecar
                )
        report = _report_from_jsonable(entry.report)
        if report is not None:
            # replay the build's Table 9 accounting: a warm start did not
            # re-pay extraction/clustering, but the artifact remembers them
            clock.record(report)

    corpus_entry = manifest.stages.get("corpus")
    if corpus_entry is None or not _has_output(corpus_entry.files, "corpus"):
        raise ArtifactCorruptError(f"{root}: corpus stage is missing")
    platform = _decode_output(
        root, corpus_entry.files, "corpus", prefer_sidecar
    )

    engine = None
    engine_entry = manifest.stages.get("engine")
    if engine_entry is not None and _has_output(
        engine_entry.files, "engine_index"
    ):
        engine = _decode_output(
            root, engine_entry.files, "engine_index", prefer_sidecar
        )

    refresher = None
    refresher_entry = manifest.stages.get("refresher")
    if refresher_entry is not None:
        if not (
            _has_output(refresher_entry.files, "refresher_store")
            and _has_output(refresher_entry.files, "refresher_edges")
        ):
            raise ArtifactCorruptError(
                f"{root}: refresher stage is missing an output"
            )
        store = _decode_output(
            root, refresher_entry.files, "refresher_store", prefer_sidecar
        )
        edges = _decode_output(
            root, refresher_entry.files, "refresher_edges", prefer_sidecar
        )
        refresher = RefresherState(store=store, edges=edges)

    offline = OfflineArtifacts(
        # deferred: the deterministic world rebuild (~60 ms at standard
        # scale) and the query-log/graph decodes are paid only if
        # something dereferences the attribute; their stage files were
        # already verified above
        world_factory=lambda: build_world(config.world),
        store_factory=values["store"],
        weighted_graph_factory=values["weighted_graph"],
        multigraph_factory=values["multigraph"],
        partition=values["partition"],
        domain_store=values["domain_store"],
        clustering_history=values["clustering_history"],
        clock=clock,
    )
    return LoadedArtifact(
        config=config,
        manifest=manifest,
        offline=offline,
        platform=platform,
        refresher=refresher,
        engine=engine,
    )

"""Per-stage codecs: exact, self-describing, JSON-lines stage files.

Every pipeline structure round-trips through a codec with three
guarantees:

* **Exactness** — the decoded object is byte-identical to the encoded
  one: floats are serialised via JSON (Python's ``repr``-based float
  formatting, which round-trips IEEE doubles exactly), integer counters
  verbatim, and *insertion order is preserved wherever it is
  semantically load-bearing* (the query-log click ``Counter`` feeds
  ``SparseVector`` norms whose float summation is order-dependent, so
  the codec replays pairs in the store's own order).
* **Self-description** — every file starts with a one-line header
  ``repro-artifact <kind> <codec-version>``; a reader that does not
  speak the version refuses with :class:`ArtifactVersionError` instead
  of guessing.
* **No garbage on corruption** — callers verify the manifest checksum
  *before* handing bytes to a codec (see
  :func:`repro.artifact.store.read_stage_file`), and every structural
  surprise inside a codec raises :class:`ArtifactCorruptError`; nothing
  is ever unpickled.

Encoders yield plain-dict records; decoders receive the parsed record
list.  The :data:`CODECS` registry maps each logical artifact name to
its ``(kind, version, encode, decode)`` quadruple — the only table the
builder/loader need.
"""

from __future__ import annotations

import base64
import binascii
import hashlib
import json
import os
import pathlib
import sys
from array import array
from typing import Any, Callable, Iterable, Iterator

from repro.artifact.errors import (
    ArtifactCorruptError,
    ArtifactError,
    ArtifactVersionError,
)
from repro.chaos.inject import fire
from repro.community.parallel import IterationTrace
from repro.community.partition import Partition
from repro.expansion.domainstore import DomainStore, ExpertiseDomain
from repro.microblog.platform import MicroblogPlatform
from repro.microblog.users import UserProfile
from repro.querylog.store import QueryLogStore
from repro.simgraph.graph import MultiGraph, WeightedGraph

MAGIC = "repro-artifact"


# -- stage file I/O ----------------------------------------------------------


def write_stage_file(
    path: pathlib.Path, kind: str, version: int, records: Iterable[dict]
) -> tuple[str, int]:
    """Write one stage file atomically; returns ``(sha256, size_bytes)``."""
    lines = [f"{MAGIC} {kind} {version}"]
    for record in records:
        lines.append(
            json.dumps(record, ensure_ascii=False, separators=(",", ":"))
        )
    payload = ("\n".join(lines) + "\n").encode("utf-8")
    scratch = path.with_name(path.name + ".tmp")
    scratch.write_bytes(payload)
    os.replace(scratch, path)
    return hashlib.sha256(payload).hexdigest(), len(payload)


def read_stage_records(
    path: pathlib.Path,
    kind: str,
    version: int,
    sha256: str,
    size_bytes: int,
) -> list[dict]:
    """Verify then parse one stage file.

    The checksum/length check runs against the raw bytes *first*, so a
    truncated or bit-flipped file is rejected before any payload line is
    parsed — a corrupted artifact can never produce a half-decoded
    object.
    """
    fire("artifact.read", path=str(path))
    try:
        payload = pathlib.Path(path).read_bytes()
    except FileNotFoundError:
        raise ArtifactCorruptError(f"stage file missing: {path}") from None
    except OSError as exc:
        raise ArtifactCorruptError(f"cannot read {path}: {exc}") from exc
    if len(payload) != size_bytes:
        raise ArtifactCorruptError(
            f"{path} is {len(payload)} bytes, manifest says {size_bytes} "
            "(truncated or overwritten)"
        )
    if hashlib.sha256(payload).hexdigest() != sha256:
        raise ArtifactCorruptError(f"{path} fails its manifest checksum")
    try:
        text = payload.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise ArtifactCorruptError(f"{path} is not valid UTF-8") from exc
    lines = text.splitlines()
    if not lines:
        raise ArtifactCorruptError(f"{path} is empty")
    header = lines[0].split(" ")
    if len(header) != 3 or header[0] != MAGIC:
        raise ArtifactCorruptError(
            f"{path} has no '{MAGIC} <kind> <version>' header"
        )
    if header[1] != kind:
        raise ArtifactCorruptError(
            f"{path} holds a {header[1]!r} stage, expected {kind!r}"
        )
    if header[2] != str(version):
        raise ArtifactVersionError(
            f"{path}: codec {kind!r} version {header[2]} is not supported "
            f"(this build reads version {version})"
        )
    records = []
    for number, line in enumerate(lines[1:], start=2):
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as exc:
            raise ArtifactCorruptError(
                f"{path}:{number}: malformed record: {exc}"
            ) from exc
    return records


def _require(record: dict, key: str) -> Any:
    try:
        return record[key]
    except (KeyError, TypeError):
        raise ArtifactCorruptError(
            f"record missing field {key!r}: {record!r}"
        ) from None


# -- chunking & binary-column helpers ----------------------------------------

#: rows per JSON record; one big list parses ~30% faster than one record
#: per line, without producing unboundedly long lines
_CHUNK = 8192


def _chunks(rows: list) -> Iterator[list]:
    for start in range(0, len(rows), _CHUNK):
        yield rows[start : start + _CHUNK]


def _col_record(name: str, column: array) -> dict:
    """A packed numeric column: native bytes, base64, self-describing."""
    return {
        "col": [
            name,
            column.typecode,
            column.itemsize,
            base64.b64encode(column.tobytes()).decode("ascii"),
        ]
    }


def _decode_col(record: dict) -> tuple[str, array]:
    name, typecode, itemsize, blob = _require(record, "col")
    column = array(typecode)
    if column.itemsize != itemsize:
        raise ArtifactCorruptError(
            f"column {name!r}: typecode {typecode!r} is {column.itemsize} "
            f"bytes on this platform but {itemsize} in the artifact "
            "(cross-platform width mismatch — rebuild the artifact here)"
        )
    try:
        column.frombytes(base64.b64decode(blob, validate=True))
    except (binascii.Error, ValueError) as exc:
        raise ArtifactCorruptError(
            f"column {name!r} is not valid base64: {exc}"
        ) from exc
    return name, column


def _byteorder_guard(meta: dict) -> None:
    order = meta.get("byteorder")
    if order != sys.byteorder:
        raise ArtifactError(
            f"artifact was written on a {order!r}-endian machine, this one "
            f"is {sys.byteorder!r}-endian; rebuild the artifact here"
        )


# -- query-log store ---------------------------------------------------------


def encode_querylog(store: QueryLogStore) -> Iterator[dict]:
    yield {
        "meta": {
            "min_support": store.min_support,
            "impressions": store.impressions,
            "raw_bytes": store.raw_bytes,
        }
    }
    # insertion order preserved: per-query URL order determines the float
    # summation order of SparseVector norms downstream
    for chunk in _chunks([[q, n] for q, n in store.iter_query_counts()]):
        yield {"q": chunk}
    for chunk in _chunks(
        [[q, u, c] for (q, u), c in store.iter_clicks()]
    ):
        yield {"c": chunk}


def decode_querylog(records: list[dict]) -> QueryLogStore:
    if not records or "meta" not in records[0]:
        raise ArtifactCorruptError("query-log stage has no meta record")
    meta = records[0]["meta"]
    try:
        return QueryLogStore.restore(
            min_support=int(_require(meta, "min_support")),
            impressions=int(_require(meta, "impressions")),
            raw_bytes=int(_require(meta, "raw_bytes")),
            query_counts=(
                (query, count)
                for record in records[1:]
                if "q" in record
                for query, count in record["q"]
            ),
            clicks=(
                (query, url, clicks)
                for record in records[1:]
                if "c" in record
                for query, url, clicks in record["c"]
            ),
        )
    except (IndexError, TypeError, ValueError) as exc:
        raise ArtifactCorruptError(f"malformed query-log stage: {exc}") from exc


# -- weighted similarity graph ----------------------------------------------


def encode_weighted_graph(graph: WeightedGraph) -> Iterator[dict]:
    for u, v, weight in graph.edges():
        yield {"e": [u, v, weight]}
    for vertex in graph.sorted_vertices():
        if not graph.neighbour_view(vertex):
            yield {"v": vertex}


def decode_weighted_graph(records: list[dict]) -> WeightedGraph:
    graph = WeightedGraph()
    try:
        for record in records:
            if "e" in record:
                u, v, weight = record["e"]
                graph.add_edge(u, v, weight)
            elif "v" in record:
                graph.add_vertex(record["v"])
            else:
                raise ArtifactCorruptError(
                    f"unknown weighted-graph record: {record!r}"
                )
    except (TypeError, ValueError) as exc:
        raise ArtifactCorruptError(
            f"malformed weighted-graph stage: {exc}"
        ) from exc
    return graph


# -- discretised multigraph --------------------------------------------------


def encode_multigraph(graph: MultiGraph) -> Iterator[dict]:
    for u, v, multiplicity in graph.sorted_edges():
        yield {"e": [u, v, multiplicity]}
    for vertex in graph.sorted_vertices():
        if graph.degree(vertex) == 0:
            yield {"v": vertex}


def decode_multigraph(records: list[dict]) -> MultiGraph:
    graph = MultiGraph()
    try:
        for record in records:
            if "e" in record:
                u, v, multiplicity = record["e"]
                graph.add_edge(u, v, int(multiplicity))
            elif "v" in record:
                graph.add_vertex(record["v"])
            else:
                raise ArtifactCorruptError(
                    f"unknown multigraph record: {record!r}"
                )
    except (TypeError, ValueError) as exc:
        raise ArtifactCorruptError(f"malformed multigraph stage: {exc}") from exc
    return graph


# -- raw edge dict (the resumable join's live state) -------------------------


def encode_edge_dict(edges: dict[tuple[str, str], float]) -> Iterator[dict]:
    # dict insertion order preserved verbatim
    for (u, v), weight in edges.items():
        yield {"e": [u, v, weight]}


def decode_edge_dict(records: list[dict]) -> dict[tuple[str, str], float]:
    edges: dict[tuple[str, str], float] = {}
    try:
        for record in records:
            u, v, weight = _require(record, "e")
            edges[(u, v)] = float(weight)
    except (TypeError, ValueError) as exc:
        raise ArtifactCorruptError(f"malformed edge-dict stage: {exc}") from exc
    return edges


# -- partition ---------------------------------------------------------------


def encode_partition(partition: Partition) -> Iterator[dict]:
    for vertex, community in partition.assignment.items():
        yield {"a": [vertex, community]}


def decode_partition(records: list[dict]) -> Partition:
    assignment: dict[str, str] = {}
    try:
        for record in records:
            vertex, community = _require(record, "a")
            assignment[str(vertex)] = str(community)
    except (TypeError, ValueError) as exc:
        raise ArtifactCorruptError(f"malformed partition stage: {exc}") from exc
    return Partition(assignment)


# -- domain store ------------------------------------------------------------


def encode_domain_store(store: DomainStore) -> Iterator[dict]:
    for domain in store.domains():
        yield {"d": [domain.domain_id, list(domain.keywords)]}


def decode_domain_store(records: list[dict]) -> DomainStore:
    domains: list[ExpertiseDomain] = []
    try:
        for record in records:
            domain_id, keywords = _require(record, "d")
            keywords = tuple(str(keyword) for keyword in keywords)
            if not keywords or domain_id != min(keywords):
                # artifacts are written by the pipeline, whose ids are
                # canonical (smallest member); anything else is damage
                raise ArtifactCorruptError(
                    f"domain {domain_id!r} violates the canonical-id "
                    "invariant (id must be its smallest member keyword)"
                )
            domains.append(ExpertiseDomain(domain_id=domain_id, keywords=keywords))
        return DomainStore(domains)
    except (TypeError, ValueError) as exc:
        raise ArtifactCorruptError(
            f"malformed domain-store stage: {exc}"
        ) from exc


# -- clustering history ------------------------------------------------------


def encode_history(history: list[IterationTrace]) -> Iterator[dict]:
    for trace in history:
        yield {
            "i": [
                trace.iteration,
                trace.communities,
                trace.merges,
                trace.modularity_gain,
            ]
        }


def decode_history(records: list[dict]) -> list[IterationTrace]:
    history: list[IterationTrace] = []
    try:
        for record in records:
            iteration, communities, merges, gain = _require(record, "i")
            history.append(
                IterationTrace(
                    iteration=int(iteration),
                    communities=int(communities),
                    merges=int(merges),
                    modularity_gain=float(gain),
                )
            )
    except (TypeError, ValueError) as exc:
        raise ArtifactCorruptError(f"malformed history stage: {exc}") from exc
    return history


# -- microblog corpus --------------------------------------------------------
#
# The corpus is stored *columnar*: user records and tweet texts as chunked
# JSON, every numeric per-tweet/per-index column as one base64-packed
# native array.  Decoding therefore rebuilds the platform's indexes at
# C speed and leaves Tweet materialisation deferred (see
# MicroblogPlatform.restore) — the difference between a multi-second and
# a sub-second warm start at standard scale.


def encode_corpus(platform: MicroblogPlatform) -> Iterator[dict]:
    state = platform.export_state()
    yield {
        "meta": {
            "mutations": state["mutations"],
            "byteorder": sys.byteorder,
        }
    }
    user_rows = [
        [
            user.user_id,
            user.screen_name,
            user.description,
            user.persona,
            list(user.expert_topics),
            {
                str(topic_id): list(keywords)
                for topic_id, keywords in user.preferred_keywords.items()
            },
            user.verified,
            user.followers,
        ]
        for user in state["users"]
    ]
    for chunk in _chunks(user_rows):
        yield {"u": chunk}
    for chunk in _chunks([list(row) for row in state["totals"]]):
        yield {"tot": chunk}
    for chunk in _chunks(state["texts"]):
        yield {"x": chunk}
    for name in (
        "tweet_ids",
        "authors",
        "retweet_of",
        "retweet_authors",
        "topic_ids",
        "mention_offsets",
        "mention_ids",
    ):
        yield _col_record(name, state[name])
    # postings: token list in index order + one flat rows column
    postings: dict[str, array] = state["postings"]
    offsets = array("l", [0])
    flat_rows = array("l")
    for rows in postings.values():
        flat_rows.extend(rows)
        offsets.append(len(flat_rows))
    for chunk in _chunks(list(postings.keys())):
        yield {"ptok": chunk}
    yield _col_record("posting_offsets", offsets)
    yield _col_record("posting_rows", flat_rows)
    # by-author tweet ids, same offsets trick
    by_author: dict[int, list[int]] = state["by_author"]
    author_ids = array("q", by_author.keys())
    author_offsets = array("l", [0])
    author_tweets = array("q")
    for tweet_ids in by_author.values():
        author_tweets.extend(tweet_ids)
        author_offsets.append(len(author_tweets))
    yield _col_record("author_ids", author_ids)
    yield _col_record("author_offsets", author_offsets)
    yield _col_record("author_tweets", author_tweets)
    if state["pending_retweets"]:
        yield {
            "pr": [
                [original, rows]
                for original, rows in state["pending_retweets"].items()
            ]
        }
    if state["pending_mentions"]:
        yield {
            "pm": [
                [user_id, count]
                for user_id, count in state["pending_mentions"].items()
            ]
        }


def decode_corpus(records: list[dict]) -> MicroblogPlatform:
    if not records or "meta" not in records[0]:
        raise ArtifactCorruptError("corpus stage has no meta record")
    meta = records[0]["meta"]
    _byteorder_guard(meta)
    users: list[UserProfile] = []
    totals: list[tuple[int, int, int]] = []
    texts: list[str] = []
    tokens: list[str] = []
    columns: dict[str, array] = {}
    pending_retweets: dict[int, list[int]] = {}
    pending_mentions: dict[int, int] = {}
    try:
        for record in records[1:]:
            if "x" in record:
                texts.extend(record["x"])
            elif "col" in record:
                name, column = _decode_col(record)
                columns[name] = column
            elif "ptok" in record:
                tokens.extend(record["ptok"])
            elif "u" in record:
                for row in record["u"]:
                    (
                        user_id,
                        screen_name,
                        description,
                        persona,
                        expert_topics,
                        preferred,
                        verified,
                        followers,
                    ) = row
                    users.append(
                        UserProfile(
                            user_id=int(user_id),
                            screen_name=str(screen_name),
                            description=str(description),
                            persona=str(persona),
                            expert_topics=tuple(
                                int(t) for t in expert_topics
                            ),
                            preferred_keywords={
                                int(topic_id): tuple(keywords)
                                for topic_id, keywords in preferred.items()
                            },
                            verified=bool(verified),
                            followers=int(followers),
                        )
                    )
            elif "tot" in record:
                totals.extend(
                    (int(a), int(b), int(c)) for a, b, c in record["tot"]
                )
            elif "pr" in record:
                pending_retweets = {
                    int(original): [int(row) for row in rows]
                    for original, rows in record["pr"]
                }
            elif "pm" in record:
                pending_mentions = {
                    int(user_id): int(count)
                    for user_id, count in record["pm"]
                }
            else:
                raise ArtifactCorruptError(
                    f"unknown corpus record: {record!r}"
                )
        required = (
            "tweet_ids",
            "authors",
            "retweet_of",
            "retweet_authors",
            "topic_ids",
            "mention_offsets",
            "mention_ids",
            "posting_offsets",
            "posting_rows",
            "author_ids",
            "author_offsets",
            "author_tweets",
        )
        for name in required:
            if name not in columns:
                raise ArtifactCorruptError(
                    f"corpus stage is missing column {name!r}"
                )
        posting_offsets = columns["posting_offsets"]
        if len(posting_offsets) != len(tokens) + 1:
            raise ArtifactCorruptError(
                "corpus posting offsets disagree with the token list"
            )
        flat_rows = columns["posting_rows"]
        postings = {
            token: flat_rows[posting_offsets[i] : posting_offsets[i + 1]]
            for i, token in enumerate(tokens)
        }
        author_ids = columns["author_ids"]
        author_offsets = columns["author_offsets"]
        if len(author_offsets) != len(author_ids) + 1:
            raise ArtifactCorruptError(
                "corpus author offsets disagree with the author list"
            )
        author_tweets = columns["author_tweets"]
        by_author = {
            author_ids[i]: author_tweets[
                author_offsets[i] : author_offsets[i + 1]
            ].tolist()
            for i in range(len(author_ids))
        }
        return MicroblogPlatform.restore(
            users=users,
            totals=totals,
            texts=texts,
            tweet_ids=columns["tweet_ids"],
            authors=columns["authors"],
            retweet_of=columns["retweet_of"],
            retweet_authors=columns["retweet_authors"],
            topic_ids=columns["topic_ids"],
            mention_offsets=columns["mention_offsets"],
            mention_ids=columns["mention_ids"],
            postings=postings,
            by_author=by_author,
            pending_retweets=pending_retweets,
            pending_mentions=pending_mentions,
            mutations=int(_require(meta, "mutations")),
        )
    except (IndexError, TypeError, ValueError) as exc:
        raise ArtifactCorruptError(f"malformed corpus stage: {exc}") from exc


# -- detection-engine packed index -------------------------------------------
#
# The columnar candidate index is itself an offline-stage product (built
# eagerly by ESharp.build so the first query never pays it); persisting
# it means a warm start skips the whole corpus re-aggregation.  All
# per-token columns share one offsets array since they are parallel.

_ENGINE_COLUMNS: tuple[tuple[str, str], ...] = (
    ("user_ids", "q"),
    ("on_topic_tweets", "l"),
    ("on_topic_mentions", "l"),
    ("on_topic_retweets_received", "l"),
    ("topical_signal", "d"),
    ("mention_impact", "d"),
    ("retweet_impact", "d"),
)


def encode_engine(packed: tuple[dict, int]) -> Iterator[dict]:
    index, built_at = packed
    yield {
        "meta": {
            "built_at": built_at,
            "byteorder": sys.byteorder,
        }
    }
    for chunk in _chunks(list(index.keys())):
        yield {"tok": chunk}
    offsets = array("l", [0])
    total = 0
    for candidates in index.values():
        total += len(candidates)
        offsets.append(total)
    yield _col_record("offsets", offsets)
    for name, typecode in _ENGINE_COLUMNS:
        flat = array(typecode)
        for candidates in index.values():
            flat.extend(getattr(candidates, name))
        yield _col_record(name, flat)


def decode_engine(records: list[dict]) -> tuple[dict, int]:
    from repro.detector.engine import TokenCandidates

    if not records or "meta" not in records[0]:
        raise ArtifactCorruptError("engine stage has no meta record")
    meta = records[0]["meta"]
    _byteorder_guard(meta)
    tokens: list[str] = []
    columns: dict[str, array] = {}
    try:
        for record in records[1:]:
            if "tok" in record:
                tokens.extend(record["tok"])
            elif "col" in record:
                name, column = _decode_col(record)
                columns[name] = column
            else:
                raise ArtifactCorruptError(
                    f"unknown engine record: {record!r}"
                )
        offsets = columns.get("offsets")
        if offsets is None or len(offsets) != len(tokens) + 1:
            raise ArtifactCorruptError(
                "engine offsets disagree with the token list"
            )
        for name, _typecode in _ENGINE_COLUMNS:
            if name not in columns:
                raise ArtifactCorruptError(
                    f"engine stage is missing column {name!r}"
                )
            if len(columns[name]) != offsets[-1]:
                raise ArtifactCorruptError(
                    f"engine column {name!r} disagrees with the offsets"
                )
        index: dict[str, TokenCandidates] = {}
        for i, token in enumerate(tokens):
            start, stop = offsets[i], offsets[i + 1]
            index[token] = TokenCandidates(
                *(columns[name][start:stop] for name, _t in _ENGINE_COLUMNS)
            )
        return index, int(_require(meta, "built_at"))
    except (IndexError, TypeError, ValueError) as exc:
        raise ArtifactCorruptError(f"malformed engine stage: {exc}") from exc


# -- registry ----------------------------------------------------------------

#: logical artifact name → (kind, codec version, encode, decode)
CODECS: dict[str, tuple[str, int, Callable, Callable]] = {
    "store": ("querylog", 1, encode_querylog, decode_querylog),
    "weighted_graph": (
        "weighted-graph",
        1,
        encode_weighted_graph,
        decode_weighted_graph,
    ),
    "multigraph": ("multigraph", 1, encode_multigraph, decode_multigraph),
    "partition": ("partition", 1, encode_partition, decode_partition),
    "clustering_history": (
        "clustering-history",
        1,
        encode_history,
        decode_history,
    ),
    "domain_store": (
        "domain-store",
        1,
        encode_domain_store,
        decode_domain_store,
    ),
    "corpus": ("corpus", 1, encode_corpus, decode_corpus),
    "engine_index": ("engine-index", 1, encode_engine, decode_engine),
    "refresher_store": ("querylog", 1, encode_querylog, decode_querylog),
    "refresher_edges": ("edge-dict", 1, encode_edge_dict, decode_edge_dict),
}

"""Per-stage codecs: exact, self-describing, JSON-lines stage files.

Every pipeline structure round-trips through a codec with three
guarantees:

* **Exactness** — the decoded object is byte-identical to the encoded
  one: floats are serialised via JSON (Python's ``repr``-based float
  formatting, which round-trips IEEE doubles exactly), integer counters
  verbatim, and *insertion order is preserved wherever it is
  semantically load-bearing* (the query-log click ``Counter`` feeds
  ``SparseVector`` norms whose float summation is order-dependent, so
  the codec replays pairs in the store's own order).
* **Self-description** — every file starts with a one-line header
  ``repro-artifact <kind> <codec-version>``; a reader that does not
  speak the version refuses with :class:`ArtifactVersionError` instead
  of guessing.
* **No garbage on corruption** — callers verify the manifest checksum
  *before* handing bytes to a codec (see
  :func:`repro.artifact.store.read_stage_file`), and every structural
  surprise inside a codec raises :class:`ArtifactCorruptError`; nothing
  is ever unpickled.

Encoders yield plain-dict records; decoders receive the parsed record
list.  The :data:`CODECS` registry maps each logical artifact name to
its ``(kind, version, encode, decode)`` quadruple — the only table the
builder/loader need.
"""

from __future__ import annotations

import base64
import binascii
import hashlib
import json
import math
import os
import pathlib
import sys
from array import array
from typing import Any, Callable, Iterable, Iterator

from repro.artifact.errors import (
    ArtifactCorruptError,
    ArtifactError,
    ArtifactVersionError,
)
from repro.chaos.inject import fire
from repro.community.parallel import IterationTrace
from repro.community.partition import Partition
from repro.expansion.domainstore import DomainStore, ExpertiseDomain
from repro.microblog.platform import MicroblogPlatform
from repro.microblog.users import UserProfile
from repro.querylog.store import QueryLogStore
from repro.simgraph.graph import MultiGraph, WeightedGraph
from repro.utils.packed import pack_strings, unpack_strings

MAGIC = "repro-artifact"


# -- stage file I/O ----------------------------------------------------------


def write_stage_file(
    path: pathlib.Path, kind: str, version: int, records: Iterable[dict]
) -> tuple[str, int]:
    """Write one stage file atomically; returns ``(sha256, size_bytes)``."""
    lines = [f"{MAGIC} {kind} {version}"]
    for record in records:
        lines.append(
            json.dumps(record, ensure_ascii=False, separators=(",", ":"))
        )
    payload = ("\n".join(lines) + "\n").encode("utf-8")
    scratch = path.with_name(path.name + ".tmp")
    scratch.write_bytes(payload)
    os.replace(scratch, path)
    return hashlib.sha256(payload).hexdigest(), len(payload)


def read_stage_records(
    path: pathlib.Path,
    kind: str,
    version: int,
    sha256: str,
    size_bytes: int,
) -> list[dict]:
    """Verify then parse one stage file.

    The checksum/length check runs against the raw bytes *first*, so a
    truncated or bit-flipped file is rejected before any payload line is
    parsed — a corrupted artifact can never produce a half-decoded
    object.
    """
    fire("artifact.read", path=str(path))
    try:
        payload = pathlib.Path(path).read_bytes()
    except FileNotFoundError:
        raise ArtifactCorruptError(f"stage file missing: {path}") from None
    except OSError as exc:
        raise ArtifactCorruptError(f"cannot read {path}: {exc}") from exc
    if len(payload) != size_bytes:
        raise ArtifactCorruptError(
            f"{path} is {len(payload)} bytes, manifest says {size_bytes} "
            "(truncated or overwritten)"
        )
    if hashlib.sha256(payload).hexdigest() != sha256:
        raise ArtifactCorruptError(f"{path} fails its manifest checksum")
    try:
        text = payload.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise ArtifactCorruptError(f"{path} is not valid UTF-8") from exc
    lines = text.splitlines()
    if not lines:
        raise ArtifactCorruptError(f"{path} is empty")
    header = lines[0].split(" ")
    if len(header) != 3 or header[0] != MAGIC:
        raise ArtifactCorruptError(
            f"{path} has no '{MAGIC} <kind> <version>' header"
        )
    if header[1] != kind:
        raise ArtifactCorruptError(
            f"{path} holds a {header[1]!r} stage, expected {kind!r}"
        )
    if header[2] != str(version):
        raise ArtifactVersionError(
            f"{path}: codec {kind!r} version {header[2]} is not supported "
            f"(this build reads version {version})"
        )
    records = []
    for number, line in enumerate(lines[1:], start=2):
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as exc:
            raise ArtifactCorruptError(
                f"{path}:{number}: malformed record: {exc}"
            ) from exc
    return records


def _require(record: dict, key: str) -> Any:
    try:
        return record[key]
    except (KeyError, TypeError):
        raise ArtifactCorruptError(
            f"record missing field {key!r}: {record!r}"
        ) from None


# -- chunking & binary-column helpers ----------------------------------------

#: rows per JSON record; one big list parses ~30% faster than one record
#: per line, without producing unboundedly long lines
_CHUNK = 8192


def _chunks(rows: list) -> Iterator[list]:
    for start in range(0, len(rows), _CHUNK):
        yield rows[start : start + _CHUNK]


def _col_record(name: str, column) -> dict:
    """A packed numeric column: native bytes, base64, self-describing.

    Accepts owned :class:`array.array` columns *and* the typed
    ``memoryview`` columns a buffer-backed platform exports (a dual-form
    save re-encodes an mmap-restored corpus through this legacy path).
    """
    typecode = getattr(column, "typecode", None) or column.format
    return {
        "col": [
            name,
            typecode,
            column.itemsize,
            base64.b64encode(column.tobytes()).decode("ascii"),
        ]
    }


def _decode_col(record: dict) -> tuple[str, array]:
    name, typecode, itemsize, blob = _require(record, "col")
    column = array(typecode)
    if column.itemsize != itemsize:
        raise ArtifactCorruptError(
            f"column {name!r}: typecode {typecode!r} is {column.itemsize} "
            f"bytes on this platform but {itemsize} in the artifact "
            "(cross-platform width mismatch — rebuild the artifact here)"
        )
    try:
        column.frombytes(base64.b64decode(blob, validate=True))
    except (binascii.Error, ValueError) as exc:
        raise ArtifactCorruptError(
            f"column {name!r} is not valid base64: {exc}"
        ) from exc
    return name, column


def _byteorder_guard(meta: dict) -> None:
    order = meta.get("byteorder")
    if order != sys.byteorder:
        raise ArtifactError(
            f"artifact was written on a {order!r}-endian machine, this one "
            f"is {sys.byteorder!r}-endian; rebuild the artifact here"
        )


# -- query-log store ---------------------------------------------------------


def encode_querylog(store: QueryLogStore) -> Iterator[dict]:
    yield {
        "meta": {
            "min_support": store.min_support,
            "impressions": store.impressions,
            "raw_bytes": store.raw_bytes,
        }
    }
    # insertion order preserved: per-query URL order determines the float
    # summation order of SparseVector norms downstream
    for chunk in _chunks([[q, n] for q, n in store.iter_query_counts()]):
        yield {"q": chunk}
    for chunk in _chunks(
        [[q, u, c] for (q, u), c in store.iter_clicks()]
    ):
        yield {"c": chunk}


def decode_querylog(records: list[dict]) -> QueryLogStore:
    if not records or "meta" not in records[0]:
        raise ArtifactCorruptError("query-log stage has no meta record")
    meta = records[0]["meta"]
    try:
        return QueryLogStore.restore(
            min_support=int(_require(meta, "min_support")),
            impressions=int(_require(meta, "impressions")),
            raw_bytes=int(_require(meta, "raw_bytes")),
            query_counts=(
                (query, count)
                for record in records[1:]
                if "q" in record
                for query, count in record["q"]
            ),
            clicks=(
                (query, url, clicks)
                for record in records[1:]
                if "c" in record
                for query, url, clicks in record["c"]
            ),
        )
    except (IndexError, TypeError, ValueError) as exc:
        raise ArtifactCorruptError(f"malformed query-log stage: {exc}") from exc


# -- weighted similarity graph ----------------------------------------------


def encode_weighted_graph(graph: WeightedGraph) -> Iterator[dict]:
    for u, v, weight in graph.edges():
        yield {"e": [u, v, weight]}
    for vertex in graph.sorted_vertices():
        if not graph.neighbour_view(vertex):
            yield {"v": vertex}


def decode_weighted_graph(records: list[dict]) -> WeightedGraph:
    graph = WeightedGraph()
    try:
        for record in records:
            if "e" in record:
                u, v, weight = record["e"]
                graph.add_edge(u, v, weight)
            elif "v" in record:
                graph.add_vertex(record["v"])
            else:
                raise ArtifactCorruptError(
                    f"unknown weighted-graph record: {record!r}"
                )
    except (TypeError, ValueError) as exc:
        raise ArtifactCorruptError(
            f"malformed weighted-graph stage: {exc}"
        ) from exc
    return graph


# -- discretised multigraph --------------------------------------------------


def encode_multigraph(graph: MultiGraph) -> Iterator[dict]:
    for u, v, multiplicity in graph.sorted_edges():
        yield {"e": [u, v, multiplicity]}
    for vertex in graph.sorted_vertices():
        if graph.degree(vertex) == 0:
            yield {"v": vertex}


def decode_multigraph(records: list[dict]) -> MultiGraph:
    graph = MultiGraph()
    try:
        for record in records:
            if "e" in record:
                u, v, multiplicity = record["e"]
                graph.add_edge(u, v, int(multiplicity))
            elif "v" in record:
                graph.add_vertex(record["v"])
            else:
                raise ArtifactCorruptError(
                    f"unknown multigraph record: {record!r}"
                )
    except (TypeError, ValueError) as exc:
        raise ArtifactCorruptError(f"malformed multigraph stage: {exc}") from exc
    return graph


# -- raw edge dict (the resumable join's live state) -------------------------


def encode_edge_dict(edges: dict[tuple[str, str], float]) -> Iterator[dict]:
    # dict insertion order preserved verbatim
    for (u, v), weight in edges.items():
        yield {"e": [u, v, weight]}


def decode_edge_dict(records: list[dict]) -> dict[tuple[str, str], float]:
    edges: dict[tuple[str, str], float] = {}
    try:
        for record in records:
            u, v, weight = _require(record, "e")
            edges[(u, v)] = float(weight)
    except (TypeError, ValueError) as exc:
        raise ArtifactCorruptError(f"malformed edge-dict stage: {exc}") from exc
    return edges


# -- partition ---------------------------------------------------------------


def encode_partition(partition: Partition) -> Iterator[dict]:
    for vertex, community in partition.assignment.items():
        yield {"a": [vertex, community]}


def decode_partition(records: list[dict]) -> Partition:
    assignment: dict[str, str] = {}
    try:
        for record in records:
            vertex, community = _require(record, "a")
            assignment[str(vertex)] = str(community)
    except (TypeError, ValueError) as exc:
        raise ArtifactCorruptError(f"malformed partition stage: {exc}") from exc
    return Partition(assignment)


# -- domain store ------------------------------------------------------------


def encode_domain_store(store: DomainStore) -> Iterator[dict]:
    for domain in store.domains():
        yield {"d": [domain.domain_id, list(domain.keywords)]}


def decode_domain_store(records: list[dict]) -> DomainStore:
    domains: list[ExpertiseDomain] = []
    try:
        for record in records:
            domain_id, keywords = _require(record, "d")
            keywords = tuple(str(keyword) for keyword in keywords)
            if not keywords or domain_id != min(keywords):
                # artifacts are written by the pipeline, whose ids are
                # canonical (smallest member); anything else is damage
                raise ArtifactCorruptError(
                    f"domain {domain_id!r} violates the canonical-id "
                    "invariant (id must be its smallest member keyword)"
                )
            domains.append(ExpertiseDomain(domain_id=domain_id, keywords=keywords))
        return DomainStore(domains)
    except (TypeError, ValueError) as exc:
        raise ArtifactCorruptError(
            f"malformed domain-store stage: {exc}"
        ) from exc


# -- clustering history ------------------------------------------------------


def encode_history(history: list[IterationTrace]) -> Iterator[dict]:
    for trace in history:
        yield {
            "i": [
                trace.iteration,
                trace.communities,
                trace.merges,
                trace.modularity_gain,
            ]
        }


def decode_history(records: list[dict]) -> list[IterationTrace]:
    history: list[IterationTrace] = []
    try:
        for record in records:
            iteration, communities, merges, gain = _require(record, "i")
            history.append(
                IterationTrace(
                    iteration=int(iteration),
                    communities=int(communities),
                    merges=int(merges),
                    modularity_gain=float(gain),
                )
            )
    except (TypeError, ValueError) as exc:
        raise ArtifactCorruptError(f"malformed history stage: {exc}") from exc
    return history


# -- microblog corpus --------------------------------------------------------
#
# The corpus is stored *columnar*: user records and tweet texts as chunked
# JSON, every numeric per-tweet/per-index column as one base64-packed
# native array.  Decoding therefore rebuilds the platform's indexes at
# C speed and leaves Tweet materialisation deferred (see
# MicroblogPlatform.restore) — the difference between a multi-second and
# a sub-second warm start at standard scale.


def encode_corpus(platform: MicroblogPlatform) -> Iterator[dict]:
    state = platform.export_state()
    yield {
        "meta": {
            "mutations": state["mutations"],
            "byteorder": sys.byteorder,
        }
    }
    user_rows = [
        [
            user.user_id,
            user.screen_name,
            user.description,
            user.persona,
            list(user.expert_topics),
            {
                str(topic_id): list(keywords)
                for topic_id, keywords in user.preferred_keywords.items()
            },
            user.verified,
            user.followers,
        ]
        for user in state["users"]
    ]
    for chunk in _chunks(user_rows):
        yield {"u": chunk}
    for chunk in _chunks([list(row) for row in state["totals"]]):
        yield {"tot": chunk}
    for chunk in _chunks(state["texts"]):
        yield {"x": chunk}
    for name in (
        "tweet_ids",
        "authors",
        "retweet_of",
        "retweet_authors",
        "topic_ids",
        "mention_offsets",
        "mention_ids",
    ):
        yield _col_record(name, state[name])
    # postings: token list in index order + one flat rows column
    postings: dict[str, array] = state["postings"]
    offsets = array("l", [0])
    flat_rows = array("l")
    for rows in postings.values():
        flat_rows.extend(rows)
        offsets.append(len(flat_rows))
    for chunk in _chunks(list(postings.keys())):
        yield {"ptok": chunk}
    yield _col_record("posting_offsets", offsets)
    yield _col_record("posting_rows", flat_rows)
    # by-author tweet ids, same offsets trick
    by_author: dict[int, list[int]] = state["by_author"]
    author_ids = array("q", by_author.keys())
    author_offsets = array("l", [0])
    author_tweets = array("q")
    for tweet_ids in by_author.values():
        author_tweets.extend(tweet_ids)
        author_offsets.append(len(author_tweets))
    yield _col_record("author_ids", author_ids)
    yield _col_record("author_offsets", author_offsets)
    yield _col_record("author_tweets", author_tweets)
    if state["pending_retweets"]:
        yield {
            "pr": [
                [original, rows]
                for original, rows in state["pending_retweets"].items()
            ]
        }
    if state["pending_mentions"]:
        yield {
            "pm": [
                [user_id, count]
                for user_id, count in state["pending_mentions"].items()
            ]
        }


def decode_corpus(records: list[dict]) -> MicroblogPlatform:
    if not records or "meta" not in records[0]:
        raise ArtifactCorruptError("corpus stage has no meta record")
    meta = records[0]["meta"]
    _byteorder_guard(meta)
    users: list[UserProfile] = []
    totals: list[tuple[int, int, int]] = []
    texts: list[str] = []
    tokens: list[str] = []
    columns: dict[str, array] = {}
    pending_retweets: dict[int, list[int]] = {}
    pending_mentions: dict[int, int] = {}
    try:
        for record in records[1:]:
            if "x" in record:
                texts.extend(record["x"])
            elif "col" in record:
                name, column = _decode_col(record)
                columns[name] = column
            elif "ptok" in record:
                tokens.extend(record["ptok"])
            elif "u" in record:
                for row in record["u"]:
                    (
                        user_id,
                        screen_name,
                        description,
                        persona,
                        expert_topics,
                        preferred,
                        verified,
                        followers,
                    ) = row
                    users.append(
                        UserProfile(
                            user_id=int(user_id),
                            screen_name=str(screen_name),
                            description=str(description),
                            persona=str(persona),
                            expert_topics=tuple(
                                int(t) for t in expert_topics
                            ),
                            preferred_keywords={
                                int(topic_id): tuple(keywords)
                                for topic_id, keywords in preferred.items()
                            },
                            verified=bool(verified),
                            followers=int(followers),
                        )
                    )
            elif "tot" in record:
                totals.extend(
                    (int(a), int(b), int(c)) for a, b, c in record["tot"]
                )
            elif "pr" in record:
                pending_retweets = {
                    int(original): [int(row) for row in rows]
                    for original, rows in record["pr"]
                }
            elif "pm" in record:
                pending_mentions = {
                    int(user_id): int(count)
                    for user_id, count in record["pm"]
                }
            else:
                raise ArtifactCorruptError(
                    f"unknown corpus record: {record!r}"
                )
        required = (
            "tweet_ids",
            "authors",
            "retweet_of",
            "retweet_authors",
            "topic_ids",
            "mention_offsets",
            "mention_ids",
            "posting_offsets",
            "posting_rows",
            "author_ids",
            "author_offsets",
            "author_tweets",
        )
        for name in required:
            if name not in columns:
                raise ArtifactCorruptError(
                    f"corpus stage is missing column {name!r}"
                )
        posting_offsets = columns["posting_offsets"]
        if len(posting_offsets) != len(tokens) + 1:
            raise ArtifactCorruptError(
                "corpus posting offsets disagree with the token list"
            )
        flat_rows = columns["posting_rows"]
        postings = {
            token: flat_rows[posting_offsets[i] : posting_offsets[i + 1]]
            for i, token in enumerate(tokens)
        }
        author_ids = columns["author_ids"]
        author_offsets = columns["author_offsets"]
        if len(author_offsets) != len(author_ids) + 1:
            raise ArtifactCorruptError(
                "corpus author offsets disagree with the author list"
            )
        author_tweets = columns["author_tweets"]
        by_author = {
            author_ids[i]: author_tweets[
                author_offsets[i] : author_offsets[i + 1]
            ].tolist()
            for i in range(len(author_ids))
        }
        return MicroblogPlatform.restore(
            users=users,
            totals=totals,
            texts=texts,
            tweet_ids=columns["tweet_ids"],
            authors=columns["authors"],
            retweet_of=columns["retweet_of"],
            retweet_authors=columns["retweet_authors"],
            topic_ids=columns["topic_ids"],
            mention_offsets=columns["mention_offsets"],
            mention_ids=columns["mention_ids"],
            postings=postings,
            by_author=by_author,
            pending_retweets=pending_retweets,
            pending_mentions=pending_mentions,
            mutations=int(_require(meta, "mutations")),
        )
    except (IndexError, TypeError, ValueError) as exc:
        raise ArtifactCorruptError(f"malformed corpus stage: {exc}") from exc


# -- detection-engine packed index -------------------------------------------
#
# The columnar candidate index is itself an offline-stage product (built
# eagerly by ESharp.build so the first query never pays it); persisting
# it means a warm start skips the whole corpus re-aggregation.  All
# per-token columns share one offsets array since they are parallel.

_ENGINE_COLUMNS: tuple[tuple[str, str], ...] = (
    ("user_ids", "q"),
    ("on_topic_tweets", "l"),
    ("on_topic_mentions", "l"),
    ("on_topic_retweets_received", "l"),
    ("topical_signal", "d"),
    ("mention_impact", "d"),
    ("retweet_impact", "d"),
)


def encode_engine(packed: tuple[dict, int]) -> Iterator[dict]:
    index, built_at = packed
    yield {
        "meta": {
            "built_at": built_at,
            "byteorder": sys.byteorder,
        }
    }
    for chunk in _chunks(list(index.keys())):
        yield {"tok": chunk}
    offsets = array("l", [0])
    total = 0
    for candidates in index.values():
        total += len(candidates)
        offsets.append(total)
    yield _col_record("offsets", offsets)
    for name, typecode in _ENGINE_COLUMNS:
        flat = array(typecode)
        for candidates in index.values():
            flat.extend(getattr(candidates, name))
        yield _col_record(name, flat)


def decode_engine(records: list[dict]) -> tuple[dict, int]:
    from repro.detector.engine import TokenCandidates

    if not records or "meta" not in records[0]:
        raise ArtifactCorruptError("engine stage has no meta record")
    meta = records[0]["meta"]
    _byteorder_guard(meta)
    tokens: list[str] = []
    columns: dict[str, array] = {}
    try:
        for record in records[1:]:
            if "tok" in record:
                tokens.extend(record["tok"])
            elif "col" in record:
                name, column = _decode_col(record)
                columns[name] = column
            else:
                raise ArtifactCorruptError(
                    f"unknown engine record: {record!r}"
                )
        offsets = columns.get("offsets")
        if offsets is None or len(offsets) != len(tokens) + 1:
            raise ArtifactCorruptError(
                "engine offsets disagree with the token list"
            )
        for name, _typecode in _ENGINE_COLUMNS:
            if name not in columns:
                raise ArtifactCorruptError(
                    f"engine stage is missing column {name!r}"
                )
            if len(columns[name]) != offsets[-1]:
                raise ArtifactCorruptError(
                    f"engine column {name!r} disagrees with the offsets"
                )
        index: dict[str, TokenCandidates] = {}
        for i, token in enumerate(tokens):
            start, stop = offsets[i], offsets[i + 1]
            index[token] = TokenCandidates(
                *(columns[name][start:stop] for name, _t in _ENGINE_COLUMNS)
            )
        return index, int(_require(meta, "built_at"))
    except (IndexError, TypeError, ValueError) as exc:
        raise ArtifactCorruptError(f"malformed engine stage: {exc}") from exc


# -- binary sidecar codecs (v2) ----------------------------------------------
#
# The packed columnar stages have a second, faster representation: every
# numeric column goes raw into one aligned ``stage-<output>.bin`` sidecar
# (see repro.artifact.sidecar) while a small ``stage-<output>.meta``
# JSON-lines file keeps the non-columnar remainder (user records, pending
# ledgers, counters).  Loading opens the sidecar with mmap and hands the
# columns to the consumers as zero-copy views — no base64, no JSON
# parse, no array copies; the pages fault in lazily as queries touch
# them.  Encoders take ``(obj, writer)`` and yield the meta records;
# decoders take ``(records, view)``.


def _parse_corpus_users(rows: list) -> list[UserProfile]:
    users: list[UserProfile] = []
    for row in rows:
        (
            user_id,
            screen_name,
            description,
            persona,
            expert_topics,
            preferred,
            verified,
            followers,
        ) = row
        users.append(
            UserProfile(
                user_id=int(user_id),
                screen_name=str(screen_name),
                description=str(description),
                persona=str(persona),
                expert_topics=tuple(int(t) for t in expert_topics),
                preferred_keywords={
                    int(topic_id): tuple(keywords)
                    for topic_id, keywords in preferred.items()
                },
                verified=bool(verified),
                followers=int(followers),
            )
        )
    return users


_CORPUS_LEDGER_COLUMNS = (
    "tweet_ids",
    "authors",
    "retweet_of",
    "retweet_authors",
    "topic_ids",
    "mention_offsets",
    "mention_ids",
)


def _flattened_map(packed_or_dict, row_typecode: str):
    """``(keys, offsets, flat_rows)`` of a posting/by-author style map."""
    parts = getattr(packed_or_dict, "packed_parts", None)
    if parts is not None:  # PackedSliceMap: already flat, stream it through
        return parts()
    offsets = array("l", [0])
    flat = array(row_typecode)
    for rows in packed_or_dict.values():
        flat.extend(rows)
        offsets.append(len(flat))
    return list(packed_or_dict.keys()), offsets, flat


def encode_corpus_sidecar(
    platform: MicroblogPlatform, writer
) -> Iterator[dict]:
    state = platform.export_state()
    totals = state["totals"]
    writer.add_column("total_tweets", array("q", [t[0] for t in totals]))
    writer.add_column("total_mentions", array("q", [t[1] for t in totals]))
    writer.add_column("total_retweets", array("q", [t[2] for t in totals]))
    for name in _CORPUS_LEDGER_COLUMNS:
        writer.add_column(name, state[name])
    text_byte_offsets, _char_offsets, text_blob = pack_strings(state["texts"])
    writer.add_column("text_byte_offsets", text_byte_offsets)
    writer.add_blob("text_blob", text_blob)
    tokens, posting_offsets, posting_rows = _flattened_map(
        state["postings"], "l"
    )
    _byte_offsets, ptok_char_offsets, ptok_blob = pack_strings(tokens)
    writer.add_column("ptok_char_offsets", ptok_char_offsets)
    writer.add_blob("ptok_blob", ptok_blob)
    writer.add_column("posting_offsets", posting_offsets)
    writer.add_column("posting_rows", posting_rows)
    author_ids, author_offsets, author_tweets = _flattened_map(
        state["by_author"], "q"
    )
    writer.add_column("author_ids", array("q", author_ids))
    writer.add_column("author_offsets", author_offsets)
    writer.add_column("author_tweets", author_tweets)
    yield {
        "meta": {
            "mutations": state["mutations"],
            "byteorder": sys.byteorder,
        }
    }
    user_rows = [
        [
            user.user_id,
            user.screen_name,
            user.description,
            user.persona,
            list(user.expert_topics),
            {
                str(topic_id): list(keywords)
                for topic_id, keywords in user.preferred_keywords.items()
            },
            user.verified,
            user.followers,
        ]
        for user in state["users"]
    ]
    for chunk in _chunks(user_rows):
        yield {"u": chunk}
    if state["pending_retweets"]:
        yield {
            "pr": [
                [original, rows]
                for original, rows in state["pending_retweets"].items()
            ]
        }
    if state["pending_mentions"]:
        yield {
            "pm": [
                [user_id, count]
                for user_id, count in state["pending_mentions"].items()
            ]
        }


def decode_corpus_sidecar(records: list[dict], view) -> MicroblogPlatform:
    from repro.utils.packed import LazyStrings, PackedSliceMap, unpack_strings

    if not records or "meta" not in records[0]:
        raise ArtifactCorruptError("corpus stage has no meta record")
    meta = records[0]["meta"]
    _byteorder_guard(meta)
    users: list[UserProfile] = []
    pending_retweets: dict[int, list[int]] = {}
    pending_mentions: dict[int, int] = {}
    try:
        for record in records[1:]:
            if "u" in record:
                users.extend(_parse_corpus_users(record["u"]))
            elif "pr" in record:
                pending_retweets = {
                    int(original): [int(row) for row in rows]
                    for original, rows in record["pr"]
                }
            elif "pm" in record:
                pending_mentions = {
                    int(user_id): int(count)
                    for user_id, count in record["pm"]
                }
            else:
                raise ArtifactCorruptError(
                    f"unknown corpus meta record: {record!r}"
                )
        totals = list(
            zip(
                view.column("total_tweets"),
                view.column("total_mentions"),
                view.column("total_retweets"),
            )
        )
        tokens = unpack_strings(
            view.column("ptok_char_offsets"), view.column("ptok_blob")
        )
        postings = PackedSliceMap(
            tokens,
            view.column("posting_offsets"),
            view.column("posting_rows"),
        )
        author_ids = view.column("author_ids")
        by_author = PackedSliceMap(
            author_ids.tolist(),
            view.column("author_offsets"),
            view.column("author_tweets"),
        )
        texts = LazyStrings(
            view.column("text_byte_offsets"), view.column("text_blob")
        )
        return MicroblogPlatform.restore(
            users=users,
            totals=totals,
            texts=texts,
            tweet_ids=view.column("tweet_ids"),
            authors=view.column("authors"),
            retweet_of=view.column("retweet_of"),
            retweet_authors=view.column("retweet_authors"),
            topic_ids=view.column("topic_ids"),
            mention_offsets=view.column("mention_offsets"),
            mention_ids=view.column("mention_ids"),
            postings=postings,
            by_author=by_author,
            pending_retweets=pending_retweets,
            pending_mentions=pending_mentions,
            mutations=int(_require(meta, "mutations")),
        )
    except (IndexError, TypeError, ValueError) as exc:
        raise ArtifactCorruptError(f"malformed corpus stage: {exc}") from exc


def encode_engine_sidecar(packed: tuple, writer) -> Iterator[dict]:
    from repro.detector.engine import PACKED_LOG_EPSILON

    index, built_at = packed
    flat_parts = getattr(index, "flat_parts", None)
    logs = None
    if flat_parts is not None:  # PackedEngineIndex: stream the flat buffers
        tokens, offsets, columns, logs, log_epsilon = flat_parts()
        if log_epsilon != PACKED_LOG_EPSILON:
            logs = None
    else:
        tokens = list(index.keys())
        offsets = array("l", [0])
        total = 0
        for candidates in index.values():
            total += len(candidates)
            offsets.append(total)
        columns = {}
        for name, typecode in _ENGINE_COLUMNS:
            flat = array(typecode)
            for candidates in index.values():
                flat.extend(getattr(candidates, name))
            columns[name] = flat
    if logs is None:
        # log-transformed feature columns, computed once at save time so
        # every warm start (and the vectorized scoring tail) gets them
        # for free.  math.log, never numpy.log: the scalar log_transform
        # is the spec and the two libms differ in the last ulp.
        floor = math.log(PACKED_LOG_EPSILON)
        logs = {
            log_name: array(
                "d",
                [
                    math.log(value) if value > PACKED_LOG_EPSILON else floor
                    for value in columns[name]
                ],
            )
            for log_name, name in (
                ("log_topical_signal", "topical_signal"),
                ("log_mention_impact", "mention_impact"),
                ("log_retweet_impact", "retweet_impact"),
            )
        }
    _byte_offsets, tok_char_offsets, tok_blob = pack_strings(tokens)
    writer.add_column("tok_char_offsets", tok_char_offsets)
    writer.add_blob("tok_blob", tok_blob)
    writer.add_column("offsets", offsets)
    for name, _typecode in _ENGINE_COLUMNS:
        writer.add_column(name, columns[name])
    for name in ("log_topical_signal", "log_mention_impact", "log_retweet_impact"):
        writer.add_column(name, logs[name])
    yield {
        "meta": {
            "built_at": built_at,
            "byteorder": sys.byteorder,
            "log_epsilon": PACKED_LOG_EPSILON,
        }
    }


def decode_engine_sidecar(records: list[dict], view) -> tuple:
    from repro.detector.engine import PackedEngineIndex
    from repro.utils.packed import unpack_strings

    if not records or "meta" not in records[0]:
        raise ArtifactCorruptError("engine stage has no meta record")
    meta = records[0]["meta"]
    _byteorder_guard(meta)
    try:
        tokens = unpack_strings(
            view.column("tok_char_offsets"), view.column("tok_blob")
        )
        offsets = view.column("offsets")
        columns = {
            name: view.column(name) for name, _typecode in _ENGINE_COLUMNS
        }
        log_columns = {
            name: view.column(name)
            for name in PackedEngineIndex.LOG_FIELDS
            if name in view
        }
        index = PackedEngineIndex(
            tokens,
            offsets,
            columns,
            log_columns=log_columns or None,
            log_epsilon=float(_require(meta, "log_epsilon")),
        )
        total = index.candidate_rows()
        for name, column in columns.items():
            if len(column) != total:
                raise ArtifactCorruptError(
                    f"engine column {name!r} disagrees with the offsets"
                )
        for name, column in log_columns.items():
            if len(column) != total:
                raise ArtifactCorruptError(
                    f"engine column {name!r} disagrees with the offsets"
                )
        return index, int(_require(meta, "built_at"))
    except (IndexError, TypeError, ValueError) as exc:
        raise ArtifactCorruptError(f"malformed engine stage: {exc}") from exc


def encode_querylog_sidecar(store: QueryLogStore, writer) -> Iterator[dict]:
    queries: list[str] = []
    counts = array("q")
    for query, count in store.iter_query_counts():
        queries.append(query)
        counts.append(count)
    counted = len(queries)
    query_position = {query: i for i, query in enumerate(queries)}
    urls: list[str] = []
    url_position: dict[str, int] = {}
    click_query = array("q")
    click_url = array("q")
    click_count = array("q")
    for (query, url), count in store.iter_clicks():
        position = query_position.get(query)
        if position is None:
            position = query_position[query] = len(queries)
            queries.append(query)
        click_query.append(position)
        position = url_position.get(url)
        if position is None:
            position = url_position[url] = len(urls)
            urls.append(url)
        click_url.append(position)
        click_count.append(count)
    _bytes_q, query_char_offsets, query_blob = pack_strings(queries)
    writer.add_column("query_char_offsets", query_char_offsets)
    writer.add_blob("query_blob", query_blob)
    _bytes_u, url_char_offsets, url_blob = pack_strings(urls)
    writer.add_column("url_char_offsets", url_char_offsets)
    writer.add_blob("url_blob", url_blob)
    writer.add_column("query_counts", counts)
    writer.add_column("click_query", click_query)
    writer.add_column("click_url", click_url)
    writer.add_column("click_count", click_count)
    yield {
        "meta": {
            "min_support": store.min_support,
            "impressions": store.impressions,
            "raw_bytes": store.raw_bytes,
            "counted_queries": counted,
        }
    }


def decode_querylog_sidecar(records: list[dict], view) -> QueryLogStore:
    from repro.utils.packed import unpack_strings

    if not records or "meta" not in records[0]:
        raise ArtifactCorruptError("query-log stage has no meta record")
    meta = records[0]["meta"]
    try:
        queries = unpack_strings(
            view.column("query_char_offsets"), view.column("query_blob")
        )
        urls = unpack_strings(
            view.column("url_char_offsets"), view.column("url_blob")
        )
        counts = view.column("query_counts")
        counted = int(_require(meta, "counted_queries"))
        if len(counts) != counted or counted > len(queries):
            raise ArtifactCorruptError(
                "query-log counts disagree with the query table"
            )
        # zip stops at the counted prefix: trailing queries exist only as
        # click keys.  All bulk C-level construction — this is what turns
        # the per-pair restore loop into a ~10 ms operation.
        query_counts = dict(zip(queries, counts.tolist()))
        click_queries = list(map(queries.__getitem__, view.column("click_query")))
        click_urls = list(map(urls.__getitem__, view.column("click_url")))
        clicks = dict(
            zip(zip(click_queries, click_urls), view.column("click_count").tolist())
        )
        return QueryLogStore.restore_columnar(
            min_support=int(_require(meta, "min_support")),
            impressions=int(_require(meta, "impressions")),
            raw_bytes=int(_require(meta, "raw_bytes")),
            query_counts=query_counts,
            clicks=clicks,
        )
    except (IndexError, TypeError, ValueError) as exc:
        raise ArtifactCorruptError(f"malformed query-log stage: {exc}") from exc


# -- graph sidecars ----------------------------------------------------------
#
# Both graphs are numeric once the vertex labels are interned: one string
# table plus (u, v, value) index columns.  The decoders hand the label
# pairs to the graph classes' bulk ``restore_sorted`` constructors, which
# build the adjacency dicts directly — at artifact scale the per-edge
# ``add_edge`` calls (and their cache invalidation) were the loader's
# single largest remaining cost.


def _write_vertex_table(writer, vertices) -> dict[str, int]:
    _byte_offsets, char_offsets, blob = pack_strings(list(vertices))
    writer.add_column("vertex_char_offsets", char_offsets)
    writer.add_blob("vertex_blob", blob)
    return {vertex: i for i, vertex in enumerate(vertices)}


def _read_edge_labels(view, vertices) -> tuple[list[str], list[str]]:
    """Decode edge endpoint columns into label lists (bounds-checked)."""
    edge_u, edge_v = view.column("edge_u"), view.column("edge_v")
    if len(edge_u) != len(edge_v):
        raise ArtifactCorruptError("graph edge columns disagree in length")
    for column in (edge_u, edge_v):
        if len(column) and not 0 <= min(column) <= max(column) < len(vertices):
            raise ArtifactCorruptError("graph edge endpoint out of bounds")
    return (
        list(map(vertices.__getitem__, edge_u)),
        list(map(vertices.__getitem__, edge_v)),
    )


def encode_weighted_graph_sidecar(
    graph: WeightedGraph, writer
) -> Iterator[dict]:
    index = _write_vertex_table(writer, graph.sorted_vertices())
    edge_u, edge_v, edge_weight = array("l"), array("l"), array("d")
    for u, v, weight in graph.edges():
        edge_u.append(index[u])
        edge_v.append(index[v])
        edge_weight.append(weight)
    writer.add_column("edge_u", edge_u)
    writer.add_column("edge_v", edge_v)
    writer.add_column("edge_weight", edge_weight)
    yield {"meta": {"byteorder": sys.byteorder}}


def decode_weighted_graph_sidecar(records: list[dict], view) -> WeightedGraph:
    if not records or "meta" not in records[0]:
        raise ArtifactCorruptError("weighted-graph stage has no meta record")
    _byteorder_guard(records[0]["meta"])
    try:
        vertices = unpack_strings(
            view.column("vertex_char_offsets"), view.column("vertex_blob")
        )
        us, vs = _read_edge_labels(view, vertices)
        weights = view.column("edge_weight").tolist()
        if len(weights) != len(us):
            raise ArtifactCorruptError(
                "graph edge columns disagree in length"
            )
        return WeightedGraph.restore_sorted(vertices, zip(us, vs, weights))
    except (IndexError, KeyError, TypeError, ValueError) as exc:
        raise ArtifactCorruptError(
            f"malformed weighted-graph stage: {exc}"
        ) from exc


def encode_multigraph_sidecar(graph: MultiGraph, writer) -> Iterator[dict]:
    index = _write_vertex_table(writer, graph.sorted_vertices())
    edge_u, edge_v, edge_mult = array("l"), array("l"), array("q")
    for u, v, multiplicity in graph.sorted_edges():
        edge_u.append(index[u])
        edge_v.append(index[v])
        edge_mult.append(multiplicity)
    writer.add_column("edge_u", edge_u)
    writer.add_column("edge_v", edge_v)
    writer.add_column("edge_multiplicity", edge_mult)
    yield {"meta": {"byteorder": sys.byteorder}}


def decode_multigraph_sidecar(records: list[dict], view) -> MultiGraph:
    if not records or "meta" not in records[0]:
        raise ArtifactCorruptError("multigraph stage has no meta record")
    _byteorder_guard(records[0]["meta"])
    try:
        vertices = unpack_strings(
            view.column("vertex_char_offsets"), view.column("vertex_blob")
        )
        us, vs = _read_edge_labels(view, vertices)
        mults = view.column("edge_multiplicity").tolist()
        if len(mults) != len(us):
            raise ArtifactCorruptError(
                "graph edge columns disagree in length"
            )
        return MultiGraph.restore_sorted(vertices, zip(us, vs, mults))
    except (IndexError, KeyError, TypeError, ValueError) as exc:
        raise ArtifactCorruptError(f"malformed multigraph stage: {exc}") from exc


def encode_partition_sidecar(partition: Partition, writer) -> Iterator[dict]:
    assignment = partition.assignment
    communities: dict[str, int] = {}
    assign = array("l")
    for community in assignment.values():
        assign.append(communities.setdefault(community, len(communities)))
    _byte_offsets, vertex_char_offsets, vertex_blob = pack_strings(
        list(assignment)
    )
    writer.add_column("vertex_char_offsets", vertex_char_offsets)
    writer.add_blob("vertex_blob", vertex_blob)
    _byte_offsets, community_char_offsets, community_blob = pack_strings(
        list(communities)
    )
    writer.add_column("community_char_offsets", community_char_offsets)
    writer.add_blob("community_blob", community_blob)
    writer.add_column("assignment", assign)
    yield {"meta": {"byteorder": sys.byteorder}}


def decode_partition_sidecar(records: list[dict], view) -> Partition:
    if not records or "meta" not in records[0]:
        raise ArtifactCorruptError("partition stage has no meta record")
    _byteorder_guard(records[0]["meta"])
    try:
        vertices = unpack_strings(
            view.column("vertex_char_offsets"), view.column("vertex_blob")
        )
        communities = unpack_strings(
            view.column("community_char_offsets"), view.column("community_blob")
        )
        assign = view.column("assignment")
        if len(assign) != len(vertices):
            raise ArtifactCorruptError(
                "partition assignment disagrees with the vertex table"
            )
        if len(assign) and not (
            0 <= min(assign) <= max(assign) < len(communities)
        ):
            raise ArtifactCorruptError(
                "partition community index out of bounds"
            )
        return Partition(
            dict(zip(vertices, map(communities.__getitem__, assign)))
        )
    except (IndexError, TypeError, ValueError) as exc:
        raise ArtifactCorruptError(f"malformed partition stage: {exc}") from exc


def encode_domain_store_sidecar(store: DomainStore, writer) -> Iterator[dict]:
    offsets = array("l", [0])
    keywords: list[str] = []
    for domain in store.domains():
        keywords.extend(domain.keywords)
        offsets.append(len(keywords))
    _byte_offsets, keyword_char_offsets, keyword_blob = pack_strings(keywords)
    writer.add_column("keyword_char_offsets", keyword_char_offsets)
    writer.add_blob("keyword_blob", keyword_blob)
    writer.add_column("domain_offsets", offsets)
    yield {"meta": {"byteorder": sys.byteorder}}


def decode_domain_store_sidecar(records: list[dict], view) -> DomainStore:
    if not records or "meta" not in records[0]:
        raise ArtifactCorruptError("domain-store stage has no meta record")
    _byteorder_guard(records[0]["meta"])
    try:
        keywords = unpack_strings(
            view.column("keyword_char_offsets"), view.column("keyword_blob")
        )
        offsets = view.column("domain_offsets")
        if (
            not len(offsets)
            or offsets[0] != 0
            or offsets[len(offsets) - 1] != len(keywords)
        ):
            raise ArtifactCorruptError(
                "domain offsets disagree with the keyword table"
            )
        domains: list[ExpertiseDomain] = []
        for i in range(len(offsets) - 1):
            start, stop = offsets[i], offsets[i + 1]
            if stop <= start:
                raise ArtifactCorruptError("empty or unordered domain slice")
            members = tuple(keywords[start:stop])
            # ids are canonical (smallest member) by construction — see
            # decode_domain_store — so reconstructing them is exact
            domains.append(
                ExpertiseDomain(domain_id=min(members), keywords=members)
            )
        return DomainStore(domains)
    except (IndexError, TypeError, ValueError) as exc:
        raise ArtifactCorruptError(
            f"malformed domain-store stage: {exc}"
        ) from exc


_HISTORY_COLUMNS = ("iteration", "communities", "merges", "modularity_gain")


def encode_history_sidecar(
    history: list[IterationTrace], writer
) -> Iterator[dict]:
    writer.add_column(
        "iteration", array("l", [trace.iteration for trace in history])
    )
    writer.add_column(
        "communities", array("l", [trace.communities for trace in history])
    )
    writer.add_column(
        "merges", array("l", [trace.merges for trace in history])
    )
    writer.add_column(
        "modularity_gain",
        array("d", [trace.modularity_gain for trace in history]),
    )
    yield {"meta": {"byteorder": sys.byteorder}}


def decode_history_sidecar(records: list[dict], view) -> list[IterationTrace]:
    if not records or "meta" not in records[0]:
        raise ArtifactCorruptError("history stage has no meta record")
    _byteorder_guard(records[0]["meta"])
    try:
        columns = [view.column(name) for name in _HISTORY_COLUMNS]
        if len({len(column) for column in columns}) > 1:
            raise ArtifactCorruptError("history columns disagree in length")
        return [
            IterationTrace(
                iteration=iteration,
                communities=communities,
                merges=merges,
                modularity_gain=gain,
            )
            for iteration, communities, merges, gain in zip(
                *(column.tolist() for column in columns)
            )
        ]
    except (IndexError, TypeError, ValueError) as exc:
        raise ArtifactCorruptError(f"malformed history stage: {exc}") from exc


def encode_edge_dict_sidecar(
    edges: dict[tuple[str, str], float], writer
) -> Iterator[dict]:
    # dict insertion order is preserved verbatim (the resumable join
    # depends on it): the vertex table lists labels in first-appearance
    # order and the edge columns keep the dict's own order
    index: dict[str, int] = {}
    edge_u, edge_v, edge_weight = array("l"), array("l"), array("d")
    for (u, v), weight in edges.items():
        edge_u.append(index.setdefault(u, len(index)))
        edge_v.append(index.setdefault(v, len(index)))
        edge_weight.append(weight)
    _write_vertex_table(writer, list(index))
    writer.add_column("edge_u", edge_u)
    writer.add_column("edge_v", edge_v)
    writer.add_column("edge_weight", edge_weight)
    yield {"meta": {"byteorder": sys.byteorder}}


def decode_edge_dict_sidecar(
    records: list[dict], view
) -> dict[tuple[str, str], float]:
    if not records or "meta" not in records[0]:
        raise ArtifactCorruptError("edge-dict stage has no meta record")
    _byteorder_guard(records[0]["meta"])
    try:
        vertices = unpack_strings(
            view.column("vertex_char_offsets"), view.column("vertex_blob")
        )
        us, vs = _read_edge_labels(view, vertices)
        weights = view.column("edge_weight").tolist()
        if len(weights) != len(us):
            raise ArtifactCorruptError(
                "graph edge columns disagree in length"
            )
        return dict(zip(zip(us, vs), weights))
    except (IndexError, TypeError, ValueError) as exc:
        raise ArtifactCorruptError(f"malformed edge-dict stage: {exc}") from exc


# -- registry ----------------------------------------------------------------

#: logical artifact name → (kind, codec version, encode, decode)
CODECS: dict[str, tuple[str, int, Callable, Callable]] = {
    "store": ("querylog", 1, encode_querylog, decode_querylog),
    "weighted_graph": (
        "weighted-graph",
        1,
        encode_weighted_graph,
        decode_weighted_graph,
    ),
    "multigraph": ("multigraph", 1, encode_multigraph, decode_multigraph),
    "partition": ("partition", 1, encode_partition, decode_partition),
    "clustering_history": (
        "clustering-history",
        1,
        encode_history,
        decode_history,
    ),
    "domain_store": (
        "domain-store",
        1,
        encode_domain_store,
        decode_domain_store,
    ),
    "corpus": ("corpus", 1, encode_corpus, decode_corpus),
    "engine_index": ("engine-index", 1, encode_engine, decode_engine),
    "refresher_store": ("querylog", 1, encode_querylog, decode_querylog),
    "refresher_edges": ("edge-dict", 1, encode_edge_dict, decode_edge_dict),
}

#: outputs that additionally carry a binary sidecar — name →
#: (kind, codec version, encode(obj, writer) → meta records,
#: decode(records, view) → obj).  The sidecar and its ``.meta`` file
#: share the version; legacy (v1) stage files for the same output remain
#: readable forever and are still written unless the save opts out.
SIDECAR_CODECS: dict[str, tuple[str, int, Callable, Callable]] = {
    "store": ("querylog", 2, encode_querylog_sidecar, decode_querylog_sidecar),
    "corpus": ("corpus", 2, encode_corpus_sidecar, decode_corpus_sidecar),
    "engine_index": (
        "engine-index",
        2,
        encode_engine_sidecar,
        decode_engine_sidecar,
    ),
    "refresher_store": (
        "querylog",
        2,
        encode_querylog_sidecar,
        decode_querylog_sidecar,
    ),
    "weighted_graph": (
        "weighted-graph",
        2,
        encode_weighted_graph_sidecar,
        decode_weighted_graph_sidecar,
    ),
    "multigraph": (
        "multigraph",
        2,
        encode_multigraph_sidecar,
        decode_multigraph_sidecar,
    ),
    "refresher_edges": (
        "edge-dict",
        2,
        encode_edge_dict_sidecar,
        decode_edge_dict_sidecar,
    ),
    "partition": (
        "partition",
        2,
        encode_partition_sidecar,
        decode_partition_sidecar,
    ),
    "domain_store": (
        "domain-store",
        2,
        encode_domain_store_sidecar,
        decode_domain_store_sidecar,
    ),
    "clustering_history": (
        "clustering-history",
        2,
        encode_history_sidecar,
        decode_history_sidecar,
    ),
}

"""Tenant artifact layouts: naming corpora on disk.

A multi-tenant deployment is, on disk, just several artifact
directories — one complete, self-describing artifact per tenant.  This
module supplies the two ways the CLI and fleet name them:

* **Explicit flags** — repeated ``--tenant NAME=DIR`` arguments, parsed
  by :func:`parse_tenant_specs` into validated ``(name, dir)`` pairs.
* **Layout discovery** — a root directory whose immediate subdirectories
  are tenant artifacts (each recognisable by its ``manifest.json``),
  scanned by :func:`discover_tenants`.

Both validate tenant names against the serving tier's pattern and
reject duplicates, surfacing every problem as a typed
:class:`TenantLayoutError` (an :class:`~repro.artifact.errors.ArtifactError`),
never a bare ``ValueError``.
"""

from __future__ import annotations

import pathlib
from typing import Dict, Iterable, Union

from repro.artifact.errors import ArtifactError
from repro.artifact.manifest import MANIFEST_FILENAME


class TenantLayoutError(ArtifactError):
    """A tenant flag or on-disk tenant layout is malformed."""


def _validated_name(name: str) -> str:
    # deferred: repro.serving.tenancy pulls in the service stack, which
    # a CLI parse error path should not pay for on the happy import
    from repro.serving.tenancy import TENANT_NAME_PATTERN

    if not TENANT_NAME_PATTERN.match(name):
        raise TenantLayoutError(
            f"invalid tenant name {name!r}: must match "
            f"{TENANT_NAME_PATTERN.pattern}"
        )
    return name


def parse_tenant_specs(
    flags: Iterable[str],
) -> Dict[str, pathlib.Path]:
    """Parse repeated ``NAME=DIR`` flags into ``{name: artifact_dir}``.

    The flag order is preserved for error reporting but the result is
    name-keyed; a repeated name is an error (silently keeping the last
    occurrence would hide an operator typo).
    """
    specs: Dict[str, pathlib.Path] = {}
    for flag in flags:
        name, separator, raw_dir = flag.partition("=")
        if not separator or not name or not raw_dir:
            raise TenantLayoutError(
                f"malformed tenant flag {flag!r}: expected NAME=DIR"
            )
        name = _validated_name(name)
        if name in specs:
            raise TenantLayoutError(
                f"tenant {name!r} given more than once"
            )
        specs[name] = pathlib.Path(raw_dir)
    if not specs:
        raise TenantLayoutError("no tenants given")
    return specs


def discover_tenants(
    root: Union[str, pathlib.Path],
) -> Dict[str, pathlib.Path]:
    """Scan ``root`` for tenant artifacts: one subdirectory per tenant.

    A subdirectory counts as a tenant artifact iff it holds a manifest
    file; anything else under the root is ignored (scratch dirs, logs).
    The tenant name is the directory name, validated like a flag.
    """
    root = pathlib.Path(root)
    if not root.is_dir():
        raise TenantLayoutError(
            f"tenant root {str(root)!r} is not a directory"
        )
    specs: Dict[str, pathlib.Path] = {}
    for child in sorted(root.iterdir()):
        if not child.is_dir() or not (child / MANIFEST_FILENAME).is_file():
            continue
        specs[_validated_name(child.name)] = child
    if not specs:
        raise TenantLayoutError(
            f"tenant root {str(root)!r} holds no artifact subdirectories "
            f"(none has a {MANIFEST_FILENAME})"
        )
    return specs

"""Tweet record type."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.utils.text import tokenize


@dataclass(frozen=True)
class Tweet:
    """One micropost.

    ``topic_id`` is ground truth from the generator (what the author was
    writing about); the detector never sees it — matching is purely
    textual, per §3.
    """

    tweet_id: int
    author_id: int
    text: str
    #: user ids @-mentioned in the text
    mentions: tuple[int, ...] = ()
    #: tweet id this retweets, if any
    retweet_of: int | None = None
    #: ground-truth topic (None for noise/chatter)
    topic_id: int | None = None
    tokens: frozenset[str] = field(default=frozenset())

    def __post_init__(self) -> None:
        if not self.tokens:
            object.__setattr__(self, "tokens", frozenset(tokenize(self.text)))

    @property
    def is_retweet(self) -> bool:
        return self.retweet_of is not None

    def matches(self, query_tokens: list[str]) -> bool:
        """§3 rule: the tweet contains all query terms after lower-casing."""
        return all(term in self.tokens for term in query_tokens)

"""Tweet record type."""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.text import tokenize


@dataclass(frozen=True)
class Tweet:
    """One micropost.

    ``topic_id`` is ground truth from the generator (what the author was
    writing about); the detector never sees it — matching is purely
    textual, per §3.

    ``tokens`` is a pure function of ``text`` and is derived **lazily**
    (cached on first access): the columnar detection engine and the
    platform's posting lists never touch per-tweet token sets at query
    time, and deferring the tokenisation is what lets an artifact warm
    start rehydrate 150k tweets without paying 150k ``frozenset`` builds
    it may never need.
    """

    tweet_id: int
    author_id: int
    text: str
    #: user ids @-mentioned in the text
    mentions: tuple[int, ...] = ()
    #: tweet id this retweets, if any
    retweet_of: int | None = None
    #: ground-truth topic (None for noise/chatter)
    topic_id: int | None = None

    @property
    def tokens(self) -> frozenset[str]:
        """Lower-cased token set of ``text`` (computed once, then cached)."""
        cached = self.__dict__.get("_tokens")
        if cached is None:
            cached = frozenset(tokenize(self.text))
            object.__setattr__(self, "_tokens", cached)
        return cached

    @property
    def is_retweet(self) -> bool:
        return self.retweet_of is not None

    def matches(self, query_tokens: list[str]) -> bool:
        """§3 rule: the tweet contains all query terms after lower-casing."""
        return all(term in self.tokens for term in query_tokens)

"""Sizing knobs for the microblog simulator."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class MicroblogConfig:
    """Parameters of :class:`repro.microblog.MicroblogGenerator`."""

    seed: int = 2016
    #: total tweets to generate (mentions/retweets included)
    tweets: int = 150_000
    #: experts per topic scale — actual counts scale with topic popularity
    experts_per_topic: float = 3.0
    #: broad experts per *domain* (they span several sibling topics)
    broad_experts_per_domain: int = 12
    #: news bots per domain
    news_bots_per_domain: int = 6
    #: casual users (platform-wide)
    casual_users: int = 1200
    #: spammers (platform-wide)
    spammers: int = 80
    #: celebrities (platform-wide, drawn to popular topics)
    celebrities: int = 30
    #: probability that a casual tweet mentions a relevant expert
    mention_rate: float = 0.25
    #: probability that a casual tweet is a retweet of an expert tweet
    retweet_rate: float = 0.2
    #: max characters per post (the constraint behind the recall problem)
    max_chars: int = 140

    def __post_init__(self) -> None:
        if self.tweets < 0:
            raise ValueError("tweets must be non-negative")
        if self.experts_per_topic <= 0:
            raise ValueError("experts_per_topic must be positive")
        for name in ("mention_rate", "retweet_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0,1], got {value}")
        if self.max_chars < 40:
            raise ValueError("max_chars must be at least 40")

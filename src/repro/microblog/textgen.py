"""Tweet text composition: templates, filler and screen names.

Text matters only through its token set (the §3 matching rule), so the
templates aim for realistic token statistics: one topical keyword per
tweet (the 140-character recall pathology), light filler, occasional
second keyword, @-mentions and the classic ``rt @user:`` prefix.
"""

from __future__ import annotations

import random

from repro.utils.text import truncate_to_chars

TWEET_TEMPLATES: tuple[str, ...] = (
    "big day for {kw} fans",
    "my thoughts on {kw} are up on the blog",
    "{kw} is trending for a reason",
    "can't stop following {kw} this season",
    "deep dive on {kw} coming later today",
    "everything you need to know about {kw}",
    "hot take: {kw} is underrated",
    "live notes from the {kw} event",
    "quick question about {kw} for my followers",
    "the {kw} situation keeps getting stranger",
    "weekly {kw} roundup is out now",
    "so much happening around {kw} right now",
)

MENTION_TEMPLATES: tuple[str, ...] = (
    "@{name} great take on {kw}",
    "what does @{name} think about {kw}",
    "loved this {kw} breakdown by @{name}",
    "@{name} is my go to source for {kw}",
    "cc @{name} re {kw}",
)

SPAM_TEMPLATES: tuple[str, ...] = (
    "click here for free {kw} giveaways",
    "you won't believe these {kw} secrets",
    "follow back if you love {kw}",
    "best {kw} deals online buy now",
)

CHATTER: tuple[str, ...] = (
    "good morning everyone",
    "coffee first then everything else",
    "what a week it has been",
    "weekend plans anyone",
    "traffic is terrible again",
    "just finished a great book",
    "dinner was amazing tonight",
    "monday mood is real",
)

SCREEN_NAME_PATTERNS: tuple[str, ...] = (
    "{short}zone",
    "{short}_daily",
    "all{short}news",
    "the{short}report",
    "{short}insider",
    "{short}fanatic",
    "mr_{short}",
    "{short}watch",
    "team{short}",
    "{short}source",
)

DESCRIPTION_PATTERNS: dict[str, tuple[str, ...]] = {
    "focused_expert": (
        "All news about {topic}",
        "Covering {topic} for the daily gazette",
        "Your source for breaking {topic} updates",
        "Huge {topic} fan. analysis and opinions",
    ),
    "broad_expert": (
        "Analysis across {topic} and beyond",
        "Writing about {topic} and the wider scene",
        "Independent voice on {topic} and friends",
    ),
    "news_bot": (
        "Automated {topic} headlines every hour",
        "The most comprehensive {topic} news feed",
    ),
    "celebrity": (
        "The official account. {topic} and life",
        "Public figure. occasional {topic} thoughts",
    ),
    "casual": (
        "Just here for the timeline",
        "Opinions are my own",
        "Parent, commuter, amateur chef",
    ),
    "spammer": (
        "DM for promo deals",
        "Follow for follow",
    ),
}


def compose_tweet(keyword: str, rng: random.Random, max_chars: int = 140) -> str:
    """A plain topical tweet naming exactly one keyword."""
    template = rng.choice(TWEET_TEMPLATES)
    return truncate_to_chars(template.format(kw=keyword), max_chars)


def compose_mention(
    keyword: str, screen_name: str, rng: random.Random, max_chars: int = 140
) -> str:
    template = rng.choice(MENTION_TEMPLATES)
    return truncate_to_chars(
        template.format(kw=keyword, name=screen_name), max_chars
    )


def compose_retweet(
    screen_name: str, original_text: str, max_chars: int = 140
) -> str:
    return truncate_to_chars(f"rt @{screen_name}: {original_text}", max_chars)


def compose_spam(keyword: str, rng: random.Random, max_chars: int = 140) -> str:
    return truncate_to_chars(
        rng.choice(SPAM_TEMPLATES).format(kw=keyword), max_chars
    )


def compose_chatter(rng: random.Random, max_chars: int = 140) -> str:
    return truncate_to_chars(rng.choice(CHATTER), max_chars)


def make_screen_name(stem: str, rng: random.Random, taken: set[str]) -> str:
    """A unique handle derived from a topic stem."""
    short = stem.replace(" ", "")[:12]
    for _ in range(20):
        candidate = rng.choice(SCREEN_NAME_PATTERNS).format(short=short)
        if candidate not in taken:
            taken.add(candidate)
            return candidate
    # fall back to numbered handles
    index = 2
    while f"{short}{index}" in taken:
        index += 1
    name = f"{short}{index}"
    taken.add(name)
    return name


def make_description(persona: str, topic_name: str, rng: random.Random) -> str:
    patterns = DESCRIPTION_PATTERNS.get(persona, DESCRIPTION_PATTERNS["casual"])
    return rng.choice(patterns).format(topic=topic_name)

"""Population and traffic generation for the simulated platform.

The generator first mints the user base (personas per topic/domain), then
streams tweets: authors are drawn by volume, topics by author focus,
keywords by the author's *preferred surface forms* — the mechanism that
recreates the paper's hidden experts.  Casual traffic supplies mentions
and retweets, which is what gives experts their MI/RI signal.
"""

from __future__ import annotations

import bisect
import itertools
import math
import random

from repro.microblog.config import MicroblogConfig
from repro.microblog.platform import MicroblogPlatform
from repro.microblog.textgen import (
    compose_chatter,
    compose_mention,
    compose_retweet,
    compose_spam,
    compose_tweet,
    make_description,
    make_screen_name,
)
from repro.microblog.tweets import Tweet
from repro.microblog.users import PERSONAS, UserProfile
from repro.utils.rng import SeedSequenceFactory
from repro.worldmodel.model import Topic, WorldModel
from repro.worldmodel.vocab import person_name


#: Tweet-side usage multipliers by keyword kind.  Search demand and tweet
#: supply use *different* surface-form distributions: users search compound
#: phrases ("49ers draft", "condors injury report") far more often than
#: anyone writes them inside 140 characters, while short heads and hashtags
#: dominate the timeline.  This wedge is what makes the baseline miss
#: queries that e# answers (Table 8) — remove it and both corpora align
#: perfectly, which no real platform does.
TWEET_KIND_WEIGHTS: dict[str, float] = {
    "canonical": 1.0,
    "variant": 1.0,
    "activity": 0.08,
    "person": 0.45,
    "shared": 0.5,
}


class MicroblogGenerator:
    """Builds a :class:`MicroblogPlatform` from a :class:`WorldModel`."""

    def __init__(
        self, world: WorldModel, config: MicroblogConfig | None = None
    ) -> None:
        self.world = world
        self.config = config or MicroblogConfig()
        self._factory = SeedSequenceFactory(self.config.seed)
        self._rng = self._factory.stream("microblog")
        self._next_user_id = itertools.count(1)
        self._next_tweet_id = itertools.count(1)
        self._taken_names: set[str] = set()

    # -- user base -------------------------------------------------------------

    def create_users(self) -> list[UserProfile]:
        """Mint the full population, persona by persona."""
        rng = self._rng
        users: list[UserProfile] = []
        max_popularity = max(t.popularity for t in self.world.topics)

        for topic in self.world.topics:
            # expert supply follows the topic's *platform* presence, not its
            # search popularity — search-only topics get none at all
            relative = topic.popularity / max_popularity
            affinity = topic.microblog_affinity
            expert_count = round(
                self.config.experts_per_topic
                * math.sqrt(relative)
                * 2
                * (affinity if affinity < 0.5 else 1.0)
            )
            if affinity >= 0.5:
                expert_count = max(1, expert_count)
            for _ in range(expert_count):
                users.append(self._make_topical_user("focused_expert", (topic,)))

        for domain in self.world.domains:
            topics = sorted(
                (
                    t
                    for t in self.world.topics_in_domain(domain)
                    if t.microblog_affinity >= 0.5
                ),
                key=lambda t: t.popularity,
                reverse=True,
            ) or sorted(
                self.world.topics_in_domain(domain),
                key=lambda t: t.popularity,
                reverse=True,
            )
            for _ in range(self.config.broad_experts_per_domain):
                width = rng.randint(2, min(4, len(topics)))
                start = rng.randrange(max(1, len(topics) - width))
                bundle = tuple(topics[start : start + width])
                users.append(self._make_topical_user("broad_expert", bundle))
            for index in range(self.config.news_bots_per_domain):
                anchor = topics[index % len(topics)]
                users.append(self._make_topical_user("news_bot", (anchor,)))

        popular = sorted(
            self.world.topics,
            key=lambda t: t.popularity * t.microblog_affinity,
            reverse=True,
        )
        for index in range(self.config.celebrities):
            anchor = popular[index % max(1, len(popular) // 4)]
            users.append(self._make_topical_user("celebrity", (anchor,)))

        tweetable = [
            t for t in self.world.topics if t.microblog_affinity >= 0.3
        ] or list(self.world.topics)
        for _ in range(self.config.casual_users):
            sampled = rng.sample(
                tweetable, k=min(len(tweetable), rng.randint(2, 6))
            )
            users.append(self._make_topical_user("casual", tuple(sampled)))

        for _ in range(self.config.spammers):
            users.append(self._make_topical_user("spammer", ()))

        return users

    def _make_topical_user(
        self, persona: str, topics: tuple[Topic, ...]
    ) -> UserProfile:
        rng = self._rng
        anchor_name = topics[0].name if topics else "life"
        if persona in ("focused_expert", "broad_expert", "celebrity"):
            # half the experts present as individuals (journalists, analysts)
            if rng.random() < 0.5:
                handle_stem = person_name(rng).replace(" ", "_")
            else:
                handle_stem = anchor_name
        elif persona == "news_bot":
            handle_stem = anchor_name + " news"
        else:
            handle_stem = person_name(rng).replace(" ", "_")
        screen_name = make_screen_name(handle_stem, rng, self._taken_names)
        preferred: dict[int, tuple[str, ...]] = {}
        for topic in topics:
            texts = [kw.text for kw in topic.keywords]
            weights = [
                kw.weight * TWEET_KIND_WEIGHTS.get(kw.kind, 1.0)
                for kw in topic.keywords
            ]
            count = min(len(texts), rng.randint(1, 3))
            chosen: list[str] = []
            pool = list(zip(texts, weights))
            for _ in range(count):
                total = sum(w for _, w in pool)
                point = rng.random() * total
                acc = 0.0
                for position, (text, weight) in enumerate(pool):
                    acc += weight
                    if point <= acc:
                        chosen.append(text)
                        del pool[position]
                        break
            preferred[topic.topic_id] = tuple(chosen)
        params = PERSONAS[persona]
        followers = int(
            rng.lognormvariate(
                math.log(50 * max(params.mention_magnetism, 0.1)), 1.2
            )
        )
        verified = (
            persona == "celebrity"
            or (persona in ("focused_expert", "news_bot") and rng.random() < 0.12)
        )
        return UserProfile(
            user_id=next(self._next_user_id),
            screen_name=screen_name,
            description=make_description(persona, anchor_name, rng),
            persona=persona,
            expert_topics=tuple(t.topic_id for t in topics)
            if params.is_expert
            else (),
            preferred_keywords=preferred,
            verified=verified,
            followers=followers,
        )

    # -- traffic -----------------------------------------------------------------

    def build(self) -> MicroblogPlatform:
        """Create users and stream ``config.tweets`` posts into a platform."""
        platform = MicroblogPlatform()
        users = self.create_users()
        for user in users:
            platform.add_user(user)

        rng = self._rng
        # author sampling: cumulative volume weights
        volumes = [
            user.persona_params.mean_tweets * rng.lognormvariate(0.0, 0.5)
            for user in users
        ]
        cumulative = list(itertools.accumulate(volumes))
        total_volume = cumulative[-1]

        # per-topic expert registries for mention/retweet targeting
        mention_targets: dict[int, list[tuple[int, float]]] = {}
        for user in users:
            for topic_id in user.expert_topics:
                mention_targets.setdefault(topic_id, []).append(
                    (user.user_id, user.persona_params.mention_magnetism)
                )
        # recent expert tweets per topic (bounded) for retweeting
        recent_expert_tweets: dict[int, list[int]] = {}

        # off-topic chatter/spam targets follow platform presence, so ghost
        # topics stay ghosts even in drive-by tweets
        topics = self.world.topics
        topic_weights = list(
            itertools.accumulate(
                t.popularity * max(t.microblog_affinity, 0.01) for t in topics
            )
        )
        topic_total = topic_weights[-1]

        for _ in range(self.config.tweets):
            point = rng.random() * total_volume
            author = users[bisect.bisect_left(cumulative, point)]
            tweet = self._compose_post(
                author,
                platform,
                mention_targets,
                recent_expert_tweets,
                topics,
                topic_weights,
                topic_total,
            )
            platform.add_tweet(tweet)
            if author.is_expert and tweet.topic_id in author.expert_topics:
                recent = recent_expert_tweets.setdefault(tweet.topic_id, [])
                recent.append(tweet.tweet_id)
                if len(recent) > 60:
                    del recent[: len(recent) - 60]
        return platform

    def _compose_post(
        self,
        author: UserProfile,
        platform: MicroblogPlatform,
        mention_targets: dict[int, list[tuple[int, float]]],
        recent_expert_tweets: dict[int, list[int]],
        topics: list[Topic],
        topic_weights: list[float],
        topic_total: float,
    ) -> Tweet:
        rng = self._rng
        params = author.persona_params
        max_chars = self.config.max_chars

        if author.persona == "spammer":
            topic = topics[bisect.bisect_left(topic_weights, rng.random() * topic_total)]
            keyword = topic.canonical.text
            return Tweet(
                tweet_id=next(self._next_tweet_id),
                author_id=author.user_id,
                text=compose_spam(keyword, rng, max_chars),
                topic_id=topic.topic_id,
            )

        on_own_topic = author.expert_topics and rng.random() < params.focus
        if on_own_topic:
            topic_id = rng.choice(author.expert_topics)
            topic = self.world.topic(topic_id)
        else:
            if rng.random() < 0.35:
                # pure chatter, no topical keyword
                return Tweet(
                    tweet_id=next(self._next_tweet_id),
                    author_id=author.user_id,
                    text=compose_chatter(rng, max_chars),
                )
            topic = topics[
                bisect.bisect_left(topic_weights, rng.random() * topic_total)
            ]

        keyword = self._pick_keyword(author, topic)

        # casual (and occasionally expert) users retweet or mention experts
        if rng.random() < self.config.retweet_rate:
            pool = recent_expert_tweets.get(topic.topic_id)
            if pool:
                original = platform.tweet(rng.choice(pool))
                if original.author_id != author.user_id:
                    original_author = platform.user(original.author_id)
                    return Tweet(
                        tweet_id=next(self._next_tweet_id),
                        author_id=author.user_id,
                        text=compose_retweet(
                            original_author.screen_name, original.text, max_chars
                        ),
                        mentions=(original.author_id,),
                        retweet_of=original.tweet_id,
                        topic_id=original.topic_id,
                    )
        if rng.random() < self.config.mention_rate:
            targets = mention_targets.get(topic.topic_id)
            if targets:
                total = sum(weight for _, weight in targets)
                point = rng.random() * total
                acc = 0.0
                chosen_id = targets[-1][0]
                for user_id, weight in targets:
                    acc += weight
                    if point <= acc:
                        chosen_id = user_id
                        break
                if chosen_id != author.user_id:
                    mentioned = platform.user(chosen_id)
                    return Tweet(
                        tweet_id=next(self._next_tweet_id),
                        author_id=author.user_id,
                        text=compose_mention(
                            keyword, mentioned.screen_name, rng, max_chars
                        ),
                        mentions=(chosen_id,),
                        topic_id=topic.topic_id,
                    )

        return Tweet(
            tweet_id=next(self._next_tweet_id),
            author_id=author.user_id,
            text=compose_tweet(keyword, rng, max_chars),
            topic_id=topic.topic_id,
        )

    def _pick_keyword(self, author: UserProfile, topic: Topic) -> str:
        """Preferred surface form when the author has one, else topic-weighted."""
        rng = self._rng
        preferred = author.preferred_keywords.get(topic.topic_id)
        if preferred and rng.random() < 0.8:
            return rng.choice(preferred)
        keywords = topic.keywords
        weights = [
            kw.weight * TWEET_KIND_WEIGHTS.get(kw.kind, 1.0) for kw in keywords
        ]
        total = sum(weights)
        point = rng.random() * total
        acc = 0.0
        for keyword, weight in zip(keywords, weights):
            acc += weight
            if point <= acc:
                return keyword.text
        return keywords[-1].text


def generate_platform(
    world: WorldModel, config: MicroblogConfig | None = None
) -> MicroblogPlatform:
    """One-call convenience: build users + traffic."""
    return MicroblogGenerator(world, config).build()

"""Platform storage: tweets, users and the indexes the detector needs.

The platform maintains:

* an inverted index token → posting rows, so §3 candidate matching (all
  query terms present) is an intersection of posting lists;
* per-user totals (tweets authored, mentions received, retweets received)
  — the denominators of TS, MI and RI;
* **columnar per-tweet ledgers** — parallel arrays holding, per ingestion
  row, the author, the resolved retweet-original author and the mentioned
  user ids.  The :class:`~repro.detector.engine.IndexedDetectionEngine`
  aggregates candidate statistics straight off these arrays instead of
  walking tweet objects one dict lookup at a time;
* **pending ledgers** for out-of-order arrivals: a retweet ingested before
  its original parks in a pending-retweet ledger and is resolved
  retroactively (denominator credited, columnar row back-filled) the
  moment the original arrives; likewise mentions of a not-yet-registered
  user are credited retroactively at registration.  Without this the
  denominators of RI/MI silently undercount forever while the query-time
  numerators resolve late arrivals — letting the ratios exceed 1.0.

Every ingestion bumps ``mutation_count`` so derived indexes can detect
staleness with a single integer comparison.
"""

from __future__ import annotations

import threading
from array import array
from bisect import bisect_left
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.microblog.tweets import Tweet
from repro.microblog.users import UserProfile
from repro.utils.packed import LazyStrings, PackedSliceMap, owned_array
from repro.utils.text import tokenize

#: sentinel row value for "retweet of a tweet never ingested" (user ids
#: are non-negative, so -1 can never collide with a real author)
NO_AUTHOR = -1


@dataclass
class UserTotals:
    """Query-independent per-user denominators."""

    tweets: int = 0
    mentions_received: int = 0
    retweets_received: int = 0


@dataclass(frozen=True)
class ColumnarLedger:
    """Read-only view over the platform's per-tweet parallel arrays.

    ``row`` is ingestion order (0-based); posting lists store rows, so
    they are sorted by construction and intersect without per-query
    ``set`` rebuilds.  The arrays are shared, not copied — treat them as
    immutable.
    """

    #: row → tweet id
    tweet_ids: array
    #: row → author user id
    authors: array
    #: row → author of the retweeted original (``NO_AUTHOR`` when the
    #: tweet is not a retweet or the original was never ingested)
    retweet_authors: array
    #: row → [offsets[row], offsets[row+1]) slice into ``mention_ids``
    mention_offsets: array
    #: flattened mentioned user ids, multiplicity preserved
    mention_ids: array

    def __len__(self) -> int:
        return len(self.authors)

    def estimated_bytes(self) -> int:
        columns = (
            self.tweet_ids,
            self.authors,
            self.retweet_authors,
            self.mention_offsets,
            self.mention_ids,
        )
        return sum(len(column) * column.itemsize for column in columns)


@dataclass
class _DeferredTweets:
    """Columnar tweet payload not yet materialised into Tweet objects.

    An artifact warm start restores the platform's *indexes* (postings,
    totals, columnar ledgers) directly, but holds the per-tweet record
    data in this columnar form until something actually asks for a
    :class:`Tweet` object — the serving hot path (the columnar detection
    engine) never does, so a loaded replica skips materialising 150k
    Python objects it may never touch.
    """

    #: row → tweet text (a plain list, or a zero-copy
    #: :class:`~repro.utils.packed.LazyStrings` table on an mmap load)
    texts: list[str] | LazyStrings
    #: row → raw ``retweet_of`` (NO_AUTHOR when not a retweet); distinct
    #: from the *resolved* retweet-author column the ledger carries
    retweet_of: array
    #: row → ground-truth topic id (NO_AUTHOR when None)
    topic_ids: array


class MicroblogPlatform:
    """Append-only store with query-time matching."""

    def __init__(self) -> None:
        self._users: dict[int, UserProfile] = {}
        self._tweets: dict[int, Tweet] = {}
        #: token → posting rows (ascending by construction)
        self._postings: dict[str, array] = {}
        self._totals: dict[int, UserTotals] = {}
        self._by_author: dict[int, list[int]] = {}
        #: screen name → user id (first registration wins, matching the
        #: old linear scan's first-hit semantics)
        self._by_screen_name: dict[str, int] = {}
        # -- columnar per-tweet ledgers (row = ingestion order) --
        self._row_of: dict[int, int] = {}
        self._col_tweet_ids = array("q")
        self._col_authors = array("q")
        self._col_retweet_authors = array("q")
        self._mention_offsets = array("l", [0])
        self._mention_ids = array("q")
        # -- out-of-order arrival ledgers --
        #: original tweet id → rows of retweets that arrived before it
        self._pending_retweets: dict[int, list[int]] = {}
        #: user id → mentions received before registration
        self._pending_mentions: dict[int, int] = {}
        self._mutations = 0
        #: columnar tweet payload awaiting hydration (warm start only)
        self._deferred: _DeferredTweets | None = None
        #: serialises hydration: the serving tier shards per-term work
        #: across threads, and two of them may race to the first
        #: Tweet-object access on a freshly loaded replica
        self._hydrate_lock = threading.Lock()
        #: serialises the one-shot view→owned conversion of an mmap load
        self._seal_lock = threading.Lock()
        #: True while columns/postings/by-author are zero-copy views over
        #: a mapped sidecar; the first mutation seals them into owned
        #: containers (see :meth:`_seal_columns`)
        self._buffer_backed = False  # guarded-by: _seal_lock

    # -- bulk restore (the artifact warm-start path) -----------------------

    @classmethod
    def restore(
        cls,
        *,
        users: list[UserProfile],
        totals: list[tuple[int, int, int]],
        texts: list[str],
        tweet_ids: array,
        authors: array,
        retweet_of: array,
        retweet_authors: array,
        topic_ids: array,
        mention_offsets: array,
        mention_ids: array,
        postings: dict[str, array],
        by_author: dict[int, list[int]],
        pending_retweets: dict[int, list[int]],
        pending_mentions: dict[int, int],
        mutations: int,
    ) -> "MicroblogPlatform":
        """Rebuild a platform from its exported state, byte-exactly.

        The inverse of :meth:`export_state`.  Indexes are installed
        directly (the caller owns the passed containers afterwards —
        they are *not* copied) and per-tweet records stay columnar until
        first use; :meth:`_ensure_tweets` hydration produces the same
        ``_tweets``/``_row_of`` maps an ``add_tweet`` replay would, which
        the artifact round-trip property tests assert.

        Columns may be owned :class:`array.array` objects *or* zero-copy
        buffer views over a mapped sidecar (``memoryview`` columns,
        :class:`~repro.utils.packed.PackedSliceMap` postings/by-author,
        :class:`~repro.utils.packed.LazyStrings` texts).  A buffer-backed
        platform serves reads straight off the mapping; the first
        mutation copies everything into owned containers first
        (:meth:`_seal_columns`), so ingestion after a warm start behaves
        exactly like ingestion into an owned platform.
        """
        if not (
            len(texts)
            == len(tweet_ids)
            == len(authors)
            == len(retweet_of)
            == len(retweet_authors)
            == len(topic_ids)
            == len(mention_offsets) - 1
        ):
            raise ValueError("tweet columns disagree on the row count")
        if len(users) != len(totals):
            raise ValueError("user/totals rows disagree on the user count")
        platform = cls()
        for user, (tweets, mentions, retweets) in zip(users, totals):
            if user.user_id in platform._users:
                raise ValueError(f"duplicate user_id {user.user_id}")
            platform._users[user.user_id] = user
            platform._totals[user.user_id] = UserTotals(
                tweets=tweets,
                mentions_received=mentions,
                retweets_received=retweets,
            )
            platform._by_screen_name.setdefault(
                user.screen_name, user.user_id
            )
        platform._col_tweet_ids = tweet_ids
        platform._col_authors = authors
        platform._col_retweet_authors = retweet_authors
        platform._mention_offsets = mention_offsets
        platform._mention_ids = mention_ids
        platform._postings = postings
        platform._by_author = by_author
        platform._pending_retweets = pending_retweets
        platform._pending_mentions = pending_mentions
        platform._mutations = mutations
        platform._deferred = _DeferredTweets(
            texts=texts, retweet_of=retweet_of, topic_ids=topic_ids
        )
        platform._buffer_backed = any(
            isinstance(column, memoryview)
            for column in (
                tweet_ids,
                authors,
                retweet_authors,
                mention_offsets,
                mention_ids,
                retweet_of,
                topic_ids,
            )
        ) or isinstance(postings, PackedSliceMap) or isinstance(
            by_author, PackedSliceMap
        )
        return platform

    def export_state(self) -> dict:
        """The platform's complete state as plain containers.

        The artifact codec serialises exactly this dict; a deferred
        (never-hydrated) platform exports straight from its columnar
        payload, so a load → save round-trip never materialises tweets.
        """
        deferred = self._deferred
        if deferred is not None:
            texts = deferred.texts
            retweet_of = deferred.retweet_of
            topic_ids = deferred.topic_ids
        else:
            texts = []
            retweet_of = array("q")
            topic_ids = array("q")
            for tweet_id in self._col_tweet_ids:
                tweet = self._tweets[tweet_id]
                texts.append(tweet.text)
                retweet_of.append(
                    NO_AUTHOR if tweet.retweet_of is None else tweet.retweet_of
                )
                topic_ids.append(
                    NO_AUTHOR if tweet.topic_id is None else tweet.topic_id
                )
        return {
            "users": list(self._users.values()),
            "totals": [
                (t.tweets, t.mentions_received, t.retweets_received)
                for t in self._totals.values()
            ],
            "texts": texts,
            "tweet_ids": self._col_tweet_ids,
            "authors": self._col_authors,
            "retweet_of": retweet_of,
            "retweet_authors": self._col_retweet_authors,
            "topic_ids": topic_ids,
            "mention_offsets": self._mention_offsets,
            "mention_ids": self._mention_ids,
            "postings": self._postings,
            "by_author": self._by_author,
            "pending_retweets": self._pending_retweets,
            "pending_mentions": self._pending_mentions,
            "mutations": self._mutations,
        }

    def _ensure_tweets(self) -> None:
        """Hydrate Tweet objects from the deferred columnar payload.

        Thread-safe: hydration serialises on a lock and ``_deferred`` is
        cleared only *after* the maps are fully populated, so the
        lock-free fast path (the common case) can never observe a
        half-hydrated platform.
        """
        if self._deferred is None:
            return
        with self._hydrate_lock:
            deferred = self._deferred
            if deferred is None:
                return  # another thread finished while we waited
            offsets = self._mention_offsets
            mention_ids = self._mention_ids
            tweets = self._tweets
            row_of = self._row_of
            for row, tweet_id in enumerate(self._col_tweet_ids):
                raw_retweet = deferred.retweet_of[row]
                raw_topic = deferred.topic_ids[row]
                tweets[tweet_id] = Tweet(
                    tweet_id=tweet_id,
                    author_id=self._col_authors[row],
                    text=deferred.texts[row],
                    mentions=tuple(
                        mention_ids[offsets[row] : offsets[row + 1]]
                    ),
                    retweet_of=(
                        None if raw_retweet == NO_AUTHOR else raw_retweet
                    ),
                    topic_id=None if raw_topic == NO_AUTHOR else raw_topic,
                )
                row_of[tweet_id] = row
            self._deferred = None

    def _seal_columns(self) -> None:
        """Copy-on-first-mutation: views over a mapped sidecar → owned.

        A buffer-backed platform (restored zero-copy from an mmap'd
        artifact) cannot append to its columns — the mapping is
        read-only and its layout is fixed.  The first mutation lands
        here: every view is copied into an owned container under
        ``_seal_lock``, and only then does the caller mutate.  Readers
        are never blocked: they hold references to the *old* views,
        which stay valid because a ``memoryview`` pins the mapping; a
        reader racing the seal sees either the old views or the owned
        copies, which hold identical bytes.  Delta refresh therefore
        works unchanged on an mmap-backed platform.
        """
        if not self._buffer_backed:  # analysis: ignore[GUARD001] lock-free fast path; sealing is one-way
            return
        with self._seal_lock:
            if not self._buffer_backed:
                return  # another writer sealed while we waited
            self._col_tweet_ids = owned_array("q", self._col_tweet_ids)
            self._col_authors = owned_array("q", self._col_authors)
            self._col_retweet_authors = owned_array(
                "q", self._col_retweet_authors
            )
            self._mention_offsets = owned_array("l", self._mention_offsets)
            self._mention_ids = owned_array("q", self._mention_ids)
            postings = self._postings
            if isinstance(postings, PackedSliceMap):
                self._postings = postings.materialize_arrays("l")
            else:
                self._postings = {
                    token: owned_array("l", rows)
                    for token, rows in postings.items()
                }
            by_author = self._by_author
            if isinstance(by_author, PackedSliceMap):
                self._by_author = by_author.materialize_lists()
            deferred = self._deferred
            if deferred is not None:
                texts = deferred.texts
                self._deferred = _DeferredTweets(
                    texts=(
                        texts.materialize()
                        if isinstance(texts, LazyStrings)
                        else texts
                    ),
                    retweet_of=owned_array("q", deferred.retweet_of),
                    topic_ids=owned_array("q", deferred.topic_ids),
                )
            # flipped last: readers of the flag either see views (still
            # valid — the mapping outlives them) or fully owned state
            self._buffer_backed = False

    # -- ingestion ---------------------------------------------------------

    def add_user(self, user: UserProfile) -> None:
        if user.user_id in self._users:
            raise ValueError(f"duplicate user_id {user.user_id}")
        self._users[user.user_id] = user
        totals = UserTotals()
        # mentions that arrived before the user registered count toward
        # the MI denominator, mirroring the query-time numerator which
        # resolves the mention once the user is known
        totals.mentions_received = self._pending_mentions.pop(user.user_id, 0)
        self._totals[user.user_id] = totals
        self._by_screen_name.setdefault(user.screen_name, user.user_id)
        self._mutations += 1

    def add_tweet(self, tweet: Tweet) -> None:
        self._seal_columns()  # mmap views cannot grow; copy-on-first-mutation
        self._ensure_tweets()  # dup check + retweet resolution need objects
        if tweet.tweet_id in self._tweets:
            raise ValueError(f"duplicate tweet_id {tweet.tweet_id}")
        if tweet.author_id not in self._users:
            raise ValueError(f"unknown author {tweet.author_id}")
        row = len(self._col_authors)
        self._tweets[tweet.tweet_id] = tweet
        self._row_of[tweet.tweet_id] = row
        self._col_tweet_ids.append(tweet.tweet_id)
        self._col_authors.append(tweet.author_id)
        self._by_author.setdefault(tweet.author_id, []).append(tweet.tweet_id)
        self._totals[tweet.author_id].tweets += 1
        for token in tweet.tokens:
            posting = self._postings.get(token)
            if posting is None:
                posting = self._postings[token] = array("l")
            posting.append(row)
        for mentioned in tweet.mentions:
            self._mention_ids.append(mentioned)
            totals = self._totals.get(mentioned)
            if totals is not None:
                totals.mentions_received += 1
            else:
                self._pending_mentions[mentioned] = (
                    self._pending_mentions.get(mentioned, 0) + 1
                )
        self._mention_offsets.append(len(self._mention_ids))
        retweet_author = NO_AUTHOR
        if tweet.retweet_of is not None:
            original = self._tweets.get(tweet.retweet_of)
            if original is not None:
                self._totals[original.author_id].retweets_received += 1
                retweet_author = original.author_id
            else:
                self._pending_retweets.setdefault(
                    tweet.retweet_of, []
                ).append(row)
        self._col_retweet_authors.append(retweet_author)
        # the new tweet may be the original that parked earlier retweets:
        # credit the denominator and back-fill their columnar rows
        pending = self._pending_retweets.pop(tweet.tweet_id, None)
        if pending:
            for retweet_row in pending:
                self._col_retweet_authors[retweet_row] = tweet.author_id
            self._totals[tweet.author_id].retweets_received += len(pending)
        self._mutations += 1

    def extend(self, tweets: Iterable[Tweet]) -> None:
        for tweet in tweets:
            self.add_tweet(tweet)

    # -- lookups ----------------------------------------------------------

    def user(self, user_id: int) -> UserProfile:
        try:
            return self._users[user_id]
        except KeyError:
            raise KeyError(f"unknown user {user_id}") from None

    def has_user(self, user_id: int) -> bool:
        return user_id in self._users

    def tweet(self, tweet_id: int) -> Tweet:
        self._ensure_tweets()
        try:
            return self._tweets[tweet_id]
        except KeyError:
            raise KeyError(f"unknown tweet {tweet_id}") from None

    def totals(self, user_id: int) -> UserTotals:
        try:
            return self._totals[user_id]
        except KeyError:
            raise KeyError(f"unknown user {user_id}") from None

    def users(self) -> Iterator[UserProfile]:
        return iter(self._users.values())

    def tweets(self) -> Iterator[Tweet]:
        self._ensure_tweets()
        return iter(self._tweets.values())

    def user_by_screen_name(self, screen_name: str) -> UserProfile:
        user_id = self._by_screen_name.get(screen_name)
        if user_id is None:
            raise KeyError(f"no user with screen name {screen_name!r}")
        return self._users[user_id]

    @property
    def user_count(self) -> int:
        return len(self._users)

    @property
    def tweet_count(self) -> int:
        return len(self._col_tweet_ids)

    @property
    def mutation_count(self) -> int:
        """Monotonic ingestion counter (derived-index staleness check)."""
        return self._mutations

    @property
    def pending_retweet_count(self) -> int:
        """Retweets still awaiting their original (ops diagnostics)."""
        return sum(len(rows) for rows in self._pending_retweets.values())

    # -- columnar access (the detection engine's substrate) ---------------

    def ledger(self) -> ColumnarLedger:
        """The shared columnar view over every ingested tweet."""
        return ColumnarLedger(
            tweet_ids=self._col_tweet_ids,
            authors=self._col_authors,
            retweet_authors=self._col_retweet_authors,
            mention_offsets=self._mention_offsets,
            mention_ids=self._mention_ids,
        )

    def posting_rows(self, token: str) -> array | None:
        """Sorted posting rows for ``token`` (None when unindexed).

        Shared, not copied — callers must not mutate.
        """
        return self._postings.get(token)

    def posting_tokens(self) -> Iterator[str]:
        return iter(self._postings.keys())

    # -- query matching (§3) --------------------------------------------------

    def matching_tweet_ids(self, query: str) -> list[int]:
        """ids of tweets containing all query terms after lower-casing.

        Posting lists are intersected smallest-first; a query term absent
        from the index short-circuits to no matches.
        """
        rows = self.matching_rows(query)
        return sorted(self._col_tweet_ids[row] for row in rows)

    def matching_rows(self, query: str) -> list[int]:
        """Columnar rows of the matching tweets, ascending.

        Single-term queries return the posting list directly; multi-term
        queries intersect the sorted posting lists smallest-first with a
        galloping fast path, so no per-query ``set`` is ever built.
        """
        terms = tokenize(query)
        if not terms:
            return []
        postings = []
        for term in set(terms):
            posting = self._postings.get(term)
            if not posting:
                return []
            postings.append(posting)
        if len(postings) == 1:
            return list(postings[0])
        return intersect_sorted(postings)

    def matching_tweets(self, query: str) -> list[Tweet]:
        self._ensure_tweets()
        return [self._tweets[tid] for tid in self.matching_tweet_ids(query)]

    def estimated_bytes(self) -> int:
        """Approximate corpus size (text only), for resource reporting."""
        deferred = self._deferred
        if deferred is not None:
            texts = deferred.texts
            if isinstance(texts, LazyStrings):
                # off the offsets table — never decodes (or pages in) the
                # text blob just to report a size estimate
                return texts.estimated_text_bytes() + 16 * len(texts)
            return sum(len(text) + 16 for text in texts)
        return sum(len(tweet.text) + 16 for tweet in self._tweets.values())

    def __repr__(self) -> str:
        return (
            f"MicroblogPlatform(users={len(self._users)}, "
            f"tweets={self.tweet_count})"
        )


# -- sorted-posting intersection ------------------------------------------


def intersect_sorted(postings: list) -> list[int]:
    """Intersect ascending posting lists, smallest first, with galloping.

    The running result (always the smallest set so far) is probed against
    each next list by exponential search from a moving cursor, so a rare
    term intersected with a frequent one costs O(small · log(large)) —
    the multi-token fast path of the detection engine.
    """
    ordered = sorted(postings, key=len)
    result = ordered[0]
    for posting in ordered[1:]:
        result = _gallop_intersect(result, posting)
        if not result:
            return []
    return list(result)


def _gallop_intersect(small, large) -> list[int]:
    """Members of ``small`` present in ``large`` (both ascending)."""
    matched: list[int] = []
    cursor = 0
    size = len(large)
    for value in small:
        if cursor >= size:
            break
        # exponential probe from the cursor, then binary search the window
        bound = 1
        while cursor + bound < size and large[cursor + bound] < value:
            bound <<= 1
        cursor = bisect_left(large, value, cursor, min(cursor + bound, size))
        if cursor < size and large[cursor] == value:
            matched.append(value)
            cursor += 1
    return matched

"""Platform storage: tweets, users and the indexes the detector needs.

The platform maintains:

* an inverted index token → tweet ids, so §3 candidate matching (all query
  terms present) is an intersection of posting lists;
* per-user totals (tweets authored, mentions received, retweets received)
  — the denominators of TS, MI and RI;
* a retweet ledger mapping original authors to the retweets of their
  tweets, and a mention ledger mapping users to the tweets mentioning
  them — the numerators are computed per query from matching tweets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.microblog.tweets import Tweet
from repro.microblog.users import UserProfile
from repro.utils.text import tokenize


@dataclass
class UserTotals:
    """Query-independent per-user denominators."""

    tweets: int = 0
    mentions_received: int = 0
    retweets_received: int = 0


class MicroblogPlatform:
    """Append-only store with query-time matching."""

    def __init__(self) -> None:
        self._users: dict[int, UserProfile] = {}
        self._tweets: dict[int, Tweet] = {}
        self._postings: dict[str, list[int]] = {}
        self._totals: dict[int, UserTotals] = {}
        self._by_author: dict[int, list[int]] = {}

    # -- ingestion ---------------------------------------------------------

    def add_user(self, user: UserProfile) -> None:
        if user.user_id in self._users:
            raise ValueError(f"duplicate user_id {user.user_id}")
        self._users[user.user_id] = user
        self._totals[user.user_id] = UserTotals()

    def add_tweet(self, tweet: Tweet) -> None:
        if tweet.tweet_id in self._tweets:
            raise ValueError(f"duplicate tweet_id {tweet.tweet_id}")
        if tweet.author_id not in self._users:
            raise ValueError(f"unknown author {tweet.author_id}")
        self._tweets[tweet.tweet_id] = tweet
        self._by_author.setdefault(tweet.author_id, []).append(tweet.tweet_id)
        self._totals[tweet.author_id].tweets += 1
        for token in tweet.tokens:
            self._postings.setdefault(token, []).append(tweet.tweet_id)
        for mentioned in tweet.mentions:
            if mentioned in self._totals:
                self._totals[mentioned].mentions_received += 1
        if tweet.retweet_of is not None:
            original = self._tweets.get(tweet.retweet_of)
            if original is not None:
                self._totals[original.author_id].retweets_received += 1

    def extend(self, tweets: Iterable[Tweet]) -> None:
        for tweet in tweets:
            self.add_tweet(tweet)

    # -- lookups ----------------------------------------------------------

    def user(self, user_id: int) -> UserProfile:
        try:
            return self._users[user_id]
        except KeyError:
            raise KeyError(f"unknown user {user_id}") from None

    def tweet(self, tweet_id: int) -> Tweet:
        try:
            return self._tweets[tweet_id]
        except KeyError:
            raise KeyError(f"unknown tweet {tweet_id}") from None

    def totals(self, user_id: int) -> UserTotals:
        try:
            return self._totals[user_id]
        except KeyError:
            raise KeyError(f"unknown user {user_id}") from None

    def users(self) -> Iterator[UserProfile]:
        return iter(self._users.values())

    def tweets(self) -> Iterator[Tweet]:
        return iter(self._tweets.values())

    def user_by_screen_name(self, screen_name: str) -> UserProfile:
        for user in self._users.values():
            if user.screen_name == screen_name:
                return user
        raise KeyError(f"no user with screen name {screen_name!r}")

    @property
    def user_count(self) -> int:
        return len(self._users)

    @property
    def tweet_count(self) -> int:
        return len(self._tweets)

    # -- query matching (§3) --------------------------------------------------

    def matching_tweet_ids(self, query: str) -> list[int]:
        """ids of tweets containing all query terms after lower-casing.

        Posting lists are intersected smallest-first; a query term absent
        from the index short-circuits to no matches.
        """
        terms = tokenize(query)
        if not terms:
            return []
        postings: list[list[int]] = []
        for term in set(terms):
            posting = self._postings.get(term)
            if not posting:
                return []
            postings.append(posting)
        postings.sort(key=len)
        result = set(postings[0])
        for posting in postings[1:]:
            result &= set(posting)
            if not result:
                return []
        return sorted(result)

    def matching_tweets(self, query: str) -> list[Tweet]:
        return [self._tweets[tid] for tid in self.matching_tweet_ids(query)]

    def estimated_bytes(self) -> int:
        """Approximate corpus size (text only), for resource reporting."""
        return sum(len(tweet.text) + 16 for tweet in self._tweets.values())

    def __repr__(self) -> str:
        return (
            f"MicroblogPlatform(users={len(self._users)}, "
            f"tweets={len(self._tweets)})"
        )

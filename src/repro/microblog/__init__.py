"""S6 — Microblog platform simulator (the Twitter substrate).

Pal & Counts' detector consumes per-user counts of tweets, mentions and
retweets, split by "on topic" (tweets matching the query under the §3
rule).  The simulator produces a corpus in which those counts carry the
same signal structure as real Twitter:

* user *personas* control volume, focus and influence: focused experts,
  broad (multi-topic) experts, news bots, casual users, spammers and
  celebrities;
* every tweet is ≤140 characters and usually names **one** keyword of its
  topic — the paper's core recall pathology: a `niners` devotee never
  writes `49ers`, so keyword search misses them;
* mentions flow towards experts, retweets towards influential authors,
  giving the MI and RI features their discriminative power;
* ground-truth expertise labels (persona × topic) exist for every user,
  enabling true recall/precision and simulated crowd judging.
"""

from repro.microblog.config import MicroblogConfig
from repro.microblog.users import PERSONAS, UserProfile
from repro.microblog.tweets import Tweet
from repro.microblog.platform import MicroblogPlatform
from repro.microblog.generator import MicroblogGenerator, generate_platform

__all__ = [
    "MicroblogConfig",
    "MicroblogGenerator",
    "MicroblogPlatform",
    "PERSONAS",
    "Tweet",
    "UserProfile",
    "generate_platform",
]

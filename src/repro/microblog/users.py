"""User profiles and personas.

Personas encode the behavioural archetypes visible in the paper's example
tables (Tables 2–7): beat journalists and fan accounts (focused experts),
multi-team analysts (broad experts), headline firehoses (news bots),
ordinary fans (casual), karma farmers (spammers) and big verified handles
(celebrities).  Each persona fixes the knobs that drive the TS/MI/RI
features: tweet volume, topical concentration, received mentions and
retweet propensity.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Persona:
    """Behavioural archetype parameters."""

    name: str
    #: mean tweets per user (volume is sampled around this)
    mean_tweets: float
    #: probability that a tweet is about one of the user's own topics
    focus: float
    #: relative likelihood of being mentioned by others (per on-topic tweet)
    mention_magnetism: float
    #: relative likelihood of being retweeted (per on-topic tweet)
    retweet_magnetism: float
    #: is this user a genuine expert on their topics?
    is_expert: bool


PERSONAS: dict[str, Persona] = {
    "focused_expert": Persona(
        name="focused_expert",
        mean_tweets=120.0,
        focus=0.85,
        mention_magnetism=3.0,
        retweet_magnetism=3.0,
        is_expert=True,
    ),
    "broad_expert": Persona(
        name="broad_expert",
        mean_tweets=160.0,
        focus=0.8,
        mention_magnetism=2.5,
        retweet_magnetism=2.5,
        is_expert=True,
    ),
    "news_bot": Persona(
        name="news_bot",
        mean_tweets=400.0,
        focus=0.95,
        mention_magnetism=1.0,
        retweet_magnetism=1.5,
        is_expert=True,
    ),
    "celebrity": Persona(
        name="celebrity",
        mean_tweets=60.0,
        focus=0.5,
        mention_magnetism=8.0,
        retweet_magnetism=6.0,
        is_expert=True,
    ),
    "casual": Persona(
        name="casual",
        mean_tweets=25.0,
        focus=0.3,
        mention_magnetism=0.2,
        retweet_magnetism=0.2,
        is_expert=False,
    ),
    "spammer": Persona(
        name="spammer",
        mean_tweets=250.0,
        focus=0.0,
        mention_magnetism=0.05,
        retweet_magnetism=0.05,
        is_expert=False,
    ),
}


@dataclass
class UserProfile:
    """One account on the simulated platform."""

    user_id: int
    screen_name: str
    description: str
    persona: str
    #: topics the user genuinely knows (empty for casual/spammer)
    expert_topics: tuple[int, ...]
    #: per-topic preferred keyword surface forms — a user habitually uses a
    #: small subset of a topic's vocabulary, which is what hides them from
    #: exact keyword search (the paper's recall argument)
    preferred_keywords: dict[int, tuple[str, ...]] = field(default_factory=dict)
    verified: bool = False
    followers: int = 0

    def __post_init__(self) -> None:
        if self.persona not in PERSONAS:
            raise ValueError(f"unknown persona {self.persona!r}")
        if self.followers < 0:
            raise ValueError("followers must be non-negative")

    @property
    def persona_params(self) -> Persona:
        return PERSONAS[self.persona]

    @property
    def is_expert(self) -> bool:
        return self.persona_params.is_expert and bool(self.expert_topics)

    def is_expert_on(self, topic_id: int) -> bool:
        return self.is_expert and topic_id in self.expert_topics

    def __repr__(self) -> str:
        return (
            f"UserProfile({self.screen_name!r}, persona={self.persona}, "
            f"topics={list(self.expert_topics)})"
        )

"""Synthetic vocabulary the world builder composes topics from.

The lists below are *generators of plausible surface forms*, not real-world
facts: team names, product lines, tickers and person names are composed
combinatorially so that a few hundred base words yield tens of thousands of
distinct topics when needed.  Every composition is deterministic given the
builder's RNG stream.
"""

from __future__ import annotations

import random

CITIES: tuple[str, ...] = (
    "san francisco", "oakland", "seattle", "portland", "denver", "austin",
    "dallas", "houston", "phoenix", "chicago", "detroit", "boston",
    "atlanta", "miami", "tampa", "orlando", "nashville", "memphis",
    "baltimore", "pittsburgh", "cleveland", "columbus", "charlotte",
    "raleigh", "richmond", "buffalo", "rochester", "sacramento",
    "san diego", "fresno", "tucson", "omaha", "wichita", "tulsa",
    "madison", "boise", "reno", "spokane", "tacoma", "anchorage",
)

TEAM_NOUNS: tuple[str, ...] = (
    "miners", "rockets", "falcons", "wolves", "bears", "hawks", "comets",
    "pioneers", "mustangs", "rangers", "storm", "thunder", "wildcats",
    "titans", "knights", "renegades", "stallions", "gulls", "otters",
    "badgers", "condors", "mariners", "voyagers", "harriers", "lynx",
    "bison", "ospreys", "cougars", "vipers", "raptors", "drakes",
    "herons", "wolverines", "foxes", "panthers", "eagles", "terriers",
    "bobcats", "pelicans", "cyclones", "express", "chargers", "moose",
    "spartans", "gladiators", "corsairs", "buccaneers", "admirals",
)

SPORT_WORDS: tuple[str, ...] = (
    "draft", "schedule", "roster", "tickets", "highlights", "playoffs",
    "injury report", "trade rumors", "training camp", "depth chart",
)

TECH_BRANDS: tuple[str, ...] = (
    "lumatek", "voltaro", "zephyr", "orbix", "nimbus", "quanta", "helios",
    "aetheric", "pulsewave", "kinetiq", "novabyte", "solaris", "vectra",
    "gridline", "auricle", "photonix", "cobaltine", "astralux", "ferrox",
    "miradyne", "optiq", "skylark", "tessellate", "wavecrest",
)

TECH_PRODUCTS: tuple[str, ...] = (
    "smartwatch", "earbuds", "tablet", "router", "drone", "camera",
    "speaker", "laptop", "monitor", "keyboard", "projector", "charger",
    "headset", "tracker", "console", "printer", "soundbar", "webcam",
    "scanner", "microphone", "powerbank", "dashcam", "thermostat",
    "doorbell", "gimbal", "ereader", "turntable", "amplifier",
    "subwoofer", "modem", "repeater", "smartplug",
)

TECH_WORDS: tuple[str, ...] = (
    "review", "specs", "price", "manual", "firmware", "unboxing",
    "vs", "deals", "setup", "battery life",
)

FINANCE_ENTITIES: tuple[str, ...] = (
    "argonaut capital", "bluepeak holdings", "crestline partners",
    "dynamo energy", "eastgate mining", "fairway logistics",
    "granite bancorp", "horizon pharma", "ironwood steel",
    "junction rail", "keystone foods", "lakeshore insurance",
    "meridian telecom", "northstar retail", "obsidian tech",
    "pinnacle motors", "quarry materials", "riverbend utilities",
    "summit aerospace", "tidewater shipping",
)

FINANCE_WORDS: tuple[str, ...] = (
    "stock", "quote", "dividend", "earnings", "futures", "forecast",
    "analyst rating", "short interest", "market cap", "ipo",
)

INDEX_NAMES: tuple[str, ...] = (
    "dow futures", "nasdaq", "s&p 500", "russell 2000", "vix", "ftse",
    "nikkei", "dax", "treasury yields", "crude oil", "gold price",
    "bitcoin", "euro rate", "mortgage rates", "libor",
)

HEALTH_CONDITIONS: tuple[str, ...] = (
    "diabetes", "asthma", "scoliosis", "migraine", "eczema", "arthritis",
    "anemia", "insomnia", "vertigo", "bronchitis", "tendonitis",
    "hypertension", "psoriasis", "sciatica", "glaucoma", "gastritis",
    "neuropathy", "fibromyalgia", "bursitis", "dermatitis", "sinusitis",
    "tinnitus", "anxiety", "bulimia", "melanoma", "osteoporosis",
)

HEALTH_WORDS: tuple[str, ...] = (
    "symptoms", "treatment", "diet", "causes", "medication", "in children",
    "support group", "natural remedies", "diagnosis", "prevention",
)

WIKI_SUBJECTS: tuple[str, ...] = (
    "world war", "ancient rome", "solar eclipse", "great depression",
    "silk road", "printing press", "french revolution", "cold war",
    "industrial revolution", "roman empire", "renaissance art",
    "space race", "gold rush", "prohibition era", "dust bowl",
    "transcontinental railroad", "manhattan project", "suez canal",
    "black death", "viking age",
)

WIKI_WORDS: tuple[str, ...] = (
    "history", "timeline", "facts", "summary", "causes", "documentary",
)

FIRST_NAMES: tuple[str, ...] = (
    "alex", "jordan", "casey", "morgan", "taylor", "riley", "avery",
    "quinn", "reese", "emerson", "dakota", "rowan", "sawyer", "finley",
    "marco", "elena", "viktor", "ingrid", "rafael", "naomi", "dmitri",
    "celia", "hugo", "amara", "felix", "leona", "oscar", "petra",
)

LAST_NAMES: tuple[str, ...] = (
    "calloway", "drummond", "eastman", "fairbanks", "garrick", "holloway",
    "ives", "jarrett", "kessler", "lockhart", "merritt", "norwood",
    "oakes", "pemberton", "quimby", "rutledge", "sheffield", "thorne",
    "underhill", "vance", "whitfield", "yarrow", "ashford", "bellamy",
)

MISC_HOBBIES: tuple[str, ...] = (
    "sourdough baking", "urban gardening", "birdwatching", "astrophotography",
    "home brewing", "woodworking", "fly fishing", "rock climbing",
    "quilting", "genealogy", "chess openings", "model trains",
    "beekeeping", "kayaking", "calligraphy", "foraging", "origami",
    "vintage cars", "board games", "trail running", "salsa dancing",
    "stand up comedy", "street photography", "podcasting",
)

NEWS_WORDS: tuple[str, ...] = ("news", "update", "latest", "live", "today")

URL_SUFFIXES: tuple[str, ...] = (".com", ".org", ".net", ".io", ".info")

GLOBAL_HUB_URLS: tuple[str, ...] = (
    "worldgazette.com", "dailyexaminer.com", "pediawiki.org",
    "videostream.tv", "answerhub.net",
)


def person_name(rng: random.Random) -> str:
    """Compose a synthetic person name such as ``"marco kessler"``."""
    return f"{rng.choice(FIRST_NAMES)} {rng.choice(LAST_NAMES)}"


def url_for(stem: str, rng: random.Random) -> str:
    """Compose a URL for an entity stem, e.g. ``"austinfalcons.com"``."""
    compact = stem.replace(" ", "").replace("&", "and").replace("'", "")
    return f"{compact}{rng.choice(URL_SUFFIXES)}"

"""Core world-model data structures."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.utils.text import phrase_key


#: Keyword roles.  ``canonical`` is the topic's head term; ``variant`` a
#: spelling/hashtag/abbreviation of it; ``activity`` a related compound
#: ("49ers draft"); ``person`` an affiliated individual ("bruce ellington");
#: ``shared`` a context term used by several topics ("san francisco").
KEYWORD_KINDS: tuple[str, ...] = (
    "canonical",
    "variant",
    "activity",
    "person",
    "shared",
)


@dataclass(frozen=True)
class Keyword:
    """One keyword surface form attached to a topic."""

    text: str
    topic_id: int
    kind: str
    #: relative sampling weight inside the topic (canonical ≫ tail variants)
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in KEYWORD_KINDS:
            raise ValueError(f"unknown keyword kind {self.kind!r}")
        if self.weight <= 0:
            raise ValueError(f"weight must be positive, got {self.weight}")
        if self.text != phrase_key(self.text):
            raise ValueError(
                f"keyword text must be normalised, got {self.text!r}"
            )


@dataclass
class Topic:
    """A coherent domain of expertise — one ground-truth community."""

    topic_id: int
    name: str
    domain: str
    keywords: list[Keyword]
    urls: list[str]
    hub_urls: list[str]
    popularity: float
    #: how much the topic lives on the microblog platform relative to its
    #: web-search popularity.  Navigational/search-only interests (the
    #: paper's Top-250 contains "mapquest") are heavily searched but barely
    #: tweeted — their affinity is near zero, which is what keeps the
    #: baseline's Top-250 coverage low in Table 8.
    microblog_affinity: float = 1.0

    def __post_init__(self) -> None:
        if not self.keywords:
            raise ValueError(f"topic {self.name!r} has no keywords")
        if not self.urls:
            raise ValueError(f"topic {self.name!r} has no urls")
        if self.popularity <= 0:
            raise ValueError(f"popularity must be positive, got {self.popularity}")
        if not 0.0 <= self.microblog_affinity <= 1.0:
            raise ValueError(
                f"microblog_affinity must be in [0,1], got {self.microblog_affinity}"
            )

    @property
    def canonical(self) -> Keyword:
        """The head keyword of the topic."""
        for keyword in self.keywords:
            if keyword.kind == "canonical":
                return keyword
        raise LookupError(f"topic {self.name!r} has no canonical keyword")

    def keyword_texts(self) -> list[str]:
        return [keyword.text for keyword in self.keywords]

    def all_urls(self) -> list[str]:
        """Topic URLs followed by the shared hub URLs."""
        return list(self.urls) + list(self.hub_urls)


@dataclass
class WorldModel:
    """The full synthetic world: topics plus lookup indexes."""

    topics: list[Topic]
    domains: tuple[str, ...]
    seed: int
    _by_id: dict[int, Topic] = field(init=False, repr=False)
    _keyword_index: dict[str, list[Keyword]] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._by_id = {}
        for topic in self.topics:
            if topic.topic_id in self._by_id:
                raise ValueError(f"duplicate topic_id {topic.topic_id}")
            self._by_id[topic.topic_id] = topic
        self._keyword_index = {}
        for topic in self.topics:
            for keyword in topic.keywords:
                self._keyword_index.setdefault(keyword.text, []).append(keyword)

    # -- lookups ---------------------------------------------------------

    def topic(self, topic_id: int) -> Topic:
        try:
            return self._by_id[topic_id]
        except KeyError:
            raise KeyError(f"no topic with id {topic_id}") from None

    def topics_in_domain(self, domain: str) -> list[Topic]:
        if domain not in self.domains:
            raise KeyError(f"unknown domain {domain!r}")
        return [topic for topic in self.topics if topic.domain == domain]

    def keywords_for(self, text: str) -> list[Keyword]:
        """All keywords with the given surface form (>1 means ambiguity)."""
        return list(self._keyword_index.get(phrase_key(text), []))

    def topic_ids_for(self, text: str) -> list[int]:
        """Topic ids that claim surface form ``text``."""
        return [keyword.topic_id for keyword in self.keywords_for(text)]

    def primary_topic_for(self, text: str) -> Topic | None:
        """The most popular topic claiming ``text``, or ``None``.

        An ambiguous surface form ("football") belongs to several topics;
        ground-truth relevance judgments use the most popular claimant,
        which is how a human judge would read the bare query, and is the
        reason expansion can *dis*ambiguate (§6.2.3's noted failure mode).
        """
        keywords = self.keywords_for(text)
        if not keywords:
            return None
        best = max(keywords, key=lambda kw: self.topic(kw.topic_id).popularity)
        return self.topic(best.topic_id)

    def is_ambiguous(self, text: str) -> bool:
        return len(set(self.topic_ids_for(text))) > 1

    # -- corpus-wide statistics -------------------------------------------

    def vocabulary(self) -> list[str]:
        """All distinct keyword surface forms, sorted."""
        return sorted(self._keyword_index)

    def ground_truth_communities(self) -> dict[int, set[str]]:
        """topic_id → set of surface forms; the clustering's gold standard.

        Ambiguous surface forms are assigned to their most popular claimant
        only, because a hard partition (which the clustering produces)
        cannot represent overlap.
        """
        communities: dict[int, set[str]] = {t.topic_id: set() for t in self.topics}
        for text in self._keyword_index:
            primary = self.primary_topic_for(text)
            if primary is not None:
                communities[primary.topic_id].add(text)
        return {tid: members for tid, members in communities.items() if members}

    def __len__(self) -> int:
        return len(self.topics)

    def __repr__(self) -> str:
        return (
            f"WorldModel(topics={len(self.topics)}, "
            f"keywords={len(self._keyword_index)}, seed={self.seed})"
        )

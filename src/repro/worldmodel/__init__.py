"""S1 — Ground-truth world model.

The paper's two data sources (a commercial search log and the Twitter
firehose) are proprietary, so the reproduction derives both from a single
synthetic *world model*: a taxonomy of domains → topics → keywords, each
keyword carrying surface-form variants (hashtags, abbreviations,
misspellings) and each topic carrying a URL universe.

Because the query-log simulator and the microblog simulator sample from the
*same* world model, web co-click structure mirrors microblog topical
structure — the property that makes the paper's query expansion effective —
and ground-truth topic labels exist for every keyword and every user, which
is what lets the evaluation compute true recall and precision.
"""

from repro.worldmodel.config import WorldConfig
from repro.worldmodel.model import Keyword, Topic, WorldModel
from repro.worldmodel.builder import build_world
from repro.worldmodel.variants import (
    abbreviation,
    hashtag_variant,
    misspellings,
    surface_variants,
)

__all__ = [
    "Keyword",
    "Topic",
    "WorldConfig",
    "WorldModel",
    "abbreviation",
    "build_world",
    "hashtag_variant",
    "misspellings",
    "surface_variants",
]

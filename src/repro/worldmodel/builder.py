"""Deterministic construction of the synthetic world.

Each domain has a *stem generator* that composes an unbounded stream of
unique topic stems from the vocabulary lists ("austin falcons", "lumatek
smartwatch", "neuropathy", ...).  The builder then dresses every stem with
keyword surface forms (canonical, abbreviations, hashtags, misspellings,
related activities, affiliated people, shared context terms) and a URL
universe, mirroring the structure visible in the paper's Figure 7.
"""

from __future__ import annotations

import random
from typing import Callable, Iterator

from repro.utils.rng import SeedSequenceFactory
from repro.utils.text import phrase_key
from repro.utils.zipf import zipf_weights
from repro.worldmodel import vocab
from repro.worldmodel.config import WorldConfig
from repro.worldmodel.model import Keyword, Topic, WorldModel
from repro.worldmodel.variants import abbreviation, surface_variants

#: relative keyword sampling weights by kind (heads dominate the log)
_KIND_WEIGHTS = {
    "canonical": 10.0,
    "variant": 2.5,
    "activity": 3.0,
    "person": 1.5,
    "shared": 2.0,
}

#: relative popularity of whole domains (sports queries outnumber wiki ones)
_DOMAIN_WEIGHTS = {
    "sports": 1.6,
    "electronics": 1.3,
    "finance": 1.1,
    "health": 1.0,
    "wikipedia": 0.8,
    "misc": 0.9,
}


def _unique_stream(candidates: Iterator[str]) -> Iterator[str]:
    seen: set[str] = set()
    for candidate in candidates:
        key = phrase_key(candidate)
        if key and key not in seen:
            seen.add(key)
            yield key


def _shuffled_product(
    left: tuple[str, ...], right: tuple[str, ...], rng: random.Random
) -> list[str]:
    """All ``left × right`` compositions in deterministic-random order.

    Shuffling the full product (rather than nesting loops) keeps the head
    of the stream diverse: consecutive topics share neither component, so
    shared words ("bears", "lumatek") create *occasional* ambiguity as in
    real data instead of a degenerate everything-is-bears world.
    """
    combos = [f"{a} {b}" for a in left for b in right]
    rng.shuffle(combos)
    return combos


def _sports_stems(rng: random.Random) -> Iterator[str]:
    return _unique_stream(
        iter(_shuffled_product(vocab.CITIES, vocab.TEAM_NOUNS, rng))
    )


def _electronics_stems(rng: random.Random) -> Iterator[str]:
    return _unique_stream(
        iter(_shuffled_product(vocab.TECH_BRANDS, vocab.TECH_PRODUCTS, rng))
    )


def _finance_stems(rng: random.Random) -> Iterator[str]:
    def raw() -> Iterator[str]:
        indexes = list(vocab.INDEX_NAMES)
        entities = list(vocab.FINANCE_ENTITIES)
        rng.shuffle(indexes)
        rng.shuffle(entities)
        yield from indexes
        yield from entities
        # synthetic tickers extend the pool indefinitely
        consonants = "bcdfgklmnprstvz"
        vowels = "aeiou"
        while True:
            ticker = (
                rng.choice(consonants)
                + rng.choice(vowels)
                + rng.choice(consonants)
                + rng.choice(consonants)
            )
            yield f"{ticker} stock"

    return _unique_stream(raw())


def _health_stems(rng: random.Random) -> Iterator[str]:
    def raw() -> Iterator[str]:
        conditions = list(vocab.HEALTH_CONDITIONS)
        rng.shuffle(conditions)
        yield from conditions
        prefixes = ("neuro", "cardio", "derma", "gastro", "osteo", "hema",
                    "pulmo", "arthro", "myo", "nephro")
        suffixes = ("itis", "osis", "algia", "pathy", "emia")
        for suffix in suffixes:
            for prefix in prefixes:
                yield prefix + suffix

    return _unique_stream(raw())


def _wikipedia_stems(rng: random.Random) -> Iterator[str]:
    def raw() -> Iterator[str]:
        subjects = list(vocab.WIKI_SUBJECTS)
        rng.shuffle(subjects)
        yield "world war i"
        yield "world war ii"
        yield from subjects
        while True:  # biography pages
            yield vocab.person_name(rng)

    return _unique_stream(raw())


def _misc_stems(rng: random.Random) -> Iterator[str]:
    def raw() -> Iterator[str]:
        hobbies = list(vocab.MISC_HOBBIES)
        rng.shuffle(hobbies)
        yield from hobbies
        while True:  # public figures in the long tail
            yield vocab.person_name(rng)

    return _unique_stream(raw())


_STEM_GENERATORS: dict[str, Callable[[random.Random], Iterator[str]]] = {
    "sports": _sports_stems,
    "electronics": _electronics_stems,
    "finance": _finance_stems,
    "health": _health_stems,
    "wikipedia": _wikipedia_stems,
    "misc": _misc_stems,
}

_ACTIVITY_WORDS: dict[str, tuple[str, ...]] = {
    "sports": vocab.SPORT_WORDS,
    "electronics": vocab.TECH_WORDS,
    "finance": vocab.FINANCE_WORDS,
    "health": vocab.HEALTH_WORDS,
    "wikipedia": vocab.WIKI_WORDS,
    "misc": vocab.NEWS_WORDS,
}

#: domains whose topics get affiliated person keywords (players, figures)
_PERSON_DOMAINS = frozenset({"sports", "wikipedia", "misc"})

#: domains whose topics borrow a shared context keyword and what to borrow
_SHARED_CONTEXT: dict[str, Callable[[str, random.Random], str]] = {
    "sports": lambda stem, rng: stem.split()[0] if len(stem.split()) > 1 else stem,
    "electronics": lambda stem, rng: stem.split()[0],
    "finance": lambda stem, rng: "stock market",
    "health": lambda stem, rng: "health insurance",
    "wikipedia": lambda stem, rng: "history channel",
    "misc": lambda stem, rng: rng.choice(vocab.CITIES),
}


def build_world(config: WorldConfig | None = None) -> WorldModel:
    """Build a :class:`WorldModel` from ``config`` (defaults when ``None``).

    The construction is fully deterministic: the same config yields the same
    world, keyword by keyword.
    """
    config = config or WorldConfig()
    factory = SeedSequenceFactory(config.seed)
    topics: list[Topic] = []
    next_topic_id = 0

    for domain in config.domains:
        stem_generator = _STEM_GENERATORS.get(domain, _misc_stems)
        rng = factory.stream(f"world/{domain}")
        stems = stem_generator(rng)
        popularity = zipf_weights(
            config.topics_per_domain, config.topic_popularity_exponent
        )
        domain_weight = _DOMAIN_WEIGHTS.get(domain, 1.0)
        hub_urls = [
            vocab.url_for(f"{domain} hub {index}", rng)
            for index in range(config.hub_urls_per_domain)
        ]
        for rank in range(config.topics_per_domain):
            stem = next(stems)
            topic = _build_topic(
                topic_id=next_topic_id,
                stem=stem,
                domain=domain,
                popularity=domain_weight * popularity[rank],
                hub_urls=hub_urls,
                config=config,
                rng=rng,
            )
            topics.append(topic)
            next_topic_id += 1

    return WorldModel(topics=topics, domains=config.domains, seed=config.seed)


def _build_topic(
    topic_id: int,
    stem: str,
    domain: str,
    popularity: float,
    hub_urls: list[str],
    config: WorldConfig,
    rng: random.Random,
) -> Topic:
    keywords: list[Keyword] = [
        Keyword(stem, topic_id, "canonical", _KIND_WEIGHTS["canonical"])
    ]
    seen = {stem}

    def add(text: str, kind: str) -> None:
        key = phrase_key(text)
        if key and key not in seen:
            seen.add(key)
            keywords.append(Keyword(key, topic_id, kind, _KIND_WEIGHTS[kind]))

    # surface variants of the canonical term
    for variant in surface_variants(
        stem, rng, config.hashtag_rate, config.misspelling_rate
    ):
        add(variant, "variant")

    # the short form ("falcons" for "austin falcons") anchors activities
    short = abbreviation(stem) if len(stem.split()) > 1 else stem
    words = stem.split()
    anchor = words[-1] if len(words) > 1 and len(words[-1]) > 3 else stem
    if anchor != stem:
        add(anchor, "variant")

    # related activities: "falcons draft", "diabetes diet", ...
    activity_words = list(_ACTIVITY_WORDS.get(domain, vocab.NEWS_WORDS))
    rng.shuffle(activity_words)
    budget = rng.randint(
        config.min_keywords_per_topic, config.max_keywords_per_topic
    )
    for word in activity_words:
        if len(keywords) >= budget:
            break
        add(f"{anchor} {word}", "activity")

    # affiliated people (players, historical figures, hosts)
    if domain in _PERSON_DOMAINS:
        for _ in range(rng.randint(1, 3)):
            if len(keywords) >= config.max_keywords_per_topic:
                break
            add(vocab.person_name(rng), "person")

    # shared context keyword (city, brand, ...) — deliberate ambiguity
    if rng.random() < config.shared_keyword_rate:
        shared = _SHARED_CONTEXT[domain](stem, rng)
        if phrase_key(shared) != phrase_key(short):
            add(shared, "shared")

    # search-only topics: heavily searched, a ghost town on the platform
    if rng.random() < config.search_only_rate:
        affinity = rng.uniform(0.0, 0.15)
    else:
        affinity = rng.uniform(0.6, 1.0)

    urls = _topic_urls(stem, short, config.urls_per_topic, rng)
    return Topic(
        topic_id=topic_id,
        name=stem,
        domain=domain,
        keywords=keywords,
        urls=urls,
        hub_urls=list(hub_urls),
        popularity=popularity,
        microblog_affinity=affinity,
    )


def _topic_urls(stem: str, short: str, count: int, rng: random.Random) -> list[str]:
    """Compose the topic's own URL universe (official site, fan sites, ...)."""
    candidates = [
        vocab.url_for(stem, rng),
        vocab.url_for(f"{short} zone", rng),
        vocab.url_for(f"{short} report", rng),
        vocab.url_for(f"the {short} blog", rng),
        vocab.url_for(f"{short} daily", rng),
        vocab.url_for(f"all about {short}", rng),
        vocab.url_for(f"{short} central", rng),
        vocab.url_for(f"{short} world", rng),
    ]
    unique: list[str] = []
    seen: set[str] = set()
    for url in candidates:
        if url not in seen:
            seen.add(url)
            unique.append(url)
        if len(unique) >= count:
            break
    return unique

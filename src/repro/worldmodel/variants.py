"""Surface-form variant generation.

§4.1 of the paper observes that the same term appears in the query log in
*"dozens, sometimes hundreds of variants (e.g., san francisco,
#sanfrancisco, sf, ...)"* and that the pipeline deliberately leaves them
unchanged.  The world builder therefore produces variants up front, so the
query-log simulator can emit them with realistic frequencies and the
similarity graph can rediscover that they belong together.
"""

from __future__ import annotations

import random


def hashtag_variant(term: str) -> str:
    """Collapse a phrase into its hashtag form.

    >>> hashtag_variant("san francisco")
    '#sanfrancisco'
    """
    return "#" + term.replace(" ", "").replace("&", "").replace("'", "")


def abbreviation(term: str) -> str:
    """Initialism for multi-word phrases, first syllable-ish chunk otherwise.

    >>> abbreviation("san francisco")
    'sf'
    >>> abbreviation("diabetes")
    'diab'
    """
    words = term.split()
    if len(words) >= 2:
        return "".join(word[0] for word in words if word)
    return term[:4]


def misspellings(term: str, rng: random.Random, count: int = 1) -> list[str]:
    """Generate ``count`` deterministic single-edit misspellings of ``term``.

    Edits are drawn from the classic typo set: drop a letter, double a
    letter, or swap two adjacent letters.  Spaces and sigils are never
    edited.  Results differ from the input and from each other.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    letters = [i for i, ch in enumerate(term) if ch.isalpha()]
    if len(letters) < 3:
        return []
    results: list[str] = []
    seen = {term}
    attempts = 0
    while len(results) < count and attempts < 20 * (count + 1):
        attempts += 1
        kind = rng.choice(("drop", "double", "swap"))
        position = rng.choice(letters[1:])  # keep the first letter intact
        if kind == "drop":
            candidate = term[:position] + term[position + 1 :]
        elif kind == "double":
            candidate = term[:position] + term[position] + term[position:]
        else:
            if position + 1 >= len(term) or not term[position + 1].isalpha():
                continue
            candidate = (
                term[:position]
                + term[position + 1]
                + term[position]
                + term[position + 2 :]
            )
        if candidate not in seen and len(candidate) >= 3:
            seen.add(candidate)
            results.append(candidate)
    return results


def surface_variants(
    term: str,
    rng: random.Random,
    hashtag_rate: float = 0.5,
    misspelling_rate: float = 0.35,
) -> list[str]:
    """All variant surface forms the builder attaches to a canonical term."""
    variants: list[str] = []
    if len(term.split()) >= 2:
        variants.append(abbreviation(term))
    if rng.random() < hashtag_rate:
        variants.append(hashtag_variant(term))
    if rng.random() < misspelling_rate:
        variants.extend(misspellings(term, rng, count=1))
    # Deduplicate while preserving order; a variant equal to the canonical
    # term (possible for very short inputs) is dropped.
    unique: list[str] = []
    seen = {term}
    for variant in variants:
        if variant not in seen:
            seen.add(variant)
            unique.append(variant)
    return unique

"""Sizing knobs for the synthetic world."""

from __future__ import annotations

from dataclasses import dataclass, field


#: Domain names used throughout the reproduction.  The first five mirror the
#: categories of Table 1; ``misc`` provides the long tail that the paper's
#: Top-250 set draws from.
DEFAULT_DOMAINS: tuple[str, ...] = (
    "sports",
    "electronics",
    "finance",
    "health",
    "wikipedia",
    "misc",
)


@dataclass(frozen=True)
class WorldConfig:
    """Counts and rates controlling :func:`repro.worldmodel.build_world`.

    The defaults produce a world of a few hundred topics and a few thousand
    keyword surface forms — three orders of magnitude below the paper's
    production scale but with the same structural statistics, which is what
    the experiments depend on.
    """

    seed: int = 2016
    domains: tuple[str, ...] = DEFAULT_DOMAINS
    topics_per_domain: int = 40
    #: minimum/maximum number of keyword surface forms attached to a topic
    min_keywords_per_topic: int = 4
    max_keywords_per_topic: int = 14
    #: topic-specific URLs per topic (official sites, fan sites, ...)
    urls_per_topic: int = 6
    #: shared "hub" URLs per domain (league sites, portals) that create
    #: cross-topic co-clicks inside a domain
    hub_urls_per_domain: int = 3
    #: Zipf exponent of topic popularity inside a domain
    topic_popularity_exponent: float = 1.1
    #: probability that a topic borrows a "shared context" keyword (e.g. a
    #: city name) that other topics also use — the source of the ambiguity
    #: the paper discusses ("football" in Europe vs the US)
    shared_keyword_rate: float = 0.3
    #: probability of generating a misspelled variant for a keyword
    misspelling_rate: float = 0.35
    #: probability of generating a hashtag variant
    hashtag_rate: float = 0.5
    #: fraction of topics that are "search-only" interests (navigational
    #: queries, utilities): heavily searched, barely discussed on the
    #: microblog platform
    search_only_rate: float = 0.25
    extra: dict = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        if self.topics_per_domain <= 0:
            raise ValueError("topics_per_domain must be positive")
        if not 1 <= self.min_keywords_per_topic <= self.max_keywords_per_topic:
            raise ValueError(
                "need 1 <= min_keywords_per_topic <= max_keywords_per_topic, got "
                f"{self.min_keywords_per_topic}..{self.max_keywords_per_topic}"
            )
        if self.urls_per_topic <= 0:
            raise ValueError("urls_per_topic must be positive")
        for rate_name in (
            "shared_keyword_rate",
            "misspelling_rate",
            "hashtag_rate",
            "search_only_rate",
        ):
            rate = getattr(self, rate_name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{rate_name} must be in [0, 1], got {rate}")
        if not self.domains:
            raise ValueError("at least one domain is required")

    def scaled(self, factor: float) -> "WorldConfig":
        """Return a copy with topic counts scaled by ``factor`` (≥ small floor)."""
        if factor <= 0:
            raise ValueError(f"factor must be positive, got {factor}")
        return WorldConfig(
            seed=self.seed,
            domains=self.domains,
            topics_per_domain=max(2, int(self.topics_per_domain * factor)),
            min_keywords_per_topic=self.min_keywords_per_topic,
            max_keywords_per_topic=self.max_keywords_per_topic,
            urls_per_topic=self.urls_per_topic,
            hub_urls_per_domain=self.hub_urls_per_domain,
            topic_popularity_exponent=self.topic_popularity_exponent,
            shared_keyword_rate=self.shared_keyword_rate,
            misspelling_rate=self.misspelling_rate,
            hashtag_rate=self.hashtag_rate,
        )

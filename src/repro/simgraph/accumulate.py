"""One-pass accumulator similarity join — the fast offline extraction path.

The seed implementation (:mod:`repro.simgraph.similarity`) is the naive
reading of Figure 4: enumerate candidate pairs through the inverted index
while materialising a quadratic ``seen`` set, then run a second full pass
computing one cosine per pair (re-deriving both vector norms each time).
This module replaces it with the standard document-at-a-time aggregation
used by production similarity joins (cf. Spasojevic et al., "Mining Half
a Billion Topical Experts"): queries are interned to dense integer ids,
norms are taken once from the (construction-cached) vectors, and the
inverted index is traversed URL-by-URL accumulating *partial dot
products* per pair — every candidate pair is fully scored the moment
enumeration ends, with no ``seen`` set and no second cosine pass.

Hub semantics match the seed exactly: posting lists longer than
``max_posting_list`` never *generate* candidate pairs, but their
components still count toward the dot product of pairs that co-clicked a
non-hub URL.  The accumulator therefore folds hub URLs back in during
finalisation, via the (small) per-query hub component maps.

All arithmetic on the accumulation path is integer-exact, so the edge
dict is **byte-identical** to :func:`repro.simgraph.similarity.similarity_edges`:
partial dot products are integers (order-independent), and the final
``float(dot) / (norm_u * norm_v)`` performs the same IEEE operations in
the same association as the seed's ``cosine``.  The numpy backend is
used only when a conservative magnitude bound proves its float64 (or
int64) accumulation cannot round; otherwise the pure-python big-int
backend runs — same contract, no dependency.

``workers > 1`` shards the URL postings across an honest OS process pool
(greedy cost balancing on ``len²`` per posting list) and merges the
per-shard accumulators — integer sums, so the merge is exact and
order-free.  The *actual* pool size used (never more than the machine's
cores unless forced, never more than the shard count, 1 when the pool
cannot be created) is reported in :class:`JoinStats` and flows into the
Table 9 ``workers`` column.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.simgraph.similarity import SimilarityConfig
from repro.simgraph.vectors import SparseVector

try:  # numpy is optional — the pure-python backend is always available
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via backend="python"
    _np = None

#: beyond this, ``i*n+j`` bincount over the full pair keyspace is wasteful
_BINCOUNT_KEYSPACE_LIMIT = 16_000_000
#: float64 accumulates integers exactly below 2**53
_FLOAT64_EXACT = 2**53
#: int64 accumulation headroom
_INT64_EXACT = 2**62
#: below this many multiply-accumulate ops a process pool cannot amortise
#: its fork + pickle cost (the standard-scale join is ~2M ops and runs in
#: ~0.13 s serially) — smaller joins stay serial even when workers > 1
_MIN_POOL_OPS = 8_000_000


@dataclass(frozen=True)
class JoinStats:
    """Resource accounting for one accumulator join."""

    #: interned queries (vectors in the space)
    queries: int
    #: distinct URLs in the inverted index
    urls: int
    #: posting lists skipped for candidate generation (> max_posting_list)
    hub_urls: int
    #: multiply-accumulate operations performed (Σ len·(len−1)/2 over lists)
    accumulate_ops: int
    #: distinct pairs that received at least one accumulation
    candidate_pairs: int
    #: pairs at or above the similarity floor
    edges: int
    #: processes that actually accumulated shards (1 = serial)
    workers: int
    #: shards the postings were split into (== workers on the pool path)
    shards: int
    #: "numpy" or "python"
    backend: str


@dataclass(frozen=True)
class JoinResult:
    """Edges plus the stats the Table 9 report wants."""

    edges: dict[tuple[str, str], float]
    stats: JoinStats


def _cpu_budget() -> int:
    """Cores this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):  # pragma: no cover - non-linux
        return os.cpu_count() or 1


def _accumulate_shard_python(
    postings: list[list[tuple[int, int]]], stride: int
) -> dict[int, int]:
    """Integer partial dot products for one shard of posting lists.

    Each posting list must be sorted by query id ascending, so the pair
    key ``qa * stride + qb`` always has ``qa < qb``.
    """
    acc: dict[int, int] = {}
    get = acc.get
    for plist in postings:
        for a in range(len(plist) - 1):
            qa, ca = plist[a]
            base = qa * stride
            for b in range(a + 1, len(plist)):
                qb, cb = plist[b]
                key = base + qb
                acc[key] = get(key, 0) + ca * cb
    return acc


def _numpy_pair_ops(postings: list[list[tuple[int, int]]], stride: int):
    """Raw (keys, products) int64 arrays for a shard, one row per op."""
    key_parts, val_parts = [], []
    tri_cache: dict[int, tuple] = {}
    for plist in postings:
        length = len(plist)
        arr = _np.asarray(plist, dtype=_np.int64)
        qids, clicks = arr[:, 0], arr[:, 1]
        tri = tri_cache.get(length)
        if tri is None:
            tri = _np.triu_indices(length, 1)
            tri_cache[length] = tri
        left, right = tri
        key_parts.append(qids[left] * stride + qids[right])
        val_parts.append(clicks[left] * clicks[right])
    if not key_parts:
        empty = _np.empty(0, dtype=_np.int64)
        return empty, empty
    return _np.concatenate(key_parts), _np.concatenate(val_parts)


def _reduce_int64(keys, vals, stride: int = 0, bincount_safe: bool = False):
    """Sum ``vals`` by key, exactly, returning (sorted unique keys, sums).

    When the caller proves every partial sum stays below 2**53
    (``bincount_safe``) and the dense pair keyspace is small enough, the
    O(n) ``bincount`` path is used — its float64 accumulation of
    exactly-representable integers is exact under that bound.  Otherwise
    an int64 sort-and-segment-sum runs.
    """
    if len(keys) == 0:
        return keys, vals
    if bincount_safe and 0 < stride * stride <= _BINCOUNT_KEYSPACE_LIMIT:
        dense = _np.bincount(keys, weights=vals, minlength=stride * stride)
        hits = _np.nonzero(dense)[0]
        return hits, dense[hits].astype(_np.int64)
    order = _np.argsort(keys, kind="stable")
    keys, vals = keys[order], vals[order]
    starts = _np.concatenate(
        ([0], _np.nonzero(_np.diff(keys))[0] + 1)
    )
    return keys[starts], _np.add.reduceat(vals, starts)


def _accumulate_shard_numpy(
    postings: list[list[tuple[int, int]]], stride: int, bincount_safe: bool
):
    """Shard accumulation on the numpy backend: locally reduced arrays."""
    keys, vals = _numpy_pair_ops(postings, stride)
    return _reduce_int64(keys, vals, stride, bincount_safe)


def _pool_worker(args):
    """Top-level so the process pool can pickle it by reference."""
    backend, postings, stride, bincount_safe = args
    ops = sum(len(p) * (len(p) - 1) // 2 for p in postings)
    if backend == "numpy":
        keys, sums = _accumulate_shard_numpy(postings, stride, bincount_safe)
        return keys, sums, ops
    return _accumulate_shard_python(postings, stride), None, ops


def _shard_postings(
    work: list[list[tuple[int, int]]], shards: int
) -> list[list[list[tuple[int, int]]]]:
    """Greedy balance by pairwise cost (len²) into ``shards`` buckets."""
    buckets: list[list[list[tuple[int, int]]]] = [[] for _ in range(shards)]
    loads = [0] * shards
    for plist in sorted(work, key=len, reverse=True):
        target = loads.index(min(loads))
        buckets[target].append(plist)
        loads[target] += len(plist) * (len(plist) - 1) // 2
    return [bucket for bucket in buckets if bucket]


def accumulator_similarity_join(
    vectors: dict[str, SparseVector],
    config: SimilarityConfig | None = None,
    *,
    workers: int = 1,
    force_workers: bool = False,
    backend: str | None = None,
) -> JoinResult:
    """The one-pass similarity join; byte-identical to the seed scan.

    ``workers=1`` (the default) runs strictly serially — no pool is ever
    created, and the reported worker count is 1.  ``workers > 1`` shards
    the postings across a process pool clamped to the machine's usable
    cores, and only when the join is big enough (``_MIN_POOL_OPS``
    multiply-accumulates) to amortise the fork + pickle cost — small
    joins stay serial no matter how many workers are requested.
    ``force_workers=True`` lifts both the core clamp and the work gate,
    for exercising the sharded merge deterministically.  ``backend``
    forces ``"numpy"`` or ``"python"``; by default numpy is used when it
    is importable *and* a magnitude bound proves its accumulation exact.
    """
    config = config or SimilarityConfig()
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if backend not in (None, "numpy", "python"):
        raise ValueError(f"unknown backend {backend!r}")

    # -- intern: dense ids in sorted-label order, norms read once ---------
    labels = sorted(vectors)
    stride = len(labels)
    norms = [vectors[label].norm for label in labels]

    # -- one pass over the vectors builds the inverted index --------------
    postings: dict[str, list[tuple[int, int]]] = {}
    max_component = 0
    max_length = 0
    for qid, label in enumerate(labels):
        components = vectors[label].components
        if len(components) > max_length:
            max_length = len(components)
        for url, clicks in components.items():
            postings.setdefault(url, []).append((qid, clicks))
            if clicks > max_component:
                max_component = clicks

    # -- split hubs from candidate-generating lists -----------------------
    hub_components: list[dict[str, int] | None] = [None] * stride
    work: list[list[tuple[int, int]]] = []
    hub_urls = 0
    for url, plist in postings.items():
        if len(plist) > config.max_posting_list:
            hub_urls += 1
            for qid, clicks in plist:
                bucket = hub_components[qid]
                if bucket is None:
                    bucket = hub_components[qid] = {}
                bucket[url] = clicks
        elif len(plist) >= 2:
            work.append(plist)

    # -- pick a backend the magnitude bound proves exact ------------------
    dot_bound = max_component * max_component * max(max_length, 1)
    bincount_safe = dot_bound < _FLOAT64_EXACT
    if backend is None:
        backend = (
            "numpy" if _np is not None and dot_bound < _INT64_EXACT else "python"
        )
    elif backend == "numpy" and _np is None:
        raise ValueError("numpy backend requested but numpy is unavailable")

    # -- accumulate (serial, or sharded across an honest pool) ------------
    requested = min(workers, len(work)) if work else 1
    if force_workers:
        effective = requested
    else:
        effective = min(requested, _cpu_budget())
        total_ops = sum(len(p) * (len(p) - 1) // 2 for p in work)
        if total_ops < _MIN_POOL_OPS:
            effective = 1  # too small to amortise fork + pickle
    shards = [work] if work else []
    pool_used = 1
    results = None
    if effective > 1:
        shards = _shard_postings(work, effective)
        results, pool_used = _run_pool(backend, shards, stride, bincount_safe)
    if results is None:  # serial (or the pool could not be created)
        pool_used = 1
        shards = [work] if work else []
        results = [
            _pool_worker((backend, shard, stride, bincount_safe))
            for shard in shards
        ]

    ops = sum(result[2] for result in results)

    # -- merge shard accumulators (integer-exact, order-free) -------------
    edges: dict[tuple[str, str], float] = {}
    if backend == "numpy":
        candidate_pairs = _finalize_numpy(
            results, stride, labels, norms, hub_components, config, edges
        )
    else:
        candidate_pairs = _finalize_python(
            results, stride, labels, norms, hub_components, config, edges
        )

    stats = JoinStats(
        queries=stride,
        urls=len(postings),
        hub_urls=hub_urls,
        accumulate_ops=ops,
        candidate_pairs=candidate_pairs,
        edges=len(edges),
        workers=pool_used,
        shards=max(len(shards), 1),
        backend=backend,
    )
    return JoinResult(edges=edges, stats=stats)


def accumulate_similarity_edges(
    vectors: dict[str, SparseVector],
    config: SimilarityConfig | None = None,
    *,
    workers: int = 1,
    force_workers: bool = False,
    backend: str | None = None,
) -> dict[tuple[str, str], float]:
    """Drop-in replacement for :func:`similarity_edges` (edges only)."""
    return accumulator_similarity_join(
        vectors,
        config,
        workers=workers,
        force_workers=force_workers,
        backend=backend,
    ).edges


def _run_pool(backend: str, shards, stride: int, bincount_safe: bool):
    """Run shards on a process pool; fall back to serial on any failure.

    The pool never uses the ``fork`` start method: this join is reachable
    from inside the live multithreaded :class:`ExpertService` (via
    ``refresh_domains``), and forking a multithreaded process can
    snapshot a child mid-lock and deadlock it.  ``forkserver`` (or
    ``spawn`` where unavailable) sidesteps that entirely.
    """
    import multiprocessing
    from concurrent.futures import BrokenExecutor, ProcessPoolExecutor

    method = (
        "forkserver"
        if "forkserver" in multiprocessing.get_all_start_methods()
        else "spawn"
    )
    try:
        with ProcessPoolExecutor(
            max_workers=len(shards),
            mp_context=multiprocessing.get_context(method),
        ) as pool:
            results = list(
                pool.map(
                    _pool_worker,
                    [
                        (backend, shard, stride, bincount_safe)
                        for shard in shards
                    ],
                )
            )
        return results, len(shards)
    except (OSError, BrokenExecutor):
        # sandboxed hosts that cannot fork, or a worker killed mid-map
        # (e.g. OOM): the join must still complete, just serially
        return None, 1


def _hub_dot(left: dict[str, int], right: dict[str, int]) -> int:
    if len(left) > len(right):
        left, right = right, left
    return sum(
        clicks * right[url] for url, clicks in left.items() if url in right
    )


def _finalize_python(
    results, stride, labels, norms, hub_components, config, edges
) -> int:
    """Merge int dict shards, fold hubs in, threshold.  Returns pair count."""
    merged: dict[int, int] = {}
    for acc, _keys, _ops in results:
        if not merged:
            merged = dict(acc)
            continue
        get = merged.get
        for key, value in acc.items():
            merged[key] = get(key, 0) + value
    floor = config.min_similarity
    for key in sorted(merged):
        left, right = divmod(key, stride)
        dot = merged[key]
        left_hubs = hub_components[left]
        right_hubs = hub_components[right]
        if left_hubs and right_hubs:
            dot += _hub_dot(left_hubs, right_hubs)
        # same association as the seed cosine: float(dot) / (n_l * n_r)
        weight = float(dot) / (norms[left] * norms[right])
        if weight >= floor:
            edges[(labels[left], labels[right])] = weight
    return len(merged)


def _finalize_numpy(
    results, stride, labels, norms, hub_components, config, edges
) -> int:
    """Merge (keys, sums) shards with one more exact reduce, then score."""
    # results rows are (keys, sums, ops) on the numpy backend
    key_parts = [r[0] for r in results if len(r[0])]
    sum_parts = [r[1] for r in results if len(r[0])]
    if not key_parts:
        return 0
    keys = _np.concatenate(key_parts)
    sums = _np.concatenate(sum_parts)
    if len(key_parts) > 1:
        # partial sums are each bounded by the true dot, so the merge
        # stays exact under the same bincount bound
        keys, sums = _reduce_int64(keys, sums)
    # shard-local reduces already sorted each part; a single part is final
    lefts = keys // stride
    rights = keys - lefts * stride
    dots = sums
    has_hubs = _np.fromiter(
        (bucket is not None for bucket in hub_components),
        dtype=bool,
        count=stride,
    )
    if has_hubs.any():
        both = _np.nonzero(has_hubs[lefts] & has_hubs[rights])[0]
        if len(both):
            dots = dots.copy()
            for at in both.tolist():
                dots[at] += _hub_dot(
                    hub_components[int(lefts[at])],
                    hub_components[int(rights[at])],
                )
    norm_arr = _np.asarray(norms, dtype=_np.float64)
    weights = dots / (norm_arr[lefts] * norm_arr[rights])
    keep = _np.nonzero(weights >= config.min_similarity)[0]
    left_kept = lefts[keep].tolist()
    right_kept = rights[keep].tolist()
    weight_kept = weights[keep].tolist()
    for left, right, weight in zip(left_kept, right_kept, weight_kept):
        edges[(labels[left], labels[right])] = weight
    return len(keys)

"""One-pass accumulator similarity join — the fast offline extraction path.

The seed implementation (:mod:`repro.simgraph.similarity`) is the naive
reading of Figure 4: enumerate candidate pairs through the inverted index
while materialising a quadratic ``seen`` set, then run a second full pass
computing one cosine per pair (re-deriving both vector norms each time).
This module replaces it with the standard document-at-a-time aggregation
used by production similarity joins (cf. Spasojevic et al., "Mining Half
a Billion Topical Experts"): queries are interned to dense integer ids,
norms are taken once from the (construction-cached) vectors, and the
inverted index is traversed URL-by-URL accumulating *partial dot
products* per pair — every candidate pair is fully scored the moment
enumeration ends, with no ``seen`` set and no second cosine pass.

Hub semantics match the seed exactly: posting lists longer than
``max_posting_list`` never *generate* candidate pairs, but their
components still count toward the dot product of pairs that co-clicked a
non-hub URL.  The accumulator therefore folds hub URLs back in during
finalisation, via the (small) per-query hub component maps.

All arithmetic on the accumulation path is integer-exact, so the edge
dict is **byte-identical** to :func:`repro.simgraph.similarity.similarity_edges`:
partial dot products are integers (order-independent), and the final
``float(dot) / (norm_u * norm_v)`` performs the same IEEE operations in
the same association as the seed's ``cosine``.  The numpy backend is
used only when a conservative magnitude bound proves its float64 (or
int64) accumulation cannot round; otherwise the pure-python big-int
backend runs — same contract, no dependency.

``workers > 1`` shards the URL postings across an honest OS process pool
(greedy cost balancing on ``len²`` per posting list) and merges the
per-shard accumulators — integer sums, so the merge is exact and
order-free.  The *actual* pool size used (never more than the machine's
cores unless forced, never more than the shard count, 1 when the pool
cannot be created) is reported in :class:`JoinStats` and flows into the
Table 9 ``workers`` column.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.simgraph.similarity import SimilarityConfig
from repro.simgraph.vectors import SparseVector

# analysis: exact-path

try:  # numpy is optional — the pure-python backend is always available
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via backend="python"
    _np = None

#: beyond this, ``i*n+j`` bincount over the full pair keyspace is wasteful
_BINCOUNT_KEYSPACE_LIMIT = 16_000_000
#: float64 accumulates integers exactly below 2**53
_FLOAT64_EXACT = 2**53
#: int64 accumulation headroom
_INT64_EXACT = 2**62
#: below this many multiply-accumulate ops a process pool cannot amortise
#: its fork + pickle cost (the standard-scale join is ~2M ops and runs in
#: ~0.13 s serially) — smaller joins stay serial even when workers > 1
_MIN_POOL_OPS = 8_000_000


@dataclass(frozen=True)
class JoinStats:
    """Resource accounting for one accumulator join."""

    #: interned queries (vectors in the space)
    queries: int
    #: distinct URLs in the inverted index
    urls: int
    #: posting lists skipped for candidate generation (> max_posting_list)
    hub_urls: int
    #: multiply-accumulate operations performed (Σ len·(len−1)/2 over lists)
    accumulate_ops: int
    #: distinct pairs that received at least one accumulation
    candidate_pairs: int
    #: pairs at or above the similarity floor
    edges: int
    #: processes that actually accumulated shards (1 = serial)
    workers: int
    #: shards the postings were split into (== workers on the pool path)
    shards: int
    #: "numpy" or "python"
    backend: str


@dataclass(frozen=True)
class JoinResult:
    """Edges plus the stats the Table 9 report wants."""

    edges: dict[tuple[str, str], float]
    stats: JoinStats


def _cpu_budget() -> int:
    """Cores this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):  # pragma: no cover - non-linux
        return os.cpu_count() or 1


def _accumulate_shard_python(
    postings: list[list[tuple[int, int]]], stride: int
) -> dict[int, int]:
    """Integer partial dot products for one shard of posting lists.

    Each posting list must be sorted by query id ascending, so the pair
    key ``qa * stride + qb`` always has ``qa < qb``.
    """
    acc: dict[int, int] = {}
    get = acc.get
    for plist in postings:
        for a in range(len(plist) - 1):
            qa, ca = plist[a]
            base = qa * stride
            for b in range(a + 1, len(plist)):
                qb, cb = plist[b]
                key = base + qb
                acc[key] = get(key, 0) + ca * cb
    return acc


def _numpy_pair_ops(postings: list[list[tuple[int, int]]], stride: int):
    """Raw (keys, products) int64 arrays for a shard, one row per op."""
    key_parts, val_parts = [], []
    tri_cache: dict[int, tuple] = {}
    for plist in postings:
        length = len(plist)
        arr = _np.asarray(plist, dtype=_np.int64)
        qids, clicks = arr[:, 0], arr[:, 1]
        tri = tri_cache.get(length)
        if tri is None:
            tri = _np.triu_indices(length, 1)
            tri_cache[length] = tri
        left, right = tri
        key_parts.append(qids[left] * stride + qids[right])
        val_parts.append(clicks[left] * clicks[right])
    if not key_parts:
        empty = _np.empty(0, dtype=_np.int64)
        return empty, empty
    return _np.concatenate(key_parts), _np.concatenate(val_parts)


def _reduce_int64(keys, vals, stride: int = 0, bincount_safe: bool = False):
    """Sum ``vals`` by key, exactly, returning (sorted unique keys, sums).

    When the caller proves every partial sum stays below 2**53
    (``bincount_safe``) and the dense pair keyspace is small enough, the
    O(n) ``bincount`` path is used — its float64 accumulation of
    exactly-representable integers is exact under that bound.  Otherwise
    an int64 sort-and-segment-sum runs.
    """
    if len(keys) == 0:
        return keys, vals
    if bincount_safe and 0 < stride * stride <= _BINCOUNT_KEYSPACE_LIMIT:
        dense = _np.bincount(keys, weights=vals, minlength=stride * stride)
        hits = _np.nonzero(dense)[0]
        return hits, dense[hits].astype(_np.int64)
    order = _np.argsort(keys, kind="stable")
    keys, vals = keys[order], vals[order]
    starts = _np.concatenate(
        ([0], _np.nonzero(_np.diff(keys))[0] + 1)
    )
    return keys[starts], _np.add.reduceat(vals, starts)


def _accumulate_shard_numpy(
    postings: list[list[tuple[int, int]]], stride: int, bincount_safe: bool
):
    """Shard accumulation on the numpy backend: locally reduced arrays."""
    keys, vals = _numpy_pair_ops(postings, stride)
    return _reduce_int64(keys, vals, stride, bincount_safe)


def _pool_worker(args):
    """Top-level so the process pool can pickle it by reference."""
    backend, postings, stride, bincount_safe = args
    ops = sum(len(p) * (len(p) - 1) // 2 for p in postings)
    if backend == "numpy":
        keys, sums = _accumulate_shard_numpy(postings, stride, bincount_safe)
        return keys, sums, ops
    return _accumulate_shard_python(postings, stride), None, ops


def _shard_postings(
    work: list[list[tuple[int, int]]], shards: int
) -> list[list[list[tuple[int, int]]]]:
    """Greedy balance by pairwise cost (len²) into ``shards`` buckets."""
    buckets: list[list[list[tuple[int, int]]]] = [[] for _ in range(shards)]
    loads = [0] * shards
    for plist in sorted(work, key=len, reverse=True):
        target = loads.index(min(loads))
        buckets[target].append(plist)
        loads[target] += len(plist) * (len(plist) - 1) // 2
    return [bucket for bucket in buckets if bucket]


def accumulator_similarity_join(
    vectors: dict[str, SparseVector],
    config: SimilarityConfig | None = None,
    *,
    workers: int = 1,
    force_workers: bool = False,
    backend: str | None = None,
) -> JoinResult:
    """The one-pass similarity join; byte-identical to the seed scan.

    ``workers=1`` (the default) runs strictly serially — no pool is ever
    created, and the reported worker count is 1.  ``workers > 1`` shards
    the postings across a process pool clamped to the machine's usable
    cores, and only when the join is big enough (``_MIN_POOL_OPS``
    multiply-accumulates) to amortise the fork + pickle cost — small
    joins stay serial no matter how many workers are requested.
    ``force_workers=True`` lifts both the core clamp and the work gate,
    for exercising the sharded merge deterministically.  ``backend``
    forces ``"numpy"`` or ``"python"``; by default numpy is used when it
    is importable *and* a magnitude bound proves its accumulation exact.
    """
    config = config or SimilarityConfig()
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if backend not in (None, "numpy", "python"):
        raise ValueError(f"unknown backend {backend!r}")

    # -- intern: dense ids in sorted-label order, norms read once ---------
    labels = sorted(vectors)
    stride = len(labels)
    norms = [vectors[label].norm for label in labels]

    # -- one pass over the vectors builds the inverted index --------------
    postings: dict[str, list[tuple[int, int]]] = {}
    max_component = 0
    max_length = 0
    for qid, label in enumerate(labels):
        components = vectors[label].components
        if len(components) > max_length:
            max_length = len(components)
        for url, clicks in components.items():
            postings.setdefault(url, []).append((qid, clicks))
            if clicks > max_component:
                max_component = clicks

    # -- split hubs from candidate-generating lists -----------------------
    hub_components: list[dict[str, int] | None] = [None] * stride
    work: list[list[tuple[int, int]]] = []
    hub_urls = 0
    for url, plist in postings.items():
        if len(plist) > config.max_posting_list:
            hub_urls += 1
            for qid, clicks in plist:
                bucket = hub_components[qid]
                if bucket is None:
                    bucket = hub_components[qid] = {}
                bucket[url] = clicks
        elif len(plist) >= 2:
            work.append(plist)

    # -- pick a backend the magnitude bound proves exact ------------------
    dot_bound = max_component * max_component * max(max_length, 1)
    bincount_safe = dot_bound < _FLOAT64_EXACT
    if backend is None:
        backend = (
            "numpy" if _np is not None and dot_bound < _INT64_EXACT else "python"
        )
    elif backend == "numpy" and _np is None:
        raise ValueError("numpy backend requested but numpy is unavailable")

    # -- accumulate (serial, or sharded across an honest pool) ------------
    requested = min(workers, len(work)) if work else 1
    if force_workers:
        effective = requested
    else:
        effective = min(requested, _cpu_budget())
        total_ops = sum(len(p) * (len(p) - 1) // 2 for p in work)
        if total_ops < _MIN_POOL_OPS:
            effective = 1  # too small to amortise fork + pickle
    shards = [work] if work else []
    pool_used = 1
    results = None
    if effective > 1:
        shards = _shard_postings(work, effective)
        results, pool_used = _run_pool(backend, shards, stride, bincount_safe)
    if results is None:  # serial (or the pool could not be created)
        pool_used = 1
        shards = [work] if work else []
        results = [
            _pool_worker((backend, shard, stride, bincount_safe))
            for shard in shards
        ]

    ops = sum(result[2] for result in results)

    # -- merge shard accumulators (integer-exact, order-free) -------------
    edges: dict[tuple[str, str], float] = {}
    if backend == "numpy":
        candidate_pairs = _finalize_numpy(
            results, stride, labels, norms, hub_components, config, edges
        )
    else:
        candidate_pairs = _finalize_python(
            results, stride, labels, norms, hub_components, config, edges
        )

    stats = JoinStats(
        queries=stride,
        urls=len(postings),
        hub_urls=hub_urls,
        accumulate_ops=ops,
        candidate_pairs=candidate_pairs,
        edges=len(edges),
        workers=pool_used,
        shards=max(len(shards), 1),
        backend=backend,
    )
    return JoinResult(edges=edges, stats=stats)


def accumulate_similarity_edges(
    vectors: dict[str, SparseVector],
    config: SimilarityConfig | None = None,
    *,
    workers: int = 1,
    force_workers: bool = False,
    backend: str | None = None,
) -> dict[tuple[str, str], float]:
    """Drop-in replacement for :func:`similarity_edges` (edges only)."""
    return accumulator_similarity_join(
        vectors,
        config,
        workers=workers,
        force_workers=force_workers,
        backend=backend,
    ).edges


def _index_adjacency(
    edges: dict[tuple[str, str], float],
) -> dict[str, set[str]]:
    """Vertex → edge-partner index over an edge dict."""
    adjacency: dict[str, set[str]] = {}
    for left, right in edges:
        adjacency.setdefault(left, set()).add(right)
        adjacency.setdefault(right, set()).add(left)
    return adjacency


@dataclass(frozen=True)
class EdgeDelta:
    """What one :meth:`JoinState.apply_delta` changed in the edge dict.

    ``added``/``changed`` carry the new weights; ``removed`` lists pairs
    whose edge vanished (candidacy lost to a hub flip, or cosine diluted
    below the floor by a grown norm).  ``touched_queries`` is the set of
    queries whose vectors changed (the delta's dirty rows); downstream
    graph/cluster layers derive their own touched-vertex sets from the
    pairs, which also covers clean vertices that lost an edge.
    """

    added: dict[tuple[str, str], float]
    changed: dict[tuple[str, str], float]
    removed: frozenset[tuple[str, str]]
    touched_queries: frozenset[str]
    new_queries: frozenset[str]
    #: URLs whose posting list crossed ``max_posting_list`` this delta
    hub_flips: int
    #: pairs whose cosine was recomputed (the delta's actual work)
    recomputed_pairs: int
    #: "local" repaired dirty rows in place; "rejoin" re-ran the batch
    #: join (dirty fraction too high for local repair to win)
    join_mode: str = "local"

    @property
    def is_empty(self) -> bool:
        return not (self.added or self.changed or self.removed)

    def pairs(self) -> set[tuple[str, str]]:
        """Every pair this delta added, reweighted, or removed."""
        return set(self.added) | set(self.changed) | set(self.removed)


class JoinState:
    """Resumable accumulator state: the similarity join as a maintained view.

    The batch join (:func:`accumulator_similarity_join`) recomputes every
    partial dot product from scratch.  A weekly production pipeline does
    not: new impressions only ever *add* clicks, so a delta batch can
    only (a) grow existing vectors, (b) introduce newly-supported
    vectors, and (c) push posting lists over the hub threshold.  This
    class keeps the join's working set alive — vectors, URL posting
    membership, the current edge dict, and an adjacency index — and
    :meth:`apply_delta` repairs exactly the affected pairs:

    * every pair with a **dirty endpoint** is re-scored from the full
      integer dot product (same arithmetic as the batch finalisation, so
      the weight is bit-identical to a scratch join on the union);
    * a **clean-clean** pair can only change by losing candidacy when
      the sole non-hub URL it shared flips to a hub — those edges are
      found through the adjacency index and removed;
    * every other pair is untouched *by construction* (its vectors,
      norms, and shared-URL candidacy are unchanged).

    The invariant — property-tested — is that :attr:`edges` equals the
    batch join run on the union vectors, byte for byte.  The monotone
    append-only contract (components only gain URLs / grow clicks) is
    what makes the repair local; :meth:`apply_delta` enforces it.
    """

    def __init__(
        self,
        vectors: dict[str, SparseVector],
        edges: dict[tuple[str, str], float],
        config: SimilarityConfig | None = None,
        *,
        rejoin_threshold: float = 0.2,
    ) -> None:
        if not 0.0 <= rejoin_threshold <= 1.0:
            raise ValueError(
                f"rejoin_threshold must be in [0,1], got {rejoin_threshold}"
            )
        self.config = config or SimilarityConfig()
        #: dirty fraction beyond which one batch rejoin beats local repair
        self.rejoin_threshold = rejoin_threshold
        self._vectors: dict[str, SparseVector] = dict(vectors)
        self._edges: dict[tuple[str, str], float] = dict(edges)
        #: url → {query: clicks} — the inverted index *with* components,
        #: so the local repair accumulates without per-pair vector lookups
        self._postings: dict[str, dict[str, int]] = {}
        for query, vector in self._vectors.items():
            for url, clicks in vector.components.items():
                self._postings.setdefault(url, {})[query] = clicks
        self._adjacency = _index_adjacency(self._edges)

    @classmethod
    def build(
        cls,
        vectors: dict[str, SparseVector],
        config: SimilarityConfig | None = None,
        *,
        workers: int = 1,
        backend: str | None = None,
    ) -> "JoinState":
        """Run the batch join once and wrap its result as resumable state."""
        result = accumulator_similarity_join(
            vectors, config, workers=workers, backend=backend
        )
        return cls(vectors, result.edges, config)

    # -- read side ---------------------------------------------------------

    @property
    def edges(self) -> dict[tuple[str, str], float]:
        """The live edge dict (treat as read-only; copy before mutating)."""
        return self._edges

    @property
    def query_count(self) -> int:
        return len(self._vectors)

    @property
    def queries(self) -> set[str]:
        """Labels of every vector in the join (the graph's vertex set)."""
        return set(self._vectors)

    def vector(self, query: str) -> SparseVector | None:
        return self._vectors.get(query)

    def neighbours(self, query: str) -> set[str]:
        return set(self._adjacency.get(query, ()))

    # -- the incremental path ----------------------------------------------

    def apply_delta(self, updated: dict[str, SparseVector]) -> EdgeDelta:
        """Fold grown/new vectors in; returns exactly what changed.

        ``updated`` maps each query whose click vector changed (or that
        newly crossed the support threshold) to its **full new vector**.
        Unchanged entries are skipped, so callers may over-approximate.
        """
        maxpl = self.config.max_posting_list
        dirty: dict[str, SparseVector] = {}
        for query, vector in updated.items():
            old = self._vectors.get(query)
            if old is not None and old.components == vector.components:
                continue
            if old is not None:
                for url, clicks in old.components.items():
                    if vector.components.get(url, 0) < clicks:
                        raise ValueError(
                            f"vector for {query!r} shrank on {url!r}: the log "
                            "is append-only, so click vectors may only grow"
                        )
            dirty[query] = vector
        if not dirty:
            return EdgeDelta(
                added={},
                changed={},
                removed=frozenset(),
                touched_queries=frozenset(),
                new_queries=frozenset(),
                hub_flips=0,
                recomputed_pairs=0,
            )

        new_queries = frozenset(q for q in dirty if q not in self._vectors)

        # -- postings: refresh dirty rows' memberships, catch hub flips ----
        flipped: list[str] = []
        for query, vector in dirty.items():
            for url, clicks in vector.components.items():
                members = self._postings.setdefault(url, {})
                fresh = query not in members
                members[query] = clicks
                if fresh and len(members) == maxpl + 1:
                    flipped.append(url)
        self._vectors.update(dirty)

        # -- repair: local accumulation, or a batch rejoin when the dirty
        #    fraction is high enough that the (numpy-capable) batch join
        #    is cheaper than dict-at-a-time repair ----------------------------
        if len(dirty) > self.rejoin_threshold * max(len(self._vectors), 1):
            added, changed, removed, recomputed = self._rejoin()
            join_mode = "rejoin"
        else:
            added, changed, removed, recomputed = self._repair_local(
                dirty, flipped
            )
            join_mode = "local"

        return EdgeDelta(
            added=added,
            changed=changed,
            removed=frozenset(removed),
            touched_queries=frozenset(dirty),
            new_queries=new_queries,
            hub_flips=len(flipped),
            recomputed_pairs=recomputed,
            join_mode=join_mode,
        )

    def _repair_local(
        self,
        dirty: dict[str, SparseVector],
        flipped: list[str],
    ) -> tuple[
        dict[tuple[str, str], float],
        dict[tuple[str, str], float],
        set[tuple[str, str]],
        int,
    ]:
        """Re-score exactly the pairs a small dirty set can have changed."""
        maxpl = self.config.max_posting_list
        floor = self.config.min_similarity
        postings = self._postings
        vectors = self._vectors

        # -- phase A: accumulate every dirty row document-at-a-time --------
        desired: dict[tuple[str, str], float] = {}
        scored: set[tuple[str, str]] = set()
        recomputed = 0
        for query, vector in dirty.items():
            acc: dict[str, int] = {}
            get = acc.get
            hub_components: list[tuple[str, int]] = []
            for url, clicks in vector.components.items():
                members = postings[url]
                if len(members) > maxpl:
                    # hubs never generate candidates; folded in below
                    hub_components.append((url, clicks))
                    continue
                for partner, partner_clicks in members.items():
                    if partner != query:
                        acc[partner] = get(partner, 0) + clicks * partner_clicks
            norm = vector.norm
            for partner, dot in acc.items():
                pair = (
                    (query, partner) if query < partner else (partner, query)
                )
                if pair in scored:
                    continue  # the other dirty endpoint already scored it
                scored.add(pair)
                recomputed += 1
                for url, clicks in hub_components:
                    partner_clicks = postings[url].get(partner)
                    if partner_clicks is not None:
                        dot += clicks * partner_clicks
                # same association as the batch finalisation (and the seed
                # cosine): float(int dot) / (norm * norm)
                weight = float(dot) / (norm * vectors[partner].norm)
                if weight >= floor:
                    desired[pair] = weight

        # -- phase B: reconcile dirty-touching pairs against the state -----
        added: dict[tuple[str, str], float] = {}
        changed: dict[tuple[str, str], float] = {}
        removed: set[tuple[str, str]] = set()
        stale: set[tuple[str, str]] = set()
        for query in dirty:
            for partner in self._adjacency.get(query, ()):
                pair = (
                    (query, partner) if query < partner else (partner, query)
                )
                if pair not in desired:
                    stale.add(pair)
        for pair in stale:
            removed.add(pair)
            self._drop_edge(pair)
        for pair, weight in desired.items():
            current = self._edges.get(pair)
            if current is None:
                added[pair] = weight
                self._put_edge(pair)
            elif current != weight:
                changed[pair] = weight
            self._edges[pair] = weight

        # -- phase C: clean-clean edges orphaned by a hub flip -------------
        for url in flipped:
            members = self._postings[url]
            for left in members:
                if left in dirty:
                    continue
                partners = self._adjacency.get(left)
                if not partners:
                    continue
                for right in list(partners.intersection(members)):
                    if right in dirty or left > right:
                        continue
                    if not self._still_candidates(left, right):
                        pair = (left, right)
                        removed.add(pair)
                        self._drop_edge(pair)

        return added, changed, removed, recomputed

    def _rejoin(
        self,
    ) -> tuple[
        dict[tuple[str, str], float],
        dict[tuple[str, str], float],
        set[tuple[str, str]],
        int,
    ]:
        """One batch join over the maintained vectors, diffed in place.

        Equivalence with the batch join is trivially guaranteed here —
        this *is* the batch join; the delta is recovered by diffing the
        old and new edge dicts (both small next to the join itself).
        """
        result = accumulator_similarity_join(self._vectors, self.config)
        new_edges = result.edges
        old_edges = self._edges
        added: dict[tuple[str, str], float] = {}
        changed: dict[tuple[str, str], float] = {}
        for pair, weight in new_edges.items():
            current = old_edges.get(pair)
            if current is None:
                added[pair] = weight
            elif current != weight:
                changed[pair] = weight
        removed = {pair for pair in old_edges if pair not in new_edges}
        self._edges = new_edges
        self._adjacency = _index_adjacency(new_edges)
        return added, changed, removed, result.stats.candidate_pairs

    # -- internals ---------------------------------------------------------

    def _still_candidates(self, left: str, right: str) -> bool:
        """Do two queries still share at least one non-hub URL?"""
        maxpl = self.config.max_posting_list
        small = self._vectors[left].components
        large = self._vectors[right].components
        if len(small) > len(large):
            small, large = large, small
        return any(
            url in large and len(self._postings[url]) <= maxpl
            for url in small
        )

    def _put_edge(self, pair: tuple[str, str]) -> None:
        left, right = pair
        self._adjacency.setdefault(left, set()).add(right)
        self._adjacency.setdefault(right, set()).add(left)

    def _drop_edge(self, pair: tuple[str, str]) -> None:
        self._edges.pop(pair, None)
        left, right = pair
        partners = self._adjacency.get(left)
        if partners is not None:
            partners.discard(right)
        partners = self._adjacency.get(right)
        if partners is not None:
            partners.discard(left)


def _run_pool(backend: str, shards, stride: int, bincount_safe: bool):
    """Run shards on a process pool; fall back to serial on any failure.

    The pool never uses the ``fork`` start method: this join is reachable
    from inside the live multithreaded :class:`ExpertService` (via
    ``refresh_domains``), and forking a multithreaded process can
    snapshot a child mid-lock and deadlock it.  ``forkserver`` (or
    ``spawn`` where unavailable) sidesteps that entirely.
    """
    import multiprocessing
    from concurrent.futures import BrokenExecutor, ProcessPoolExecutor

    method = (
        "forkserver"
        if "forkserver" in multiprocessing.get_all_start_methods()
        else "spawn"
    )
    try:
        with ProcessPoolExecutor(
            max_workers=len(shards),
            mp_context=multiprocessing.get_context(method),
        ) as pool:
            results = list(
                pool.map(
                    _pool_worker,
                    [
                        (backend, shard, stride, bincount_safe)
                        for shard in shards
                    ],
                )
            )
        return results, len(shards)
    except (OSError, BrokenExecutor):
        # sandboxed hosts that cannot fork, or a worker killed mid-map
        # (e.g. OOM): the join must still complete, just serially
        return None, 1


def _hub_dot(left: dict[str, int], right: dict[str, int]) -> int:
    if len(left) > len(right):
        left, right = right, left
    return sum(
        clicks * right[url] for url, clicks in left.items() if url in right
    )


def _finalize_python(
    results, stride, labels, norms, hub_components, config, edges
) -> int:
    """Merge int dict shards, fold hubs in, threshold.  Returns pair count."""
    merged: dict[int, int] = {}
    for acc, _keys, _ops in results:
        if not merged:
            merged = dict(acc)
            continue
        get = merged.get
        for key, value in acc.items():
            merged[key] = get(key, 0) + value
    floor = config.min_similarity
    for key in sorted(merged):
        left, right = divmod(key, stride)
        dot = merged[key]
        left_hubs = hub_components[left]
        right_hubs = hub_components[right]
        if left_hubs and right_hubs:
            dot += _hub_dot(left_hubs, right_hubs)
        # same association as the seed cosine: float(dot) / (n_l * n_r)
        weight = float(dot) / (norms[left] * norms[right])
        if weight >= floor:
            edges[(labels[left], labels[right])] = weight
    return len(merged)


def _finalize_numpy(
    results, stride, labels, norms, hub_components, config, edges
) -> int:
    """Merge (keys, sums) shards with one more exact reduce, then score."""
    # results rows are (keys, sums, ops) on the numpy backend
    key_parts = [r[0] for r in results if len(r[0])]
    sum_parts = [r[1] for r in results if len(r[0])]
    if not key_parts:
        return 0
    keys = _np.concatenate(key_parts)
    sums = _np.concatenate(sum_parts)
    if len(key_parts) > 1:
        # partial sums are each bounded by the true dot, so the merge
        # stays exact under the same bincount bound
        keys, sums = _reduce_int64(keys, sums)
    # shard-local reduces already sorted each part; a single part is final
    lefts = keys // stride
    rights = keys - lefts * stride
    dots = sums
    has_hubs = _np.fromiter(
        (bucket is not None for bucket in hub_components),
        dtype=bool,
        count=stride,
    )
    if has_hubs.any():
        both = _np.nonzero(has_hubs[lefts] & has_hubs[rights])[0]
        if len(both):
            dots = dots.copy()
            for at in both.tolist():
                dots[at] += _hub_dot(
                    hub_components[int(lefts[at])],
                    hub_components[int(rights[at])],
                )
    norm_arr = _np.asarray(norms, dtype=_np.float64)
    weights = dots / (norm_arr[lefts] * norm_arr[rights])
    keep = _np.nonzero(weights >= config.min_similarity)[0]
    left_kept = lefts[keep].tolist()
    right_kept = rights[keep].tolist()
    weight_kept = weights[keep].tolist()
    for left, right, weight in zip(left_kept, right_kept, weight_kept):
        edges[(labels[left], labels[right])] = weight
    return len(keys)

"""All-pairs cosine similarity over click vectors — the reference scan.

A naive all-pairs pass is quadratic in the vocabulary.  Following standard
IR practice (and the only way the paper's 60-million-edge graph could have
been built at all), candidate pairs are enumerated through an inverted
index URL → queries, so only queries sharing at least one clicked URL are
ever compared.  Ubiquitous URLs (global portals clicked for everything)
would re-inflate the candidate set quadratically, so posting lists longer
than ``max_posting_list`` are skipped for *candidate generation* — the full
vectors, hubs included, are still used to compute the cosine itself.

This module is kept as the executable specification of the join: it
enumerates candidates (with a ``seen`` set) and then scores each pair
with a separate cosine.  The pipeline itself runs the one-pass
accumulator join in :mod:`repro.simgraph.accumulate`, which produces a
byte-identical edge dict (property-tested) an order of magnitude faster;
the BENCH_offline trajectory tracks the two against each other.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.simgraph.vectors import SparseVector


@dataclass(frozen=True)
class SimilarityConfig:
    """Knobs of the similarity join."""

    #: drop edges with cosine below this (noise floor; keeps the graph sparse)
    min_similarity: float = 0.08
    #: posting lists longer than this do not generate candidate pairs
    max_posting_list: int = 1000

    def __post_init__(self) -> None:
        if not 0.0 <= self.min_similarity <= 1.0:
            raise ValueError(
                f"min_similarity must be in [0,1], got {self.min_similarity}"
            )
        if self.max_posting_list < 2:
            raise ValueError("max_posting_list must be at least 2")


def cosine(left: SparseVector, right: SparseVector) -> float:
    """Cosine similarity; 0.0 when either vector is empty."""
    if not left or not right:
        return 0.0
    return left.dot(right) / (left.norm * right.norm)


def _inverted_index(vectors: dict[str, SparseVector]) -> dict[str, list[str]]:
    index: dict[str, list[str]] = {}
    for query, vector in vectors.items():
        for url in vector.components:
            index.setdefault(url, []).append(query)
    return index


def candidate_pairs(
    vectors: dict[str, SparseVector], config: SimilarityConfig
) -> Iterator[tuple[str, str]]:
    """Yield each unordered candidate pair exactly once (u < v)."""
    index = _inverted_index(vectors)
    seen: set[tuple[str, str]] = set()
    for url, postings in index.items():
        if len(postings) > config.max_posting_list:
            continue
        postings = sorted(postings)
        for i, left in enumerate(postings):
            for right in postings[i + 1 :]:
                pair = (left, right)
                if pair not in seen:
                    seen.add(pair)
                    yield pair


def similarity_edges(
    vectors: dict[str, SparseVector], config: SimilarityConfig | None = None
) -> dict[tuple[str, str], float]:
    """Compute all cosine edges at or above the similarity floor.

    Returns a dict keyed by the sorted query pair.  This is exactly the
    ``Graph(query1, query2, distance)`` relation of Figure 4 (the paper
    calls the similarity a "distance"; it is a similarity — larger means
    closer — and we keep the paper's column name only in the SQL layer).
    """
    config = config or SimilarityConfig()
    edges: dict[tuple[str, str], float] = {}
    for left, right in candidate_pairs(vectors, config):
        weight = cosine(vectors[left], vectors[right])
        if weight >= config.min_similarity:
            edges[(left, right)] = weight
    return edges

"""S3 — Term-similarity-graph extraction (§4.1, Figure 2).

Converts a query log into a weighted, undirected *term similarity graph*:
each vertex is a query, each edge weight the cosine similarity of the two
queries' URL-click vectors.  Also implements the paper's footnote 1: the
weighted graph is rescaled and discretised into integer edge multiplicities
so the modularity arithmetic of §4.2.1 can treat it as a multigraph.
"""

from repro.simgraph.vectors import SparseVector, build_click_vectors
from repro.simgraph.similarity import SimilarityConfig, cosine, similarity_edges
from repro.simgraph.graph import MultiGraph, WeightedGraph, discretize
from repro.simgraph.extract import ExtractionResult, extract_similarity_graph

__all__ = [
    "ExtractionResult",
    "MultiGraph",
    "SimilarityConfig",
    "SparseVector",
    "WeightedGraph",
    "build_click_vectors",
    "cosine",
    "discretize",
    "extract_similarity_graph",
    "similarity_edges",
]

"""S3 — Term-similarity-graph extraction (§4.1, Figure 2).

Converts a query log into a weighted, undirected *term similarity graph*:
each vertex is a query, each edge weight the cosine similarity of the two
queries' URL-click vectors.  Also implements the paper's footnote 1: the
weighted graph is rescaled and discretised into integer edge multiplicities
so the modularity arithmetic of §4.2.1 can treat it as a multigraph.

Two joins compute the same edge set: :func:`similarity_edges` is the
naive two-pass scan kept as the executable reference, and
:func:`accumulate_similarity_edges` is the one-pass accumulator join the
pipeline actually runs (byte-identical output, an order of magnitude
faster, optionally sharded across a process pool).
"""

from repro.simgraph.vectors import SparseVector, build_click_vectors
from repro.simgraph.similarity import SimilarityConfig, cosine, similarity_edges
from repro.simgraph.accumulate import (
    JoinResult,
    JoinStats,
    accumulate_similarity_edges,
    accumulator_similarity_join,
)
from repro.simgraph.graph import (
    InternedGraph,
    MultiGraph,
    WeightedGraph,
    discretize,
)
from repro.simgraph.extract import ExtractionResult, extract_similarity_graph

__all__ = [
    "ExtractionResult",
    "InternedGraph",
    "JoinResult",
    "JoinStats",
    "MultiGraph",
    "SimilarityConfig",
    "SparseVector",
    "WeightedGraph",
    "accumulate_similarity_edges",
    "accumulator_similarity_join",
    "build_click_vectors",
    "cosine",
    "discretize",
    "extract_similarity_graph",
    "similarity_edges",
]

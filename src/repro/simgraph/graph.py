"""Graph containers: the weighted similarity graph and its multigraph form.

§4.2.1's modularity arithmetic is defined on an unweighted graph in which
more than one edge may connect two vertices.  Footnote 1 explains how the
weighted similarity graph becomes one: *"we rescale and discretize the
weights to obtain integers. Then, we create one edge for each unit."*
:class:`MultiGraph` stores those integer multiplicities explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Iterable, Iterator, Mapping


#: footnote-1 weight→multiplicity scale used by every graph builder in
#: the pipeline (batch extraction and incremental refresh must agree, or
#: their multigraphs — and everything clustered from them — diverge)
DEFAULT_DISCRETIZE_SCALE = 20.0


def _ordered(u: str, v: str) -> tuple[str, str]:
    return (u, v) if u <= v else (v, u)


@dataclass(frozen=True)
class InternedGraph:
    """A dense integer-id view of a :class:`MultiGraph`.

    Vertex ids are assigned in sorted-label order, so comparing two ids
    orders exactly like comparing the underlying labels — the community
    detectors' smaller-name tie-breaks survive the translation untouched.
    Built once per graph generation (invalidated on mutation) and shared
    by every int-keyed inner loop; labels reappear only at the
    :class:`~repro.community.partition.Partition` boundary.
    """

    #: id → label, in sorted label order
    labels: tuple[str, ...]
    #: label → id
    index: Mapping[str, int]
    #: id → {neighbour id: multiplicity}; one dict per vertex, never copied
    adjacency: tuple[Mapping[int, int], ...]
    #: id → vertex degree (unit edges)
    degrees: tuple[int, ...]
    #: m_G
    total_edges: int

    @property
    def vertex_count(self) -> int:
        return len(self.labels)


@dataclass
class WeightedGraph:
    """Undirected graph with float edge weights and string vertices."""

    _adjacency: dict[str, dict[str, float]] = field(default_factory=dict)

    @classmethod
    def from_edges(
        cls, edges: dict[tuple[str, str], float] | Iterable[tuple[str, str, float]]
    ) -> "WeightedGraph":
        graph = cls()
        if isinstance(edges, dict):
            items: Iterable[tuple[str, str, float]] = (
                (u, v, w) for (u, v), w in edges.items()
            )
        else:
            items = edges
        for u, v, weight in items:
            graph.add_edge(u, v, weight)
        return graph

    _sorted_vertices: tuple[str, ...] | None = field(
        default=None, repr=False, compare=False
    )

    @classmethod
    def restore_sorted(
        cls,
        vertices: Iterable[str],
        edges: Iterable[tuple[str, str, float]],
    ) -> "WeightedGraph":
        """Bulk-restore from the artifact's sorted columnar form.

        ``vertices`` must cover every endpoint and ``edges`` must yield
        each undirected edge exactly once as ``(u, v, weight)`` with
        ``u < v`` — the shape :meth:`edges` produces.  Builds the
        adjacency dicts directly instead of going through
        :meth:`add_edge` per edge (the artifact loader's hot path).
        """
        graph = cls()
        adjacency = graph._adjacency
        for vertex in vertices:
            adjacency[vertex] = {}
        for u, v, weight in edges:
            if not u < v:
                raise ValueError(f"edges must be ordered, got {u!r}, {v!r}")
            if not weight > 0:
                raise ValueError(f"edge weight must be positive, got {weight}")
            adjacency[u][v] = weight
            adjacency[v][u] = weight
        return graph

    def add_vertex(self, vertex: str) -> None:
        if vertex not in self._adjacency:
            self._adjacency[vertex] = {}
            self._sorted_vertices = None

    def add_edge(self, u: str, v: str, weight: float) -> None:
        if u == v:
            raise ValueError(f"self-loop on {u!r} is not allowed")
        if weight <= 0:
            raise ValueError(f"edge weight must be positive, got {weight}")
        if u not in self._adjacency or v not in self._adjacency:
            self._sorted_vertices = None
        self._adjacency.setdefault(u, {})[v] = weight
        self._adjacency.setdefault(v, {})[u] = weight

    # -- accessors -----------------------------------------------------------

    def vertices(self) -> list[str]:
        return list(self.sorted_vertices())

    def sorted_vertices(self) -> tuple[str, ...]:
        """Sorted vertices, cached between mutations (zero-copy reads)."""
        if self._sorted_vertices is None:
            self._sorted_vertices = tuple(sorted(self._adjacency))
        return self._sorted_vertices

    def neighbours(self, vertex: str) -> dict[str, float]:
        return dict(self.neighbour_view(vertex))

    def neighbour_view(self, vertex: str) -> Mapping[str, float]:
        """Read-only, zero-copy view of ``vertex``'s adjacency.

        Callers reading adjacency in bulk should prefer this over
        :meth:`neighbours`, which copies the dict per call; the view
        tracks later mutations instead of snapshotting.
        """
        try:
            return MappingProxyType(self._adjacency[vertex])
        except KeyError:
            raise KeyError(f"unknown vertex {vertex!r}") from None

    def has_vertex(self, vertex: str) -> bool:
        return vertex in self._adjacency

    def weight(self, u: str, v: str) -> float:
        """Edge weight, or 0.0 when absent."""
        return self._adjacency.get(u, {}).get(v, 0.0)

    def edges(self) -> Iterator[tuple[str, str, float]]:
        """Each undirected edge exactly once, in sorted order."""
        for u in self.sorted_vertices():
            for v in sorted(self._adjacency[u]):
                if u < v:
                    yield u, v, self._adjacency[u][v]

    @property
    def vertex_count(self) -> int:
        return len(self._adjacency)

    @property
    def edge_count(self) -> int:
        return sum(len(nbrs) for nbrs in self._adjacency.values()) // 2

    def __repr__(self) -> str:
        return f"WeightedGraph(vertices={self.vertex_count}, edges={self.edge_count})"


@dataclass
class MultiGraph:
    """Undirected multigraph with integer edge multiplicities.

    Tracks the quantities modularity needs in O(1): the total number of
    (multi-)edges ``m_G``, and per-vertex degrees (each unit edge
    contributes 1 to both endpoints' degrees).
    """

    _multiplicity: dict[tuple[str, str], int] = field(default_factory=dict)
    _degree: dict[str, int] = field(default_factory=dict)
    _total_edges: int = 0

    @classmethod
    def from_edges(cls, edges: Iterable[tuple[str, str, int]]) -> "MultiGraph":
        graph = cls()
        for u, v, multiplicity in edges:
            graph.add_edge(u, v, multiplicity)
        return graph

    @classmethod
    def restore_sorted(
        cls,
        vertices: Iterable[str],
        edges: Iterable[tuple[str, str, int]],
    ) -> "MultiGraph":
        """Bulk-restore from the artifact's sorted columnar form.

        ``vertices`` must cover every endpoint and ``edges`` must yield
        each distinct edge exactly once as ``(u, v, multiplicity)`` with
        ``u < v`` — the shape :meth:`sorted_edges` produces.  Fills the
        multiplicity/degree dicts directly instead of paying
        :meth:`add_edge`'s cache invalidation per edge.
        """
        graph = cls()
        degree = graph._degree
        for vertex in vertices:
            degree[vertex] = 0
        multiplicity_map = graph._multiplicity
        total = 0
        for u, v, multiplicity in edges:
            if not u < v:
                raise ValueError(f"edges must be ordered, got {u!r}, {v!r}")
            if multiplicity <= 0:
                raise ValueError(
                    f"multiplicity must be positive, got {multiplicity}"
                )
            key = (u, v)
            multiplicity_map[key] = multiplicity_map.get(key, 0) + multiplicity
            degree[u] += multiplicity
            degree[v] += multiplicity
            total += multiplicity
        graph._total_edges = total
        return graph

    def add_vertex(self, vertex: str) -> None:
        if vertex not in self._degree:
            self._degree[vertex] = 0
            self._invalidate()

    def add_edge(self, u: str, v: str, multiplicity: int = 1) -> None:
        if u == v:
            raise ValueError(f"self-loop on {u!r} is not allowed")
        if multiplicity <= 0:
            raise ValueError(f"multiplicity must be positive, got {multiplicity}")
        key = _ordered(u, v)
        self._multiplicity[key] = self._multiplicity.get(key, 0) + multiplicity
        self._degree[u] = self._degree.get(u, 0) + multiplicity
        self._degree[v] = self._degree.get(v, 0) + multiplicity
        self._total_edges += multiplicity
        self._invalidate()

    def _invalidate(self) -> None:
        """Drop every derived cache after a mutation."""
        self._adjacency = None
        self._sorted_vertices = None
        self._sorted_edges = None
        self._interned = None

    # -- accessors -----------------------------------------------------------

    def vertices(self) -> list[str]:
        return list(self.sorted_vertices())

    def sorted_vertices(self) -> tuple[str, ...]:
        """Sorted vertices, cached between mutations (zero-copy reads)."""
        if self._sorted_vertices is None:
            self._sorted_vertices = tuple(sorted(self._degree))
        return self._sorted_vertices

    def degree(self, vertex: str) -> int:
        try:
            return self._degree[vertex]
        except KeyError:
            raise KeyError(f"unknown vertex {vertex!r}") from None

    def multiplicity(self, u: str, v: str) -> int:
        return self._multiplicity.get(_ordered(u, v), 0)

    def edges(self) -> Iterator[tuple[str, str, int]]:
        yield from self.sorted_edges()

    def sorted_edges(self) -> tuple[tuple[str, str, int], ...]:
        """Every distinct edge in sorted order, cached between mutations."""
        if self._sorted_edges is None:
            self._sorted_edges = tuple(
                (u, v, multiplicity)
                for (u, v), multiplicity in sorted(self._multiplicity.items())
            )
        return self._sorted_edges

    def neighbours(self, vertex: str) -> Iterator[tuple[str, int]]:
        """Adjacent vertices with multiplicities (linear scan-free).

        Built lazily the first time it is needed and invalidated on edge
        insertion; community detection queries this heavily.  The per-vertex
        item tuples are pre-sorted at cache build, so repeated sweeps
        (label propagation, Louvain) pay no per-call sort or copy.
        """
        adjacency = self._adjacency_cache()
        yield from adjacency.get(vertex, ())

    _adjacency: dict[str, tuple[tuple[str, int], ...]] | None = field(
        default=None, repr=False, compare=False
    )
    _sorted_vertices: tuple[str, ...] | None = field(
        default=None, repr=False, compare=False
    )
    _sorted_edges: tuple[tuple[str, str, int], ...] | None = field(
        default=None, repr=False, compare=False
    )
    _interned: InternedGraph | None = field(
        default=None, repr=False, compare=False
    )

    def _adjacency_cache(self) -> dict[str, tuple[tuple[str, int], ...]]:
        if self._adjacency is None:
            raw: dict[str, dict[str, int]] = {}
            for (u, v), multiplicity in self._multiplicity.items():
                raw.setdefault(u, {})[v] = multiplicity
                raw.setdefault(v, {})[u] = multiplicity
            self._adjacency = {
                vertex: tuple(sorted(neighbours.items()))
                for vertex, neighbours in raw.items()
            }
        return self._adjacency

    def interned(self) -> InternedGraph:
        """The dense integer-id view, built once per graph generation.

        Includes isolated vertices (degree 0), so a partition derived in
        id space always covers the graph.
        """
        if self._interned is None:
            labels = self.sorted_vertices()
            index = {label: i for i, label in enumerate(labels)}
            adjacency: list[dict[int, int]] = [{} for _ in labels]
            for (u, v), multiplicity in self._multiplicity.items():
                ui, vi = index[u], index[v]
                adjacency[ui][vi] = multiplicity
                adjacency[vi][ui] = multiplicity
            self._interned = InternedGraph(
                labels=labels,
                index=index,
                # read-only views: the interned graph is shared by every
                # detector run, so no caller may mutate the adjacency
                adjacency=tuple(
                    MappingProxyType(neighbours) for neighbours in adjacency
                ),
                degrees=tuple(self._degree[label] for label in labels),
                total_edges=self._total_edges,
            )
        return self._interned

    @property
    def total_edges(self) -> int:
        """m_G — the number of unit edges."""
        return self._total_edges

    @property
    def total_degree(self) -> int:
        """D_G = 2 m_G."""
        return 2 * self._total_edges

    @property
    def vertex_count(self) -> int:
        return len(self._degree)

    @property
    def distinct_edge_count(self) -> int:
        return len(self._multiplicity)

    def storage_bytes(self) -> int:
        """Approximate serialised size (one TSV row per distinct edge)."""
        return sum(
            len(u) + len(v) + 8 for (u, v) in self._multiplicity
        )

    def __repr__(self) -> str:
        return (
            f"MultiGraph(vertices={self.vertex_count}, "
            f"distinct_edges={self.distinct_edge_count}, m_G={self._total_edges})"
        )


def discretize(
    edges: dict[tuple[str, str], float],
    scale: float = DEFAULT_DISCRETIZE_SCALE,
    vertices: Iterable[str] | None = None,
) -> MultiGraph:
    """Footnote 1: rescale float weights and round to integer multiplicities.

    ``round(weight * scale)`` with a floor of 1 — an edge that survived the
    similarity threshold always contributes at least one unit edge.
    ``vertices`` may add isolated vertices (queries with no strong
    neighbour), which matter for the orphan statistics of Figure 6.
    """
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    graph = MultiGraph()
    for (u, v), weight in sorted(edges.items()):
        multiplicity = max(1, round(weight * scale))
        graph.add_edge(u, v, multiplicity)
    if vertices is not None:
        for vertex in vertices:
            graph.add_vertex(vertex)
    return graph

"""Graph containers: the weighted similarity graph and its multigraph form.

§4.2.1's modularity arithmetic is defined on an unweighted graph in which
more than one edge may connect two vertices.  Footnote 1 explains how the
weighted similarity graph becomes one: *"we rescale and discretize the
weights to obtain integers. Then, we create one edge for each unit."*
:class:`MultiGraph` stores those integer multiplicities explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator


def _ordered(u: str, v: str) -> tuple[str, str]:
    return (u, v) if u <= v else (v, u)


@dataclass
class WeightedGraph:
    """Undirected graph with float edge weights and string vertices."""

    _adjacency: dict[str, dict[str, float]] = field(default_factory=dict)

    @classmethod
    def from_edges(
        cls, edges: dict[tuple[str, str], float] | Iterable[tuple[str, str, float]]
    ) -> "WeightedGraph":
        graph = cls()
        if isinstance(edges, dict):
            items: Iterable[tuple[str, str, float]] = (
                (u, v, w) for (u, v), w in edges.items()
            )
        else:
            items = edges
        for u, v, weight in items:
            graph.add_edge(u, v, weight)
        return graph

    def add_vertex(self, vertex: str) -> None:
        self._adjacency.setdefault(vertex, {})

    def add_edge(self, u: str, v: str, weight: float) -> None:
        if u == v:
            raise ValueError(f"self-loop on {u!r} is not allowed")
        if weight <= 0:
            raise ValueError(f"edge weight must be positive, got {weight}")
        self._adjacency.setdefault(u, {})[v] = weight
        self._adjacency.setdefault(v, {})[u] = weight

    # -- accessors -----------------------------------------------------------

    def vertices(self) -> list[str]:
        return sorted(self._adjacency)

    def neighbours(self, vertex: str) -> dict[str, float]:
        try:
            return dict(self._adjacency[vertex])
        except KeyError:
            raise KeyError(f"unknown vertex {vertex!r}") from None

    def has_vertex(self, vertex: str) -> bool:
        return vertex in self._adjacency

    def weight(self, u: str, v: str) -> float:
        """Edge weight, or 0.0 when absent."""
        return self._adjacency.get(u, {}).get(v, 0.0)

    def edges(self) -> Iterator[tuple[str, str, float]]:
        """Each undirected edge exactly once, in sorted order."""
        for u in sorted(self._adjacency):
            for v in sorted(self._adjacency[u]):
                if u < v:
                    yield u, v, self._adjacency[u][v]

    @property
    def vertex_count(self) -> int:
        return len(self._adjacency)

    @property
    def edge_count(self) -> int:
        return sum(len(nbrs) for nbrs in self._adjacency.values()) // 2

    def __repr__(self) -> str:
        return f"WeightedGraph(vertices={self.vertex_count}, edges={self.edge_count})"


@dataclass
class MultiGraph:
    """Undirected multigraph with integer edge multiplicities.

    Tracks the quantities modularity needs in O(1): the total number of
    (multi-)edges ``m_G``, and per-vertex degrees (each unit edge
    contributes 1 to both endpoints' degrees).
    """

    _multiplicity: dict[tuple[str, str], int] = field(default_factory=dict)
    _degree: dict[str, int] = field(default_factory=dict)
    _total_edges: int = 0

    @classmethod
    def from_edges(cls, edges: Iterable[tuple[str, str, int]]) -> "MultiGraph":
        graph = cls()
        for u, v, multiplicity in edges:
            graph.add_edge(u, v, multiplicity)
        return graph

    def add_vertex(self, vertex: str) -> None:
        self._degree.setdefault(vertex, 0)

    def add_edge(self, u: str, v: str, multiplicity: int = 1) -> None:
        if u == v:
            raise ValueError(f"self-loop on {u!r} is not allowed")
        if multiplicity <= 0:
            raise ValueError(f"multiplicity must be positive, got {multiplicity}")
        key = _ordered(u, v)
        self._multiplicity[key] = self._multiplicity.get(key, 0) + multiplicity
        self._degree[u] = self._degree.get(u, 0) + multiplicity
        self._degree[v] = self._degree.get(v, 0) + multiplicity
        self._total_edges += multiplicity
        self._adjacency = None  # invalidate the neighbour cache

    # -- accessors -----------------------------------------------------------

    def vertices(self) -> list[str]:
        return sorted(self._degree)

    def degree(self, vertex: str) -> int:
        try:
            return self._degree[vertex]
        except KeyError:
            raise KeyError(f"unknown vertex {vertex!r}") from None

    def multiplicity(self, u: str, v: str) -> int:
        return self._multiplicity.get(_ordered(u, v), 0)

    def edges(self) -> Iterator[tuple[str, str, int]]:
        for (u, v), multiplicity in sorted(self._multiplicity.items()):
            yield u, v, multiplicity

    def neighbours(self, vertex: str) -> Iterator[tuple[str, int]]:
        """Adjacent vertices with multiplicities (linear scan-free).

        Built lazily the first time it is needed and invalidated on edge
        insertion; community detection queries this heavily.
        """
        adjacency = self._adjacency_cache()
        yield from sorted(adjacency.get(vertex, {}).items())

    _adjacency: dict[str, dict[str, int]] | None = None

    def _adjacency_cache(self) -> dict[str, dict[str, int]]:
        if self._adjacency is None:
            adjacency: dict[str, dict[str, int]] = {}
            for (u, v), multiplicity in self._multiplicity.items():
                adjacency.setdefault(u, {})[v] = multiplicity
                adjacency.setdefault(v, {})[u] = multiplicity
            self._adjacency = adjacency
        return self._adjacency

    @property
    def total_edges(self) -> int:
        """m_G — the number of unit edges."""
        return self._total_edges

    @property
    def total_degree(self) -> int:
        """D_G = 2 m_G."""
        return 2 * self._total_edges

    @property
    def vertex_count(self) -> int:
        return len(self._degree)

    @property
    def distinct_edge_count(self) -> int:
        return len(self._multiplicity)

    def storage_bytes(self) -> int:
        """Approximate serialised size (one TSV row per distinct edge)."""
        return sum(
            len(u) + len(v) + 8 for (u, v) in self._multiplicity
        )

    def __repr__(self) -> str:
        return (
            f"MultiGraph(vertices={self.vertex_count}, "
            f"distinct_edges={self.distinct_edge_count}, m_G={self._total_edges})"
        )


def discretize(
    edges: dict[tuple[str, str], float],
    scale: float = 20.0,
    vertices: Iterable[str] | None = None,
) -> MultiGraph:
    """Footnote 1: rescale float weights and round to integer multiplicities.

    ``round(weight * scale)`` with a floor of 1 — an edge that survived the
    similarity threshold always contributes at least one unit edge.
    ``vertices`` may add isolated vertices (queries with no strong
    neighbour), which matter for the orphan statistics of Figure 6.
    """
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    graph = MultiGraph()
    for (u, v), weight in sorted(edges.items()):
        multiplicity = max(1, round(weight * scale))
        graph.add_edge(u, v, multiplicity)
    if vertices is not None:
        for vertex in vertices:
            graph.add_vertex(vertex)
    return graph

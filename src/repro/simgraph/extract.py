"""End-to-end extraction: query-log store → discretised similarity graph.

This is the "Extraction" row of Table 9: it reads the (simulated) raw log,
builds click vectors, runs the cosine similarity join and emits the graph,
reporting byte volumes along the way.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.querylog.store import QueryLogStore
from repro.simgraph.graph import MultiGraph, WeightedGraph, discretize
from repro.simgraph.similarity import SimilarityConfig, similarity_edges
from repro.simgraph.vectors import build_click_vectors
from repro.utils.timing import StageReport


@dataclass
class ExtractionResult:
    """Everything the extraction stage produces."""

    weighted: WeightedGraph
    multigraph: MultiGraph
    report: StageReport

    @property
    def vertex_count(self) -> int:
        return self.multigraph.vertex_count


def extract_similarity_graph(
    store: QueryLogStore,
    config: SimilarityConfig | None = None,
    discretize_scale: float = 20.0,
    include_isolated: bool = True,
    workers: int = 1,
) -> ExtractionResult:
    """Run §4.1 end to end over ``store``.

    ``include_isolated`` keeps supported queries that end up with no edge —
    they become the orphan communities of Figure 6, exactly as queries with
    unique click profiles did in the paper.
    """
    config = config or SimilarityConfig()
    report = StageReport(name="extraction", workers=workers)
    report.bytes_read = store.raw_bytes

    vectors = build_click_vectors(store)
    edges = similarity_edges(vectors, config)
    weighted = WeightedGraph.from_edges(edges)
    isolated = set(vectors) - {v for pair in edges for v in pair}
    if include_isolated:
        for vertex in isolated:
            weighted.add_vertex(vertex)
    multigraph = discretize(
        edges,
        scale=discretize_scale,
        vertices=isolated if include_isolated else None,
    )
    report.bytes_written = multigraph.storage_bytes()
    return ExtractionResult(weighted=weighted, multigraph=multigraph, report=report)

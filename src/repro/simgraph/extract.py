"""End-to-end extraction: query-log store → discretised similarity graph.

This is the "Extraction" row of Table 9: it reads the (simulated) raw log,
builds click vectors, runs the one-pass accumulator similarity join
(:mod:`repro.simgraph.accumulate`) and emits the graph, reporting byte
volumes and the *actual* worker-pool width along the way — the report's
``workers`` field is whatever the join really used, never the requested
number.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.querylog.store import QueryLogStore
from repro.simgraph.accumulate import JoinStats, accumulator_similarity_join
from repro.simgraph.graph import MultiGraph, WeightedGraph, discretize
from repro.simgraph.similarity import SimilarityConfig
from repro.simgraph.vectors import build_click_vectors
from repro.utils.timing import StageReport


@dataclass
class ExtractionResult:
    """Everything the extraction stage produces."""

    weighted: WeightedGraph
    multigraph: MultiGraph
    report: StageReport
    #: accounting of the similarity join (ops, pairs, honest worker count)
    join_stats: JoinStats | None = field(default=None)

    @property
    def vertex_count(self) -> int:
        return self.multigraph.vertex_count


def extract_similarity_graph(
    store: QueryLogStore,
    config: SimilarityConfig | None = None,
    discretize_scale: float = 20.0,
    include_isolated: bool = True,
    workers: int = 1,
    force_workers: bool = False,
) -> ExtractionResult:
    """Run §4.1 end to end over ``store``.

    ``include_isolated`` keeps supported queries that end up with no edge —
    they become the orphan communities of Figure 6, exactly as queries with
    unique click profiles did in the paper.

    ``workers=1`` (default) is strictly serial; ``workers > 1`` shards the
    similarity join across a process pool clamped to the machine's usable
    cores and gated on join size — small joins stay serial because the
    pool cannot amortise its fork cost (``force_workers=True`` lifts
    both).  The returned report's ``workers`` equals the pool size
    actually used.
    """
    config = config or SimilarityConfig()
    vectors = build_click_vectors(store)
    join = accumulator_similarity_join(
        vectors, config, workers=workers, force_workers=force_workers
    )
    edges = join.edges
    report = StageReport(name="extraction", workers=join.stats.workers)
    report.bytes_read = store.raw_bytes

    weighted = WeightedGraph.from_edges(edges)
    isolated = set(vectors) - {v for pair in edges for v in pair}
    if include_isolated:
        for vertex in isolated:
            weighted.add_vertex(vertex)
    multigraph = discretize(
        edges,
        scale=discretize_scale,
        vertices=isolated if include_isolated else None,
    )
    report.bytes_written = multigraph.storage_bytes()
    return ExtractionResult(
        weighted=weighted,
        multigraph=multigraph,
        report=report,
        join_stats=join.stats,
    )

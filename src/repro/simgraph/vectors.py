"""Sparse click vectors — the vector space of Figure 2.

Each query is a point in a space with one dimension per URL; the component
value is the number of clicks observed for that ``(query, url)`` pair.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.querylog.store import QueryLogStore


@dataclass(frozen=True)
class SparseVector:
    """Immutable sparse vector keyed by URL."""

    components: dict[str, int] = field(default_factory=dict)
    _norm: float = field(init=False, repr=False, compare=False, default=0.0)

    def __post_init__(self) -> None:
        for url, clicks in self.components.items():
            if clicks <= 0:
                raise ValueError(
                    f"click counts must be positive, got {clicks} for {url!r}"
                )
        # the vector is immutable, so the norm is computed exactly once;
        # the similarity join reads it twice per candidate pair
        object.__setattr__(
            self,
            "_norm",
            math.sqrt(sum(value * value for value in self.components.values())),
        )

    @property
    def norm(self) -> float:
        """Euclidean norm; 0.0 for the empty vector.  Cached at construction."""
        return self._norm

    def dot(self, other: "SparseVector") -> float:
        """Dot product; iterates over the smaller vector."""
        small, large = self.components, other.components
        if len(small) > len(large):
            small, large = large, small
        return float(
            sum(value * large[url] for url, value in small.items() if url in large)
        )

    def __len__(self) -> int:
        return len(self.components)

    def __bool__(self) -> bool:
        return bool(self.components)


def build_click_vectors(
    store: QueryLogStore, supported_only: bool = True
) -> dict[str, SparseVector]:
    """Materialise the click vector of every (supported) query in ``store``."""
    return {
        query: SparseVector(components)
        for query, components in store.click_vectors(supported_only).items()
    }

"""Query sets — the Table 1 analogue.

The paper's six sets: the 100 most popular search terms of four categories
(Sports, Electronics, Finance, Health), the top-100 Wikipedia pages, and
the search engine's overall top 250 — 750 queries total.

Our analogue derives popularity from the simulated query log itself
(exactly how the paper's sets were drawn from Bing's):

* per-domain sets take the most frequent logged surface forms whose
  primary topic lies in that domain;
* the *wikipedia* set does the same for the encyclopedic domain — our
  "alternative view of popular interests";
* the *top* set takes the overall most frequent queries regardless of
  domain, which is why it mixes heads with odd tails (and why the paper
  saw its largest expansion gains there).

Set sizes scale with the world: defaults give 40+40+40+40+40+100 = 300
queries at standard scale (the paper's 750 at Bing scale).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.querylog.store import QueryLogStore
from repro.worldmodel.model import WorldModel


@dataclass(frozen=True)
class QuerySetConfig:
    per_domain: int = 40
    top_set: int = 150
    #: minimum logged occurrences for a query to be eligible
    min_frequency: int = 10

    def __post_init__(self) -> None:
        if self.per_domain < 1 or self.top_set < 1:
            raise ValueError("set sizes must be positive")


@dataclass(frozen=True)
class QuerySet:
    """One named set of evaluation queries (a row of Table 1)."""

    name: str
    queries: tuple[str, ...]

    def __len__(self) -> int:
        return len(self.queries)

    def examples(self, count: int = 5) -> list[str]:
        return list(self.queries[:count])


#: the four category sets of Table 1 (wikipedia and top are built apart)
CATEGORY_DOMAINS: tuple[str, ...] = ("sports", "electronics", "finance", "health")


def build_query_sets(
    world: WorldModel,
    store: QueryLogStore,
    config: QuerySetConfig | None = None,
) -> list[QuerySet]:
    """Construct the six Table 1 sets from the log's own popularity."""
    config = config or QuerySetConfig()
    frequency: dict[str, int] = {}
    for query in store.supported_queries():
        count = store.query_count(query)
        if count >= config.min_frequency:
            frequency[query] = count
    by_popularity = sorted(frequency, key=lambda q: (-frequency[q], q))

    def domain_of(query: str) -> str | None:
        topic = world.primary_topic_for(query)
        return topic.domain if topic is not None else None

    sets: list[QuerySet] = []
    for domain in CATEGORY_DOMAINS:
        queries = [q for q in by_popularity if domain_of(q) == domain]
        sets.append(
            QuerySet(name=domain, queries=tuple(queries[: config.per_domain]))
        )
    wiki = [q for q in by_popularity if domain_of(q) == "wikipedia"]
    sets.append(QuerySet(name="wikipedia", queries=tuple(wiki[: config.per_domain])))
    sets.append(
        QuerySet(name="top 250", queries=tuple(by_popularity[: config.top_set]))
    )
    return sets


def total_queries(sets: list[QuerySet]) -> int:
    return sum(len(s) for s in sets)

"""ASCII rendering of tables, series and histograms for the benches."""

from __future__ import annotations

from typing import Sequence


def render_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = ""
) -> str:
    """Fixed-width table with a separator under the header."""
    cells = [[str(value) for value in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in cells), 1)
        if cells
        else len(headers[i])
        for i in range(len(headers))
    ]
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(
    x_label: str,
    series: dict[str, Sequence[float]],
    x_values: Sequence[object],
    title: str = "",
    precision: int = 2,
) -> str:
    """Numeric series side by side (one column per named series)."""
    headers = [x_label, *series.keys()]
    rows = []
    for index, x in enumerate(x_values):
        row: list[object] = [x]
        for values in series.values():
            row.append(f"{values[index]:.{precision}f}")
        rows.append(row)
    return render_table(headers, rows, title)


def render_histogram(
    labels: Sequence[str],
    values: Sequence[float],
    title: str = "",
    width: int = 40,
) -> str:
    """Horizontal bar chart (value-proportional bars)."""
    peak = max(values) if values else 1.0
    label_width = max((len(label) for label in labels), default=1)
    lines = [title] if title else []
    for label, value in zip(labels, values):
        bar = "#" * (int(round(width * value / peak)) if peak > 0 else 0)
        lines.append(f"{label.ljust(label_width)}  {bar} {value:.3g}")
    return "\n".join(lines)

"""Experiment drivers — one per table/figure of §6 (see DESIGN.md).

Every driver consumes an :class:`ExperimentContext` (built once per
session; it holds the e# system, the Table 1 query sets and the simulated
crowd) and returns a result dataclass that tests assert shapes on and
benches print.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.community.neighbours import CommunityNeighbour, closest_communities
from repro.community.sizes import SizeBucket, size_distribution
from repro.core.config import ESharpConfig
from repro.core.esharp import ESharp
from repro.crowd.study import CrowdStudy, StudyConfig, StudyOutcome
from repro.detector.ranking import RankedExpert
from repro.eval.querysets import QuerySet, QuerySetConfig, build_query_sets
from repro.utils.timing import StageReport, format_bytes, format_seconds


# --------------------------------------------------------------------------
# shared context
# --------------------------------------------------------------------------


@dataclass
class ExperimentContext:
    """One built system + query sets + crowd, shared by all drivers."""

    system: ESharp
    query_sets: list[QuerySet]
    study: CrowdStudy
    _baseline_pools: dict[str, list[RankedExpert]] = field(default_factory=dict)
    _esharp_pools: dict[str, list[RankedExpert]] = field(default_factory=dict)
    _outcomes: dict[str, StudyOutcome] = field(default_factory=dict)

    @classmethod
    def build(
        cls,
        config: ESharpConfig | None = None,
        queryset_config: QuerySetConfig | None = None,
        study_config: StudyConfig | None = None,
        system: ESharp | None = None,
    ) -> "ExperimentContext":
        """Build the shared context; ``system`` injects an already-built
        (e.g. artifact-warm-started) system instead of a cold build."""
        if system is None:
            system = ESharp(config or ESharpConfig.standard()).build()
        offline = system.offline
        query_sets = build_query_sets(
            offline.world, offline.store, queryset_config
        )
        study = CrowdStudy(offline.world, system.platform, study_config)
        return cls(system=system, query_sets=query_sets, study=study)

    # -- cached scored pools ---------------------------------------------------

    def baseline_pool(self, query: str) -> list[RankedExpert]:
        """Scored baseline pool, truncated to the result cap."""
        if query not in self._baseline_pools:
            cap = self.system.detector.ranking.max_results
            self._baseline_pools[query] = self.system.detector.score(query)[:cap]
        return self._baseline_pools[query]

    def esharp_pool(self, query: str) -> list[RankedExpert]:
        """Scored e# (expanded, unioned) pool, truncated to the cap."""
        if query not in self._esharp_pools:
            cap = self.system.detector.ranking.max_results
            pool = self.system.online.score(query).scored_pool
            self._esharp_pools[query] = pool[:cap]
        return self._esharp_pools[query]

    def kept(
        self, pool: list[RankedExpert], min_zscore: float
    ) -> list[RankedExpert]:
        """Thresholded view of a (already capped, score-sorted) pool."""
        return [expert for expert in pool if expert.score >= min_zscore]

    def outcome(self, query: str) -> StudyOutcome:
        """Crowd judgments for a query's merged result lists (memoised)."""
        if query not in self._outcomes:
            self._outcomes[query] = self.study.judge_results(
                query, self.baseline_pool(query), self.esharp_pool(query)
            )
        return self._outcomes[query]

    @property
    def default_threshold(self) -> float:
        return self.system.detector.ranking.min_zscore

    def all_queries(self) -> list[str]:
        seen: set[str] = set()
        ordered: list[str] = []
        for query_set in self.query_sets:
            for query in query_set.queries:
                if query not in seen:
                    seen.add(query)
                    ordered.append(query)
        return ordered


# --------------------------------------------------------------------------
# FIG5 — clustering convergence
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class Fig5Result:
    iterations: list[int]
    community_counts: list[int]

    @property
    def converged_after(self) -> int:
        return self.iterations[-1] if self.iterations else 0


def run_fig5(ctx: ExperimentContext) -> Fig5Result:
    history = ctx.system.offline.clustering_history
    return Fig5Result(
        iterations=[trace.iteration for trace in history],
        community_counts=[trace.communities for trace in history],
    )


# --------------------------------------------------------------------------
# FIG6 — community-size distribution
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class Fig6Result:
    buckets: list[SizeBucket]
    total_communities: int


def run_fig6(ctx: ExperimentContext) -> Fig6Result:
    partition = ctx.system.offline.partition
    return Fig6Result(
        buckets=size_distribution(partition),
        total_communities=partition.community_count(),
    )


# --------------------------------------------------------------------------
# FIG7 — the community around a seed term and its closest neighbours
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class Fig7Result:
    seed_term: str
    community: tuple[str, ...]
    neighbours: list[CommunityNeighbour]


def run_fig7(ctx: ExperimentContext, seed_term: str | None = None) -> Fig7Result:
    offline = ctx.system.offline
    if seed_term is None:
        # the analogue of "49ers": the most popular sports topic's canonical
        topics = sorted(
            offline.world.topics_in_domain("sports"),
            key=lambda t: t.popularity,
            reverse=True,
        )
        for topic in topics:
            if topic.canonical.text in offline.partition.assignment:
                seed_term = topic.canonical.text
                break
        else:
            raise LookupError("no sports canonical term survived the log filter")
    community, neighbours = closest_communities(
        offline.multigraph, offline.partition, seed_term
    )
    return Fig7Result(
        seed_term=seed_term, community=community, neighbours=neighbours
    )


# --------------------------------------------------------------------------
# TAB8 — % of queries with at least one expert
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class CoverageRow:
    dataset: str
    baseline: float
    esharp: float

    @property
    def improvement(self) -> float:
        """Relative improvement, as Table 8 reports it (0.87→0.96 = 10%)."""
        if self.baseline == 0:
            return float("inf") if self.esharp > 0 else 0.0
        return (self.esharp - self.baseline) / self.baseline


def run_table8(
    ctx: ExperimentContext, min_zscore: float | None = None
) -> list[CoverageRow]:
    threshold = ctx.default_threshold if min_zscore is None else min_zscore
    rows: list[CoverageRow] = []
    for query_set in ctx.query_sets:
        if not query_set.queries:
            rows.append(CoverageRow(query_set.name, 0.0, 0.0))
            continue
        base_hits = sum(
            1
            for q in query_set.queries
            if ctx.kept(ctx.baseline_pool(q), threshold)
        )
        esh_hits = sum(
            1
            for q in query_set.queries
            if ctx.kept(ctx.esharp_pool(q), threshold)
        )
        size = len(query_set.queries)
        rows.append(
            CoverageRow(query_set.name, base_hits / size, esh_hits / size)
        )
    return rows


# --------------------------------------------------------------------------
# FIG8 — queries with ≥ n experts, n = 0..14
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class Fig8Result:
    dataset: str
    n_values: list[int]
    baseline_pct: list[float]
    esharp_pct: list[float]


def run_fig8(
    ctx: ExperimentContext,
    max_n: int = 14,
    min_zscore: float | None = None,
) -> list[Fig8Result]:
    threshold = ctx.default_threshold if min_zscore is None else min_zscore
    results: list[Fig8Result] = []
    for query_set in ctx.query_sets:
        n_values = list(range(max_n + 1))
        base_counts = [
            len(ctx.kept(ctx.baseline_pool(q), threshold))
            for q in query_set.queries
        ]
        esh_counts = [
            len(ctx.kept(ctx.esharp_pool(q), threshold))
            for q in query_set.queries
        ]
        size = max(1, len(query_set.queries))
        results.append(
            Fig8Result(
                dataset=query_set.name,
                n_values=n_values,
                baseline_pct=[
                    100.0 * sum(1 for c in base_counts if c >= n) / size
                    for n in n_values
                ],
                esharp_pct=[
                    100.0 * sum(1 for c in esh_counts if c >= n) / size
                    for n in n_values
                ],
            )
        )
    return results


# --------------------------------------------------------------------------
# FIG9 — z-score threshold sweep (Top 250)
# --------------------------------------------------------------------------

DEFAULT_ZSCORE_SWEEP: tuple[float, ...] = (
    0.0, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0, 5.0,
)


@dataclass(frozen=True)
class Fig9Result:
    thresholds: list[float]
    baseline_avg: list[float]
    esharp_avg: list[float]


def run_fig9(
    ctx: ExperimentContext,
    thresholds: tuple[float, ...] = DEFAULT_ZSCORE_SWEEP,
    dataset: str = "top 250",
) -> Fig9Result:
    query_set = _find_set(ctx, dataset)
    queries = query_set.queries
    size = max(1, len(queries))
    baseline_avg: list[float] = []
    esharp_avg: list[float] = []
    for threshold in thresholds:
        baseline_avg.append(
            sum(len(ctx.kept(ctx.baseline_pool(q), threshold)) for q in queries)
            / size
        )
        esharp_avg.append(
            sum(len(ctx.kept(ctx.esharp_pool(q), threshold)) for q in queries)
            / size
        )
    return Fig9Result(
        thresholds=list(thresholds),
        baseline_avg=baseline_avg,
        esharp_avg=esharp_avg,
    )


# --------------------------------------------------------------------------
# FIG10 — size vs quality trade-off (impurity)
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class Fig10Point:
    threshold: float
    avg_experts: float
    impurity: float


@dataclass(frozen=True)
class Fig10Result:
    dataset: str
    baseline: list[Fig10Point]
    esharp: list[Fig10Point]


def run_fig10(
    ctx: ExperimentContext,
    thresholds: tuple[float, ...] = DEFAULT_ZSCORE_SWEEP,
    datasets: tuple[str, ...] | None = None,
) -> list[Fig10Result]:
    names = datasets or tuple(s.name for s in ctx.query_sets)
    results: list[Fig10Result] = []
    for name in names:
        query_set = _find_set(ctx, name)
        baseline_points: list[Fig10Point] = []
        esharp_points: list[Fig10Point] = []
        for threshold in thresholds:
            baseline_points.append(
                _fig10_point(ctx, query_set, threshold, use_esharp=False)
            )
            esharp_points.append(
                _fig10_point(ctx, query_set, threshold, use_esharp=True)
            )
        results.append(
            Fig10Result(
                dataset=name, baseline=baseline_points, esharp=esharp_points
            )
        )
    return results


def _fig10_point(
    ctx: ExperimentContext,
    query_set: QuerySet,
    threshold: float,
    use_esharp: bool,
) -> Fig10Point:
    total_kept = 0
    total_flagged = 0
    for query in query_set.queries:
        pool = (
            ctx.esharp_pool(query) if use_esharp else ctx.baseline_pool(query)
        )
        kept = ctx.kept(pool, threshold)
        if not kept:
            continue
        outcome = ctx.outcome(query)
        total_kept += len(kept)
        total_flagged += sum(
            1 for expert in kept if outcome.is_non_expert(query, expert.user_id)
        )
    size = max(1, len(query_set.queries))
    return Fig10Point(
        threshold=threshold,
        avg_experts=total_kept / size,
        impurity=(total_flagged / total_kept) if total_kept else 0.0,
    )


# --------------------------------------------------------------------------
# TAB9 — resource consumption
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class Table9Result:
    rows: list[tuple[str, int, str, str, str]]
    expansion_seconds: float
    detection_seconds: float


def run_table9(
    ctx: ExperimentContext, sample_queries: int = 25
) -> Table9Result:
    offline_reports = ctx.system.offline.clock.reports
    queries = ctx.all_queries()[:sample_queries] or ["fallback query"]
    expansion_total = 0.0
    detection_total = 0.0
    for query in queries:
        answer = ctx.system.answer(query)
        expansion_total += answer.expansion_seconds
        detection_total += answer.detection_seconds
    expansion_avg = expansion_total / len(queries)
    detection_avg = detection_total / len(queries)

    rows = [report.as_row() for report in offline_reports]
    rows.append(
        StageReport(name="Expansion", workers=1, seconds=expansion_avg).as_row()
    )
    rows.append(
        StageReport(name="Detection", workers=1, seconds=detection_avg).as_row()
    )
    return Table9Result(
        rows=rows,
        expansion_seconds=expansion_avg,
        detection_seconds=detection_avg,
    )


# --------------------------------------------------------------------------
# TAB2–7 — example expert tables
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class ExampleTable:
    query: str
    baseline: list[RankedExpert]
    esharp: list[RankedExpert]


def run_example_tables(
    ctx: ExperimentContext,
    queries: list[str] | None = None,
    top_k: int = 3,
) -> list[ExampleTable]:
    """One table per example query (the paper shows six, Tables 2–7).

    Defaults to the most popular query of each Table 1 set, mirroring the
    paper's picks (49ers, bluetooth, dow futures, diabetes, WWI, Palin).
    """
    if queries is None:
        queries = [
            qs.queries[0] for qs in ctx.query_sets if qs.queries
        ]
    threshold = ctx.default_threshold
    tables: list[ExampleTable] = []
    for query in queries:
        baseline = ctx.kept(ctx.baseline_pool(query), threshold)[:top_k]
        esharp_all = ctx.kept(ctx.esharp_pool(query), threshold)
        # the paper's e# rows showcase the *newly found* experts — prefer
        # accounts the baseline did not return
        baseline_ids = {expert.user_id for expert in baseline}
        fresh = [e for e in esharp_all if e.user_id not in baseline_ids]
        esharp = (fresh + [e for e in esharp_all if e.user_id in baseline_ids])[
            :top_k
        ]
        tables.append(ExampleTable(query=query, baseline=baseline, esharp=esharp))
    return tables


# --------------------------------------------------------------------------


def _find_set(ctx: ExperimentContext, name: str) -> QuerySet:
    for query_set in ctx.query_sets:
        if query_set.name == name:
            return query_set
    raise KeyError(
        f"unknown query set {name!r}; have {[s.name for s in ctx.query_sets]}"
    )

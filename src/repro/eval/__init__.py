"""S11 — Evaluation harness: query sets, experiment drivers, reporting.

One driver per artifact of §6 (see DESIGN.md's per-experiment index);
each returns a small dataclass that both the tests (shape assertions) and
the benchmark harness (row/series printing) consume.
"""

from repro.eval.querysets import QuerySet, QuerySetConfig, build_query_sets
from repro.eval.experiments import (
    CoverageRow,
    ExperimentContext,
    Fig5Result,
    Fig6Result,
    Fig7Result,
    Fig8Result,
    Fig9Result,
    Fig10Result,
    Table9Result,
    run_fig5,
    run_fig6,
    run_fig7,
    run_fig8,
    run_fig9,
    run_fig10,
    run_table8,
    run_table9,
    run_example_tables,
)
from repro.eval.metrics import (
    average_precision,
    ndcg,
    precision_at_k,
)
from repro.eval.reporting import render_histogram, render_series, render_table

__all__ = [
    "CoverageRow",
    "ExperimentContext",
    "Fig10Result",
    "Fig5Result",
    "Fig6Result",
    "Fig7Result",
    "Fig8Result",
    "Fig9Result",
    "QuerySet",
    "QuerySetConfig",
    "Table9Result",
    "average_precision",
    "build_query_sets",
    "ndcg",
    "precision_at_k",
    "render_histogram",
    "render_series",
    "render_table",
    "run_example_tables",
    "run_fig10",
    "run_fig5",
    "run_fig6",
    "run_fig7",
    "run_fig8",
    "run_fig9",
    "run_table8",
    "run_table9",
]

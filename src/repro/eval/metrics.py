"""Ranking-quality metrics against ground truth.

The paper evaluates sets (coverage, impurity); with a simulator we can
additionally grade the *ordering*: precision@k, average precision and
nDCG against exact expertise labels.  Used by tests as quality floors
and available for custom analyses.
"""

from __future__ import annotations

import math
from typing import Callable, Iterable, Sequence

from repro.detector.ranking import RankedExpert

Relevance = Callable[[int], bool]


def precision_at_k(
    experts: Sequence[RankedExpert], relevant: Relevance, k: int
) -> float:
    """Fraction of the top-``k`` that are relevant; 0.0 for empty input."""
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    top = list(experts[:k])
    if not top:
        return 0.0
    return sum(1 for e in top if relevant(e.user_id)) / len(top)


def average_precision(
    experts: Sequence[RankedExpert], relevant: Relevance
) -> float:
    """AP over the returned ranking (normalised by retrieved relevant)."""
    hits = 0
    precision_sum = 0.0
    for position, expert in enumerate(experts, start=1):
        if relevant(expert.user_id):
            hits += 1
            precision_sum += hits / position
    return precision_sum / hits if hits else 0.0


def ndcg(
    experts: Sequence[RankedExpert], relevant: Relevance, k: int | None = None
) -> float:
    """Binary nDCG@k (log2 discount); 0.0 when nothing relevant returned."""
    ranking = list(experts if k is None else experts[:k])
    gains = [1.0 if relevant(e.user_id) else 0.0 for e in ranking]
    dcg = sum(
        gain / math.log2(position + 1)
        for position, gain in enumerate(gains, start=1)
    )
    ideal_gains = sorted(gains, reverse=True)
    ideal = sum(
        gain / math.log2(position + 1)
        for position, gain in enumerate(ideal_gains, start=1)
    )
    return dcg / ideal if ideal > 0 else 0.0


def mean_over_queries(
    per_query_values: Iterable[float],
) -> float:
    """Plain macro-average; raises on empty input."""
    values = list(per_query_values)
    if not values:
        raise ValueError("no queries to average over")
    return sum(values) / len(values)

"""Command-line interface.

::

    python -m repro build      [--scale small|standard] [--seed N]
                               [--out DIR] [--save-domains PATH] [--json PATH]
    python -m repro query Q    [--scale ...] [--seed N] [--from-artifact DIR]
                               [--baseline] [--min-zscore X] [--json PATH]
    python -m repro serve      [--queries N] [--concurrency K] [--scale ...]
                               [--from-artifact DIR | --tenant NAME=DIR ...]
                               [--json PATH]
    python -m repro fleet      [--from-artifact DIR | --tenant NAME=DIR ...]
                               [--replicas N] [--process] [--json PATH]
    python -m repro tenants    [--tenant NAME=DIR ... | --root DIR]
                               [--json PATH]
    python -m repro experiment {fig5,fig6,fig7,table8,fig8,fig9,table9} [--scale ...]
    python -m repro sql "SELECT ..." --table name=path.tsv [--table ...]
    python -m repro analyze    [PATHS ...] [--json PATH] [--baseline PATH]
                               [--write-baseline]

The build/serve split of the paper's two-tier architecture:

* ``build --out DIR`` runs the offline pipeline and persists **every
  stage** as a versioned, checksummed artifact (manifest + stage files;
  see :mod:`repro.artifact`).  A re-run with the same config resumes
  from the last completed stage instead of recomputing the world.
* ``query``/``serve --from-artifact DIR`` **warm-start** from that
  directory in milliseconds-to-seconds instead of rebuilding from
  scratch; answers are byte-identical to an in-process build, and the
  serving snapshot version is stamped from the manifest so result-cache
  keys agree across replicas loading the same artifact.
* Without ``--from-artifact``, ``query``/``serve`` still construct the
  full system from scratch; ``--save-domains`` keeps writing the legacy
  domain-collection TSV (which :meth:`DomainStore.load` validates and
  canonicalises on the way back in).

``--json PATH`` on ``build``/``query``/``serve`` additionally writes a
machine-readable report, so scripts parse stable JSON instead of the
human renderings.  ``experiment`` runs one §6 driver and prints the
rendered artifact; ``sql`` executes ad-hoc statements on TSV tables
with the bundled engine.

``analyze`` runs the project invariant linter (:mod:`repro.analysis`)
over the package (or explicit PATHS) against the checked-in
``analysis-baseline.json``: exit 0 when clean, 1 on any unbaselined
finding, 2 on usage errors.  ``--write-baseline`` regenerates the
baseline accepting all current findings (justifications preserved).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from repro.core.config import ESharpConfig
from repro.core.esharp import ESharp
from repro.utils.timing import format_bytes


def _config(scale: str, seed: int) -> ESharpConfig:
    if scale == "small":
        return ESharpConfig.small(seed=seed)
    if scale == "standard":
        return ESharpConfig.standard(seed=seed)
    raise ValueError(f"unknown scale {scale!r}")


def _build_system(args: argparse.Namespace) -> ESharp:
    if getattr(args, "from_artifact", None):
        print(f"warm-starting from artifact {args.from_artifact}...",
              file=sys.stderr)
        return ESharp.from_artifact(args.from_artifact)
    print(f"building e# ({args.scale}, seed={args.seed})...", file=sys.stderr)
    return ESharp(_config(args.scale, args.seed)).build()


def _write_json(path: str, payload: dict) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"json report written to {path}")


def _source_of(args: argparse.Namespace) -> dict:
    if getattr(args, "from_artifact", None):
        return {"artifact": args.from_artifact}
    return {"scale": args.scale, "seed": args.seed}


def cmd_build(args: argparse.Namespace) -> int:
    print(f"building e# ({args.scale}, seed={args.seed})...", file=sys.stderr)
    system = ESharp(_config(args.scale, args.seed)).build(
        artifact_dir=args.out,
        legacy_columns=not getattr(args, "no_legacy", False),
    )
    offline = system.offline
    print(f"world:    {len(offline.world.topics)} topics, "
          f"{len(offline.world.vocabulary())} keywords")
    print(f"log:      {offline.store.impressions:,} impressions "
          f"({format_bytes(offline.store.raw_bytes)})")
    print(f"graph:    {offline.multigraph.vertex_count:,} vertices, "
          f"{offline.multigraph.distinct_edge_count:,} edges")
    print(f"domains:  {offline.domain_store.domain_count} communities "
          f"({format_bytes(offline.domain_store.storage_bytes())})")
    print(f"corpus:   {system.platform.tweet_count:,} tweets, "
          f"{system.platform.user_count:,} users")
    for report in offline.clock.reports:
        name, workers, runtime, read, write = report.as_row()
        print(f"stage:    {name:<11} workers={workers:<3} time={runtime:<9} "
              f"read={read:<8} write={write}")
    if args.out:
        print(f"artifact written to {args.out} "
              f"(snapshot version {system.snapshots.version})")
    if args.save_domains:
        written = offline.domain_store.save(args.save_domains)
        print(f"domains written to {args.save_domains} "
              f"({format_bytes(written)})")
    if args.json:
        _write_json(args.json, {
            "command": "build",
            "scale": args.scale,
            "seed": args.seed,
            "snapshot_version": system.snapshots.version,
            "artifact": args.out,
            "world": {
                "topics": len(offline.world.topics),
                "keywords": len(offline.world.vocabulary()),
            },
            "log": {
                "impressions": offline.store.impressions,
                "raw_bytes": offline.store.raw_bytes,
            },
            "graph": {
                "vertices": offline.multigraph.vertex_count,
                "distinct_edges": offline.multigraph.distinct_edge_count,
                "total_edges": offline.multigraph.total_edges,
            },
            "domains": {
                "count": offline.domain_store.domain_count,
                "keywords": offline.domain_store.keyword_count,
                "bytes": offline.domain_store.storage_bytes(),
            },
            "corpus": {
                "tweets": system.platform.tweet_count,
                "users": system.platform.user_count,
            },
            "stages": [
                {
                    "name": report.name,
                    "workers": report.workers,
                    "seconds": report.seconds,
                    "bytes_read": report.bytes_read,
                    "bytes_written": report.bytes_written,
                }
                for report in offline.clock.reports
            ],
        })
    return 0


def _expert_payload(expert) -> dict:
    return {
        "user_id": expert.user_id,
        "screen_name": expert.screen_name,
        "description": expert.description,
        "verified": expert.verified,
        "followers": expert.followers,
        "score": expert.score,
    }


def cmd_query(args: argparse.Namespace) -> int:
    system = _build_system(args)
    query = " ".join(args.query)
    terms = system.expansion_terms(query)
    print(f"query: {query!r}")
    print(f"expansion ({len(terms)} terms): "
          + ", ".join(terms[:10])
          + (" ..." if len(terms) > 10 else ""))
    if args.baseline:
        experts = system.find_experts_baseline(query, args.min_zscore)
        print(f"\nbaseline — {len(experts)} experts:")
    else:
        experts = system.find_experts(query, args.min_zscore)
        print(f"\ne# — {len(experts)} experts:")
    for expert in experts:
        print(f"  {expert}")
    if not experts:
        print("  (none above the threshold)")
    if args.json:
        _write_json(args.json, {
            "command": "query",
            "query": query,
            "mode": "baseline" if args.baseline else "esharp",
            "min_zscore": args.min_zscore,
            "snapshot_version": system.snapshots.version,
            "source": _source_of(args),
            "terms": terms,
            "experts": [_expert_payload(expert) for expert in experts],
        })
    return 0


def run_serve_command(system, args: argparse.Namespace) -> int:
    """Drive the serving engine for an already-built system.

    Split from :func:`cmd_serve` so tests can reuse a session-scoped
    system instead of paying a fresh build.
    """
    import json

    from repro.serving.loadgen import run_serve
    from repro.serving.service import ServiceConfig

    outcome = run_serve(
        system,
        requests=args.queries,
        concurrency=args.concurrency,
        max_unique=args.unique,
        zipf_exponent=args.zipf_exponent,
        seed=args.seed,
        min_zscore=args.min_zscore,
        service_config=ServiceConfig(detection_workers=args.workers),
        baseline=not args.no_baseline,
    )
    print(outcome.render())
    if args.json:
        payload = outcome.to_dict()
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"json report written to {args.json}")
    clean = outcome.report.errors == 0 and (
        outcome.baseline is None or outcome.baseline.errors == 0
    )
    return 0 if clean else 1


def _replay_tenants(make_client, specs, args):
    """One workload replay per tenant, all tenants in parallel.

    ``make_client(tenant)`` returns a ``.query(query, min_zscore)``
    target (a :class:`~repro.serving.tenancy.TenantClient`, or a router
    adapter).  The request and thread budgets are split evenly across
    tenants so total offered load matches the single-tenant flags.
    Returns ``(reports, failures)`` keyed by tenant.
    """
    import threading

    from repro.artifact import load_artifact_stages
    from repro.serving.loadgen import (
        LoadGenerator,
        WorkloadConfig,
        build_workload_from,
    )

    count = len(specs)
    requests = max(1, args.queries // count)
    concurrency = max(1, args.concurrency // count)
    reports: dict = {}
    failures: dict = {}
    lock = threading.Lock()

    def replay(tenant: str, artifact_dir) -> None:
        try:
            partial = load_artifact_stages(
                artifact_dir, ("store", "domain_store")
            )
            workload = build_workload_from(
                partial.values["store"],
                partial.values["domain_store"],
                WorkloadConfig(
                    requests=requests,
                    max_unique=args.unique,
                    zipf_exponent=args.zipf_exponent,
                    seed=args.seed,
                ),
            )
            report = LoadGenerator(
                make_client(tenant),
                workload,
                concurrency=concurrency,
                min_zscore=args.min_zscore,
            ).run()
        except Exception as exc:  # noqa: BLE001 - reported per tenant
            with lock:
                failures[tenant] = f"{type(exc).__name__}: {exc}"
            return
        with lock:
            reports[tenant] = report

    threads = [
        threading.Thread(
            target=replay,
            args=(tenant, artifact_dir),
            name=f"tenant-replay-{tenant}",
        )
        for tenant, artifact_dir in sorted(specs.items())
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return reports, failures


def run_serve_tenants(args: argparse.Namespace) -> int:
    """Replay per-tenant workloads through one shared multi-tenant service."""
    from repro.artifact import parse_tenant_specs
    from repro.serving.service import ServiceConfig
    from repro.serving.tenancy import (
        MultiTenantService,
        TenantClient,
        TenantSpec,
    )

    specs = parse_tenant_specs(args.tenant)
    print(
        f"serving {len(specs)} tenants from one process: "
        f"{', '.join(sorted(specs))}...",
        file=sys.stderr,
    )
    service = MultiTenantService(
        tuple(
            TenantSpec(name, specs[name]) for name in sorted(specs)
        ),
        ServiceConfig(detection_workers=args.workers),
    )
    try:
        reports, failures = _replay_tenants(
            lambda tenant: TenantClient(service, tenant), specs, args
        )
        health = service.health()
        by_tenant = {entry.tenant: entry for entry in health.tenants}
        for tenant in sorted(specs):
            if tenant in failures:
                print(f"tenant {tenant}: FAILED — {failures[tenant]}")
                continue
            print(reports[tenant].render(f"tenant {tenant} replay"))
            entry = by_tenant.get(tenant)
            if entry is not None:
                print(
                    f"  tenant:        snapshot v{entry.snapshot_version}, "
                    f"hit ratio {entry.cache_hit_ratio:.1%}"
                )
        if args.json:
            _write_json(args.json, {
                "command": "serve",
                "tenants": {
                    tenant: {
                        "artifact": str(specs[tenant]),
                        "report": reports[tenant].to_dict()
                        if tenant in reports else None,
                        "error": failures.get(tenant),
                        "snapshot_version": (
                            by_tenant[tenant].snapshot_version
                            if tenant in by_tenant else None
                        ),
                        "cache_hit_ratio": (
                            by_tenant[tenant].cache_hit_ratio
                            if tenant in by_tenant else None
                        ),
                    }
                    for tenant in sorted(specs)
                },
                "service": {
                    "requests": health.requests,
                    "in_flight": health.in_flight,
                    "waiting": health.waiting,
                },
            })
        clean = not failures and all(
            report.errors == 0 for report in reports.values()
        )
        return 0 if clean else 1
    finally:
        service.close()


def cmd_serve(args: argparse.Namespace) -> int:
    # validate before paying for a build
    for name in ("queries", "concurrency", "unique", "workers"):
        value = getattr(args, name)
        if value < 1:
            print(f"--{name} must be >= 1, got {value}", file=sys.stderr)
            return 2
    if args.zipf_exponent < 0:
        print(f"--zipf-exponent must be non-negative, got "
              f"{args.zipf_exponent}", file=sys.stderr)
        return 2
    if getattr(args, "tenant", None):
        if args.from_artifact:
            print("--tenant and --from-artifact are mutually exclusive; "
                  "name every corpus with --tenant NAME=DIR",
                  file=sys.stderr)
            return 2
        return run_serve_tenants(args)
    system = _build_system(args)
    return run_serve_command(system, args)


def run_fleet_command(args: argparse.Namespace, replicas=None) -> int:
    """Drive a replica fleet from an artifact (split out for tests).

    ``replicas`` lets tests inject prebuilt replica handles; the CLI
    path warm-starts ``--replicas`` workers from the artifact — threads
    in this process by default, ``fleet-worker`` subprocesses with
    ``--process``.
    """
    import os

    from repro.artifact import load_artifact_stages
    from repro.chaos import FaultPlan, inject
    from repro.fleet import (
        FleetConfig,
        FleetRouter,
        InProcessReplica,
        ReplicaSupervisor,
        SubprocessReplica,
    )
    from repro.serving.loadgen import (
        LoadGenerator,
        WorkloadConfig,
        build_workload_from,
    )
    from repro.serving.service import ServiceConfig

    chaos_plan_path = getattr(args, "chaos_plan", None)
    extra_env = None
    if chaos_plan_path:
        with open(chaos_plan_path, "r", encoding="utf-8") as handle:
            plan_text = handle.read()
        inject.install(FaultPlan.from_json(plan_text))
        # subprocess workers pick the plan up via the environment
        os.environ[inject.ENV_PLAN] = plan_text
        extra_env = {inject.ENV_PLAN: plan_text}

    partial = load_artifact_stages(
        args.from_artifact, ("store", "domain_store")
    )
    workload = build_workload_from(
        partial.values["store"],
        partial.values["domain_store"],
        WorkloadConfig(
            requests=args.queries,
            max_unique=args.unique,
            zipf_exponent=args.zipf_exponent,
            seed=args.seed,
        ),
    )
    def _make_replica(name: str):
        if args.process:
            return SubprocessReplica(
                name,
                args.from_artifact,
                detection_workers=args.workers,
                extra_env=extra_env,
            )
        return InProcessReplica(
            name,
            ESharp.from_artifact(args.from_artifact),
            ServiceConfig(detection_workers=args.workers),
        )

    owned = replicas is not None
    if replicas is None:
        replicas = []
        for index in range(args.replicas):
            name = f"replica-{index}"
            print(f"starting {name} ({'process' if args.process else 'thread'})"
                  f" from {args.from_artifact}...", file=sys.stderr)
            replicas.append(_make_replica(name))
    config = FleetConfig(
        deadline_seconds=getattr(args, "deadline", None),
        allow_degraded=getattr(args, "allow_degraded", False),
    )
    router = FleetRouter.from_artifact(
        args.from_artifact, replicas, sharding=args.sharding, config=config
    )
    supervisor = None
    if getattr(args, "supervise", False) and not owned:
        factories = {
            replica.name: (lambda name=replica.name: _make_replica(name))
            for replica in replicas
        }
        supervisor = ReplicaSupervisor(router, factories)
        supervisor.start()
    try:
        report = LoadGenerator(
            router,
            workload,
            concurrency=args.concurrency,
            min_zscore=args.min_zscore,
        ).run()
        stats = router.stats()
        print(report.render(
            f"fleet replay — {stats.replicas} replicas, "
            f"{stats.policy} sharding"
        ))
        print(f"  routing:       {stats.single_shard} single-shard, "
              f"{stats.scattered} scattered ({stats.scatter_legs} legs)")
        print(f"  hedging:       {stats.hedges_fired} fired, "
              f"{stats.hedge_wins} won, {stats.failovers} failovers")
        print(f"  resilience:    {stats.degraded_answers} degraded, "
              f"{stats.deadline_exceeded} deadline-exceeded, "
              f"{stats.breaker_rejections} breaker-rejected")
        if supervisor is not None:
            sup = supervisor.stats()
            print(f"  supervisor:    {sup.restarts} restarts "
                  f"({sup.failed_restarts} failed, {sup.gave_up} gave up)")
        versions = {
            name: h.snapshot_version for name, h in stats.replica_health
        }
        print(f"  replicas:      versions {versions}")
        if args.json:
            payload = {
                "command": "fleet",
                "artifact": args.from_artifact,
                "transport": "process" if args.process else "thread",
                "report": report.to_dict(),
                "fleet": stats.to_dict(),
            }
            if supervisor is not None:
                payload["supervisor"] = supervisor.stats().to_dict()
            if chaos_plan_path:
                payload["chaos_plan"] = chaos_plan_path
            _write_json(args.json, payload)
        return 0 if report.errors == 0 else 1
    finally:
        if supervisor is not None:
            supervisor.close()
        if not owned:
            router.close()
        if chaos_plan_path:
            inject.uninstall()
            os.environ.pop(inject.ENV_PLAN, None)


def run_fleet_tenants(args: argparse.Namespace, replicas=None) -> int:
    """Drive a multi-tenant fleet: every replica serves every tenant."""
    from repro.artifact import parse_tenant_specs
    from repro.fleet import (
        FleetConfig,
        FleetRouter,
        InProcessReplica,
        SubprocessReplica,
    )
    from repro.serving.service import ServiceConfig
    from repro.serving.tenancy import TenantSpec

    specs = parse_tenant_specs(args.tenant)
    tenant_specs = tuple(
        TenantSpec(name, specs[name]) for name in sorted(specs)
    )

    def _make_replica(name: str):
        if args.process:
            return SubprocessReplica(
                name,
                tenants={
                    tenant: str(path) for tenant, path in specs.items()
                },
                detection_workers=args.workers,
            )
        return InProcessReplica(
            name,
            tenant_specs=tenant_specs,
            service_config=ServiceConfig(detection_workers=args.workers),
        )

    owned = replicas is not None
    if replicas is None:
        replicas = []
        for index in range(args.replicas):
            name = f"replica-{index}"
            print(
                f"starting {name} "
                f"({'process' if args.process else 'thread'}) serving "
                f"{len(specs)} tenants...",
                file=sys.stderr,
            )
            replicas.append(_make_replica(name))
    config = FleetConfig(
        deadline_seconds=getattr(args, "deadline", None),
        allow_degraded=getattr(args, "allow_degraded", False),
    )
    router = FleetRouter.from_tenant_artifacts(
        dict(specs), replicas, sharding=args.sharding, config=config
    )

    class _RouterTenantClient:
        """Duck-types the LoadGenerator's service for one tenant."""

        def __init__(self, tenant: str) -> None:
            self.tenant = tenant

        def query(self, query, min_zscore=None):
            return router.query(query, min_zscore, tenant=self.tenant)

    try:
        reports, failures = _replay_tenants(
            _RouterTenantClient, specs, args
        )
        stats = router.stats()
        for tenant in sorted(specs):
            if tenant in failures:
                print(f"tenant {tenant}: FAILED — {failures[tenant]}")
                continue
            print(reports[tenant].render(
                f"tenant {tenant} fleet replay — {stats.replicas} replicas, "
                f"{stats.policy} sharding"
            ))
        print(f"  routing:       {stats.single_shard} single-shard, "
              f"{stats.scattered} scattered ({stats.scatter_legs} legs)")
        versions = {
            name: {
                entry.tenant: entry.snapshot_version
                for entry in health.tenants
            }
            for name, health in stats.replica_health
        }
        print(f"  replicas:      per-tenant versions {versions}")
        if args.json:
            _write_json(args.json, {
                "command": "fleet",
                "transport": "process" if args.process else "thread",
                "tenants": {
                    tenant: {
                        "artifact": str(specs[tenant]),
                        "report": reports[tenant].to_dict()
                        if tenant in reports else None,
                        "error": failures.get(tenant),
                    }
                    for tenant in sorted(specs)
                },
                "fleet": stats.to_dict(),
            })
        clean = not failures and all(
            report.errors == 0 for report in reports.values()
        )
        return 0 if clean else 1
    finally:
        if not owned:
            router.close()


def cmd_fleet(args: argparse.Namespace) -> int:
    for name in ("replicas", "queries", "concurrency", "unique", "workers"):
        value = getattr(args, name)
        if value < 1:
            print(f"--{name} must be >= 1, got {value}", file=sys.stderr)
            return 2
    if getattr(args, "tenant", None):
        if args.from_artifact:
            print("--tenant and --from-artifact are mutually exclusive; "
                  "name every corpus with --tenant NAME=DIR",
                  file=sys.stderr)
            return 2
        return run_fleet_tenants(args)
    if not args.from_artifact:
        print("fleet needs --from-artifact DIR (or --tenant NAME=DIR "
              "flags)", file=sys.stderr)
        return 2
    return run_fleet_command(args)


def cmd_fleet_worker(args: argparse.Namespace) -> int:
    from repro.fleet.worker import serve_worker

    tenants = None
    if getattr(args, "tenant", None):
        from repro.artifact import parse_tenant_specs

        if args.from_artifact:
            print("--tenant and --from-artifact are mutually exclusive",
                  file=sys.stderr)
            return 2
        tenants = {
            name: str(path)
            for name, path in parse_tenant_specs(args.tenant).items()
        }
    elif not args.from_artifact:
        print("fleet-worker needs --from-artifact DIR or --tenant "
              "NAME=DIR flags", file=sys.stderr)
        return 2
    return serve_worker(
        args.from_artifact,
        tenants=tenants,
        detection_workers=args.detection_workers,
        cache_capacity=args.cache_capacity,
        score_cache_capacity=args.score_cache_capacity,
        name=getattr(args, "name", "worker"),
    )


def cmd_tenants(args: argparse.Namespace) -> int:
    """Introspect tenant artifact layouts without loading any corpus."""
    from repro.artifact import (
        discover_tenants,
        parse_tenant_specs,
        read_manifest,
    )

    if args.tenant and args.root:
        print("--tenant and --root are mutually exclusive", file=sys.stderr)
        return 2
    if args.tenant:
        specs = parse_tenant_specs(args.tenant)
    elif args.root:
        specs = discover_tenants(args.root)
    else:
        print("tenants needs --tenant NAME=DIR flags or --root DIR",
              file=sys.stderr)
        return 2
    rows = []
    for name in sorted(specs):
        manifest = read_manifest(specs[name])
        rows.append({
            "tenant": name,
            "artifact": str(specs[name]),
            "snapshot_version": manifest.snapshot_version,
            "seed": manifest.seed,
            "complete": manifest.complete,
            "stages": sorted(manifest.stages),
            "config_fingerprint": manifest.config_fingerprint,
        })
    print(f"{len(rows)} tenants:")
    for row in rows:
        print(f"  {row['tenant']:<16} v{row['snapshot_version']} "
              f"seed={row['seed']} "
              f"{'complete' if row['complete'] else 'INCOMPLETE'} "
              f"({len(row['stages'])} stages) {row['artifact']}")
    if args.json:
        _write_json(args.json, {"command": "tenants", "tenants": rows})
    return 0


def _main_with_artifact_errors(handler, args: argparse.Namespace) -> int:
    """Run a handler, rendering artifact failures as clean CLI errors."""
    from repro.artifact import ArtifactError

    try:
        return handler(args)
    except ArtifactError as exc:
        print(f"artifact error: {exc}", file=sys.stderr)
        return 2


_EXPERIMENTS = ("fig5", "fig6", "fig7", "table8", "fig8", "fig9", "table9")


def cmd_experiment(args: argparse.Namespace) -> int:
    from repro.eval import experiments as drivers
    from repro.eval.reporting import render_histogram, render_series, render_table

    ctx = drivers.ExperimentContext.build(_config(args.scale, args.seed))
    name = args.name
    if name == "fig5":
        result = drivers.run_fig5(ctx)
        print(render_series(
            "iteration",
            {"communities": [float(c) for c in result.community_counts]},
            result.iterations,
            title="Figure 5 — convergence",
            precision=0,
        ))
    elif name == "fig6":
        result = drivers.run_fig6(ctx)
        print(render_histogram(
            [b.label for b in result.buckets],
            [b.count for b in result.buckets],
            title="Figure 6 — community sizes",
        ))
    elif name == "fig7":
        result = drivers.run_fig7(ctx)
        print(f"Figure 7 — around {result.seed_term!r}")
        print("community: " + ", ".join(result.community))
        for neighbour in result.neighbours:
            print(f"  [links={neighbour.link_weight}] "
                  + ", ".join(neighbour.members[:6]))
    elif name == "table8":
        rows = drivers.run_table8(ctx)
        print(render_table(
            ["Data set", "Baseline", "e#", "Improvement"],
            [(r.dataset, f"{r.baseline:.2f}", f"{r.esharp:.2f}",
              f"{r.improvement * 100:.1f}%") for r in rows],
            title="Table 8 — coverage",
        ))
    elif name == "fig8":
        for result in drivers.run_fig8(ctx):
            print(render_series(
                "n",
                {"baseline %": result.baseline_pct, "e# %": result.esharp_pct},
                result.n_values,
                title=f"Figure 8 — {result.dataset}",
                precision=1,
            ))
            print()
    elif name == "fig9":
        result = drivers.run_fig9(ctx)
        print(render_series(
            "min z-score",
            {"baseline": result.baseline_avg, "e#": result.esharp_avg},
            result.thresholds,
            title="Figure 9 — threshold sweep (top 250)",
        ))
    elif name == "table9":
        result = drivers.run_table9(ctx)
        print(render_table(
            ["Step", "Workers", "Runtime", "Read", "Write"],
            result.rows,
            title="Table 9 — resources",
        ))
    else:  # pragma: no cover - argparse restricts choices
        raise ValueError(f"unknown experiment {name!r}")
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    from repro.analysis.baseline import Baseline, write_baseline
    from repro.analysis.engine import (
        analyze_paths,
        default_baseline_path,
        write_json_report,
    )
    from repro.analysis.errors import AnalysisError

    baseline_path = args.baseline or default_baseline_path()
    try:
        baseline = Baseline.load(baseline_path)
        report = analyze_paths(
            paths=args.paths or None, baseline=baseline, root=args.root
        )
    except AnalysisError as exc:
        print(f"analyze: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        count = write_baseline(
            baseline_path,
            report.findings + report.baselined,
            existing=baseline,
        )
        print(f"baseline written to {baseline_path} ({count} entries)")
        return 0

    if args.json:
        write_json_report(report, args.json)
        print(f"json report written to {args.json}", file=sys.stderr)
    print(report.render_text())
    stale = baseline.unused(report.findings + report.baselined)
    if stale and not args.paths:
        for entry in stale:
            print(f"note: baseline entry {entry.fingerprint} "
                  f"({entry.rule} {entry.path}) no longer matches — "
                  f"remove it", file=sys.stderr)
    return 0 if report.ok else 1


def cmd_sql(args: argparse.Namespace) -> int:
    from repro.relational.io import load_table
    from repro.relational.sql import SqlSession

    session = SqlSession()
    for binding in args.table:
        name, _, path = binding.partition("=")
        if not name or not path:
            print(f"--table expects name=path, got {binding!r}",
                  file=sys.stderr)
            return 2
        session.register(name, load_table(path))
    result = session.run(args.statement)
    print(result.pretty(limit=args.limit))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="e# (EDBT 2016) reproduction — build, query, reproduce",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_scale(p: argparse.ArgumentParser) -> None:
        p.add_argument("--scale", choices=("small", "standard"),
                       default="small")
        p.add_argument("--seed", type=int, default=2016)

    p_build = sub.add_parser("build", help="run the full pipeline, print stats")
    add_scale(p_build)
    p_build.add_argument("--out", metavar="DIR",
                         help="persist every stage as a versioned artifact "
                              "(re-running resumes from the last completed "
                              "stage)")
    p_build.add_argument("--no-legacy", action="store_true",
                         help="write packed stages as binary sidecars only, "
                              "dropping the base64 column blobs (smaller "
                              "artifacts; older readers cannot load them)")
    p_build.add_argument("--save-domains", metavar="PATH",
                         help="write the domain collection as TSV")
    p_build.add_argument("--json", metavar="PATH",
                         help="also write the build report as JSON")
    p_build.set_defaults(handler=cmd_build)

    p_query = sub.add_parser("query", help="find experts for a query")
    add_scale(p_query)
    p_query.add_argument("query", nargs="+", help="the query keywords")
    p_query.add_argument("--from-artifact", metavar="DIR",
                         help="warm-start from a build --out artifact "
                              "instead of rebuilding (ignores --scale/--seed)")
    p_query.add_argument("--baseline", action="store_true",
                         help="run Pal & Counts without expansion")
    p_query.add_argument("--min-zscore", type=float, default=None)
    p_query.add_argument("--json", metavar="PATH",
                         help="also write the answer as JSON")
    p_query.set_defaults(handler=cmd_query)

    p_serve = sub.add_parser(
        "serve", help="replay a query workload through the serving engine"
    )
    add_scale(p_serve)
    p_serve.add_argument("--from-artifact", metavar="DIR",
                         help="warm-start from a build --out artifact "
                              "instead of rebuilding (ignores --scale/--seed)")
    p_serve.add_argument("--tenant", action="append", default=[],
                         metavar="NAME=DIR",
                         help="serve this tenant's artifact (repeatable); "
                              "all tenants share one process, cache, and "
                              "admission envelope")
    p_serve.add_argument("--queries", type=int, default=200,
                         help="requests to replay (default 200)")
    p_serve.add_argument("--concurrency", type=int, default=8,
                         help="client threads (default 8)")
    p_serve.add_argument("--unique", type=int, default=64,
                         help="distinct queries in the workload head")
    p_serve.add_argument("--zipf-exponent", type=float, default=1.1,
                         help="workload skew (>1 = heavier head)")
    p_serve.add_argument("--workers", type=int, default=4,
                         help="detection worker threads")
    p_serve.add_argument("--min-zscore", type=float, default=None)
    p_serve.add_argument("--no-baseline", action="store_true",
                         help="skip the serial uncached comparison pass")
    p_serve.add_argument("--json", metavar="PATH",
                         help="also write the report as JSON")
    p_serve.set_defaults(handler=cmd_serve)

    p_fleet = sub.add_parser(
        "fleet",
        help="serve a workload through a shard-aware multi-replica fleet",
    )
    p_fleet.add_argument("--from-artifact", metavar="DIR",
                         help="artifact every replica warm-starts from "
                              "(build --out)")
    p_fleet.add_argument("--tenant", action="append", default=[],
                         metavar="NAME=DIR",
                         help="serve this tenant's artifact on every "
                              "replica (repeatable; replaces "
                              "--from-artifact)")
    p_fleet.add_argument("--replicas", type=int, default=2,
                         help="replica count == shard count (default 2)")
    p_fleet.add_argument("--process", action="store_true",
                         help="run replicas as fleet-worker subprocesses "
                              "instead of in-process threads")
    p_fleet.add_argument("--sharding", choices=("domain", "hash"),
                         default="domain",
                         help="domain: whole domains stay on one shard; "
                              "hash: terms spread over a consistent ring")
    p_fleet.add_argument("--queries", type=int, default=200,
                         help="requests to replay (default 200)")
    p_fleet.add_argument("--concurrency", type=int, default=8,
                         help="client threads (default 8)")
    p_fleet.add_argument("--unique", type=int, default=64,
                         help="distinct queries in the workload head")
    p_fleet.add_argument("--zipf-exponent", type=float, default=1.1,
                         help="workload skew (>1 = heavier head)")
    p_fleet.add_argument("--seed", type=int, default=2016,
                         help="workload sampling seed")
    p_fleet.add_argument("--workers", type=int, default=2,
                         help="detection worker threads per replica")
    p_fleet.add_argument("--min-zscore", type=float, default=None)
    p_fleet.add_argument("--deadline", type=float, default=None,
                         metavar="SECONDS",
                         help="end-to-end deadline budget per query")
    p_fleet.add_argument("--allow-degraded", action="store_true",
                         help="serve coverage<1.0 partials when a shard "
                              "is down instead of failing the query")
    p_fleet.add_argument("--supervise", action="store_true",
                         help="run a ReplicaSupervisor that restarts dead "
                              "replicas warm from the artifact")
    p_fleet.add_argument("--chaos-plan", metavar="PATH", default=None,
                         help="JSON FaultPlan injected into the router and "
                              "every worker (REPRO_CHAOS_PLAN)")
    p_fleet.add_argument("--json", metavar="PATH",
                         help="also write the report as JSON")
    p_fleet.set_defaults(handler=cmd_fleet)

    p_worker = sub.add_parser(
        "fleet-worker",
        help="(internal) one fleet replica speaking JSON-lines on stdio",
    )
    p_worker.add_argument("--from-artifact", metavar="DIR")
    p_worker.add_argument("--tenant", action="append", default=[],
                          metavar="NAME=DIR",
                          help="serve this tenant's artifact (repeatable; "
                               "replaces --from-artifact)")
    p_worker.add_argument("--detection-workers", type=int, default=2)
    p_worker.add_argument("--cache-capacity", type=int, default=None,
                          help="override the replica's result-cache size")
    p_worker.add_argument("--score-cache-capacity", type=int, default=None,
                          help="override the detector's per-term memo size")
    p_worker.add_argument("--name", default="worker",
                          help="replica name (diagnostics + chaos matching)")
    p_worker.set_defaults(handler=cmd_fleet_worker)

    p_tenants = sub.add_parser(
        "tenants",
        help="inspect tenant artifact layouts (manifest-only, no load)",
    )
    p_tenants.add_argument("--tenant", action="append", default=[],
                           metavar="NAME=DIR",
                           help="name a tenant artifact explicitly "
                                "(repeatable)")
    p_tenants.add_argument("--root", metavar="DIR", default=None,
                           help="discover tenants: every subdirectory "
                                "holding a manifest.json")
    p_tenants.add_argument("--json", metavar="PATH",
                           help="also write the listing as JSON")
    p_tenants.set_defaults(handler=cmd_tenants)

    p_exp = sub.add_parser("experiment", help="run one §6 driver")
    add_scale(p_exp)
    p_exp.add_argument("name", choices=_EXPERIMENTS)
    p_exp.set_defaults(handler=cmd_experiment)

    p_analyze = sub.add_parser(
        "analyze",
        help="run the project invariant linter against the baseline",
    )
    p_analyze.add_argument("paths", nargs="*", metavar="PATH",
                           help="files/directories to analyze "
                                "(default: the whole repro package)")
    p_analyze.add_argument("--baseline", metavar="PATH",
                           help="baseline file (default: "
                                "analysis-baseline.json at the repo root)")
    p_analyze.add_argument("--root", metavar="DIR",
                           help="directory findings/fingerprints are "
                                "relative to (default: the repro package "
                                "directory)")
    p_analyze.add_argument("--json", metavar="PATH",
                           help="also write the findings report as JSON")
    p_analyze.add_argument("--write-baseline", action="store_true",
                           help="accept all current findings into the "
                                "baseline (existing justifications kept)")
    p_analyze.set_defaults(handler=cmd_analyze)

    p_sql = sub.add_parser("sql", help="run SQL over TSV tables")
    p_sql.add_argument("statement", help="the SQL text")
    p_sql.add_argument("--table", action="append", default=[],
                       metavar="NAME=PATH", help="bind a TSV file")
    p_sql.add_argument("--limit", type=int, default=40)
    p_sql.set_defaults(handler=cmd_sql)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return _main_with_artifact_errors(args.handler, args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

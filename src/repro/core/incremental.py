"""Incremental domain refresh: delta ingest → delta swap.

§6.3 rebuilds the domain collection weekly from scratch; under
continuous traffic that is the wrong granularity — a few thousand fresh
impressions do not justify regenerating and re-joining the entire
corpus.  :class:`DeltaRefresh` is the incremental complement of
:class:`~repro.core.offline.OfflinePipeline`: it carries the offline
stage's working state forward between refreshes and, for each delta
batch, does only delta-sized work:

1. **Ingest** — the delta impressions are merged into the maintained
   log; the queries whose click vectors changed (or that newly crossed
   the support threshold) are the *dirty* set.
2. **Join** — the resumable :class:`~repro.simgraph.accumulate.JoinState`
   repairs exactly the edges with a dirty endpoint (plus any clean edge
   orphaned by a hub flip); the resulting edge dict is byte-identical
   to a batch join on the union log.
3. **Graph** — the multigraph is re-discretised and the vertices whose
   integer multiplicities actually changed become the clustering's
   touched set (a weight wiggle that rounds to the same multiplicity
   touches nothing).
4. **Cluster** — :class:`~repro.community.incremental.IncrementalClusterer`
   re-clusters the dirty components locally, falling back to an exact
   full re-cluster past the churn threshold (or when the local result
   is not a fixed point of the global algorithm).
5. **Domains** — :meth:`DomainStore.rebuilt` reuses every domain whose
   membership survived; only affected domains are rebuilt.

The batch pipeline remains the executable specification: the property
tests assert a delta refresh equals a full rebuild on the union log —
same edges (byte-identical), same partition structure, same domain
store.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.community.incremental import (
    IncrementalClusterer,
    IncrementalClusteringConfig,
)
from repro.core.config import ESharpConfig
from repro.core.offline import OfflineArtifacts
from repro.expansion.domainstore import DomainStore
from repro.querylog.records import Impression
from repro.querylog.store import QueryLogStore
from repro.simgraph.accumulate import JoinState
from repro.simgraph.graph import (
    DEFAULT_DISCRETIZE_SCALE,
    WeightedGraph,
    discretize,
)
from repro.simgraph.vectors import SparseVector, build_click_vectors
from repro.utils.timing import StageClock


@dataclass(frozen=True)
class DeltaRefreshConfig:
    """Knobs of the incremental refresh path.

    The footnote-1 discretisation scale is deliberately *not* a knob
    here: both rebuild paths read
    :data:`repro.simgraph.graph.DEFAULT_DISCRETIZE_SCALE`, because a
    delta path discretising differently from the batch extraction that
    seeded it could only break the equivalence guarantee.
    """

    incremental: IncrementalClusteringConfig = field(
        default_factory=IncrementalClusteringConfig
    )


@dataclass(frozen=True)
class DeltaRefreshStats:
    """What one delta refresh did (stamped into the serving stats)."""

    impressions: int
    dirty_queries: int
    new_queries: int
    edges_added: int
    edges_changed: int
    edges_removed: int
    hub_flips: int
    recomputed_pairs: int
    #: vertices whose multigraph multiplicities changed (clustering input)
    graph_touched: int
    cluster_mode: str
    cluster_fallback_reason: str | None
    churn: float
    domains: int
    domains_reused: int
    seconds: float
    stage_seconds: dict[str, float]


@dataclass(frozen=True)
class DeltaOutcome:
    """A refreshed generation plus its accounting."""

    artifacts: OfflineArtifacts
    stats: DeltaRefreshStats


class DeltaRefresh:
    """Carries offline state forward and absorbs delta batches.

    One instance is pinned to the :class:`OfflineArtifacts` generation
    it was seeded from and mutates its private state on every
    :meth:`refresh`; :attr:`artifacts` always names the latest
    generation it produced (callers use identity against the published
    snapshot to detect that a full rebuild happened elsewhere and this
    refresher must be re-seeded).  Not thread-safe on its own — the
    owner serialises refreshes (:class:`~repro.core.esharp.ESharp` uses
    its swap lock).

    A deliberate trade-off: the *expensive* stages (ingest, join,
    clustering) are delta-sized, but each refresh still rebuilds the
    published graph containers and copies the log store — O(corpus)
    passes with tiny constants (~20 ms at standard scale against a
    ~2 s batch rebuild).  Published snapshots must be immutable while
    concurrent readers hold them, so mutating the previous generation's
    graphs in place is not an option; container rebuilds buy that
    isolation cheaply.
    """

    def __init__(
        self,
        config: ESharpConfig,
        artifacts: OfflineArtifacts,
        delta_config: DeltaRefreshConfig | None = None,
        *,
        maintained_store: QueryLogStore | None = None,
        maintained_edges: dict[tuple[str, str], float] | None = None,
    ) -> None:
        from dataclasses import replace as dc_replace

        self.config = config
        self.delta_config = delta_config or DeltaRefreshConfig()
        self.artifacts = artifacts
        clustering = config.clustering
        if config.use_sql_clustering and clustering.merge_mode != "pointer":
            # the SQL runner coerces pointer semantics (the literal
            # Figure 4 reading, cross-checked bit-identical against the
            # parallel detector in the tests); the delta path must make
            # the same coercion or its full-recluster fallback would
            # diverge from what refresh_domains builds
            clustering = dc_replace(clustering, merge_mode="pointer")
        self._clusterer = IncrementalClusterer(
            clustering, self.delta_config.incremental
        )
        # private working state, seeded from the artifacts — or, on a
        # cross-process resume, from the persisted maintained state (the
        # maintained log can run ahead of the published artifacts when
        # serving-invisible deltas were folded in without a publish)
        self._store = (
            maintained_store.copy()
            if maintained_store is not None
            else artifacts.store.copy()
        )
        if maintained_edges is not None:
            edges = dict(maintained_edges)
        else:
            edges = {(u, v): w for u, v, w in artifacts.weighted_graph.edges()}
        self._join = JoinState(
            build_click_vectors(self._store), edges, config.similarity
        )
        self._graph = artifacts.multigraph
        self._partition = artifacts.partition
        self._domain_store = artifacts.domain_store

    # -- persistence surface (repro.artifact saves/loads this pair) --------

    @property
    def maintained_store(self) -> QueryLogStore:
        """The maintained log window (read-only; includes unpublished ingest)."""
        return self._store

    @property
    def maintained_edges(self) -> dict[tuple[str, str], float]:
        """The resumable join's live edge dict (read-only)."""
        return self._join.edges

    # -- the one entry point ----------------------------------------------

    def refresh(
        self, delta: QueryLogStore | Iterable[Impression]
    ) -> DeltaOutcome:
        """Absorb one delta batch; returns the new offline generation."""
        clock = StageClock()

        with clock.stage("DeltaIngest"):
            delta_store = self._as_store(delta)
            base_supported = self._store.supported_queries()
            delta_click_queries = set(
                delta_store.click_vectors(supported_only=False)
            )
            self._store.merge(delta_store)
            union_supported = self._store.supported_queries()
            newly_supported = union_supported - base_supported
            dirty = newly_supported | (delta_click_queries & union_supported)
            dirty_vectors = {
                query: SparseVector(components)
                for query, components in self._store.click_vectors_for(
                    dirty
                ).items()
            }

        with clock.stage("DeltaJoin"):
            edge_delta = self._join.apply_delta(dirty_vectors)

        with clock.stage("DeltaGraph"):
            edges = self._join.edges
            endpoints = {vertex for pair in edges for vertex in pair}
            isolated = self._join.queries - endpoints
            multigraph = discretize(
                edges, scale=DEFAULT_DISCRETIZE_SCALE, vertices=isolated
            )
            touched: set[str] = set(edge_delta.new_queries)
            for left, right in edge_delta.pairs():
                if self._graph.multiplicity(
                    left, right
                ) != multigraph.multiplicity(left, right):
                    touched.add(left)
                    touched.add(right)

        with clock.stage("DeltaCluster"):
            outcome = self._clusterer.update(
                multigraph,
                self._partition,
                touched,
                previous_total_edges=self._graph.total_edges,
            )

        with clock.stage("DeltaDomains"):
            previous_domains = self._domain_store
            domain_store = DomainStore.rebuilt(
                outcome.partition, previous_domains
            )
            reused = sum(
                1
                for domain in domain_store.domains()
                if previous_domains.lookup(domain.domain_id) is domain
            )
            weighted = WeightedGraph.from_edges(edges)
            for vertex in isolated:
                weighted.add_vertex(vertex)

        artifacts = OfflineArtifacts(
            world=self.artifacts.world,
            store=self._store.copy(),
            weighted_graph=weighted,
            multigraph=multigraph,
            partition=outcome.partition,
            domain_store=domain_store,
            clustering_history=outcome.history,
            clock=clock,
        )
        stats = DeltaRefreshStats(
            impressions=delta_store.impressions,
            dirty_queries=len(edge_delta.touched_queries),
            new_queries=len(edge_delta.new_queries),
            edges_added=len(edge_delta.added),
            edges_changed=len(edge_delta.changed),
            edges_removed=len(edge_delta.removed),
            hub_flips=edge_delta.hub_flips,
            recomputed_pairs=edge_delta.recomputed_pairs,
            graph_touched=len(touched),
            cluster_mode=outcome.mode,
            cluster_fallback_reason=outcome.fallback_reason,
            churn=outcome.churn,
            domains=domain_store.domain_count,
            domains_reused=reused,
            seconds=clock.total_seconds(),
            stage_seconds={
                report.name: report.seconds for report in clock.reports
            },
        )

        # advance the maintained generation
        self.artifacts = artifacts
        self._graph = multigraph
        self._partition = outcome.partition
        self._domain_store = domain_store
        return DeltaOutcome(artifacts=artifacts, stats=stats)

    # -- helpers -----------------------------------------------------------

    def _as_store(
        self, delta: QueryLogStore | Iterable[Impression]
    ) -> QueryLogStore:
        if isinstance(delta, QueryLogStore):
            return delta
        store = QueryLogStore(min_support=self._store.min_support)
        store.extend(delta)
        return store

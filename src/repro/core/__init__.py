"""S9 — The assembled e# system (§2, Figure 1).

:class:`repro.core.ESharp` wires the offline stage (query log → similarity
graph → communities → domain store) to the online stage (expansion + Pal &
Counts detection) behind one facade, with the resource accounting that
reproduces Table 9.
"""

from repro.core.config import ESharpConfig
from repro.core.offline import OfflinePipeline, OfflineArtifacts
from repro.core.online import OnlinePipeline
from repro.core.esharp import ESharp
from repro.core.incremental import (
    DeltaOutcome,
    DeltaRefresh,
    DeltaRefreshConfig,
    DeltaRefreshStats,
)

__all__ = [
    "DeltaOutcome",
    "DeltaRefresh",
    "DeltaRefreshConfig",
    "DeltaRefreshStats",
    "ESharp",
    "ESharpConfig",
    "OfflineArtifacts",
    "OfflinePipeline",
    "OnlinePipeline",
]

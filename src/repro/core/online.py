"""The online stage of Figure 1: expansion + detection, with timing.

Table 9 reports the online stages at interactive latencies (expansion
< 100 ms, detection < 1 s); :class:`OnlinePipeline` measures both per
query so the Table 9 bench can report our equivalents.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.detector.palcounts import PalCountsDetector
from repro.detector.ranking import RankedExpert
from repro.expansion.domainstore import DomainStore
from repro.expansion.expander import ExpansionResult, QueryExpander
from repro.microblog.platform import MicroblogPlatform


@dataclass
class TimedAnswer:
    """One answered query with stage latencies."""

    query: str
    experts: list[RankedExpert]
    terms: list[str]
    expansion_seconds: float
    detection_seconds: float


class OnlinePipeline:
    """Holds the two online components and answers queries."""

    def __init__(
        self,
        domain_store: DomainStore,
        detector: PalCountsDetector,
    ) -> None:
        self.domain_store = domain_store
        self.detector = detector
        self.expander = QueryExpander(domain_store, detector)

    @property
    def platform(self) -> MicroblogPlatform:
        return self.detector.platform

    def answer(self, query: str, min_zscore: float | None = None) -> TimedAnswer:
        """Run the full online path for one query, timing each stage."""
        started = time.perf_counter()
        terms, _ = self.expander.expand_terms(query)
        expansion_seconds = time.perf_counter() - started

        started = time.perf_counter()
        result = self.expander.detect(query, min_zscore)
        detection_seconds = time.perf_counter() - started

        return TimedAnswer(
            query=query,
            experts=result.experts,
            terms=terms,
            expansion_seconds=expansion_seconds,
            detection_seconds=detection_seconds,
        )

    def score(self, query: str) -> ExpansionResult:
        """Unthresholded scored union pool (sweep-friendly)."""
        return self.expander.score(query)

"""The offline stage of Figure 1: log → graph → communities → domain store.

Each step runs under a :class:`repro.utils.timing.StageClock` so the run
produces the four columns of Table 9 (workers, runtime, bytes read, bytes
written) for the extraction and clustering rows.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.community.parallel import (
    IterationTrace,
    ParallelCommunityDetector,
)
from repro.community.partition import Partition
from repro.community.sql_runner import SqlCommunityDetector
from repro.core.config import ESharpConfig
from repro.expansion.domainstore import DomainStore
from repro.querylog.generator import QueryLogGenerator
from repro.querylog.store import QueryLogStore
from repro.simgraph.extract import extract_similarity_graph
from repro.simgraph.graph import MultiGraph, WeightedGraph
from repro.utils.timing import StageClock
from repro.worldmodel.builder import build_world
from repro.worldmodel.model import WorldModel


@dataclass
class OfflineArtifacts:
    """Everything the offline stage hands to the online stage."""

    world: WorldModel
    store: QueryLogStore
    weighted_graph: WeightedGraph
    multigraph: MultiGraph
    partition: Partition
    domain_store: DomainStore
    clustering_history: list[IterationTrace]
    clock: StageClock


class OfflinePipeline:
    """Runs §4 end to end."""

    def __init__(self, config: ESharpConfig | None = None) -> None:
        self.config = config or ESharpConfig()

    def run(
        self,
        world: WorldModel | None = None,
        store: QueryLogStore | None = None,
    ) -> OfflineArtifacts:
        """Run the offline stage; ``store`` injects a pre-existing log.

        The delta-refresh equivalence tests run this pipeline on an
        explicit union log (base + delta) instead of regenerating one
        from configuration — the paper's production system likewise
        reads a log it did not produce.
        """
        config = self.config
        clock = StageClock()
        world = world or build_world(config.world)

        # -- the raw log (the paper reads a pre-existing production log; we
        #    account generation outside the Table 9 stages)
        if store is None:
            generator = QueryLogGenerator(world, config.querylog)
            store = generator.fill_store()

        # -- extraction (Table 9 row 1); the row's `workers` is the pool
        #    the similarity join actually used, not the requested width
        with clock.stage("Extraction") as report:
            extraction = extract_similarity_graph(
                store, config.similarity, workers=config.offline_workers
            )
            report.workers = extraction.report.workers
            report.bytes_read = extraction.report.bytes_read
            report.bytes_written = extraction.report.bytes_written

        # -- clustering (Table 9 row 2; both detectors run serially)
        with clock.stage("Clustering", workers=1) as report:
            report.bytes_read = extraction.multigraph.storage_bytes()
            if config.use_sql_clustering:
                sql_detector = SqlCommunityDetector(
                    extraction.multigraph, config.clustering
                )
                partition = sql_detector.run()
                history = sql_detector.history
            else:
                detector = ParallelCommunityDetector(
                    extraction.multigraph, config.clustering
                )
                partition = detector.run()
                history = detector.history
            domain_store = DomainStore.from_partition(partition)
            report.bytes_written = domain_store.storage_bytes()

        return OfflineArtifacts(
            world=world,
            store=store,
            weighted_graph=extraction.weighted,
            multigraph=extraction.multigraph,
            partition=partition,
            domain_store=domain_store,
            clustering_history=history,
            clock=clock,
        )

"""The offline stage of Figure 1 as a staged, checkpointable dataflow.

The pipeline is no longer an opaque in-process sequence: it is a fixed
DAG of named stages (``world → log → extract → cluster → domains``),
each declaring the context keys it consumes and produces.  A build can
be handed a *checkpoint* (an :class:`~repro.artifact.ArtifactBuilder`);
each stage's outputs are then persisted the moment the stage completes,
and a re-run resumes from the longest prefix of stages already on disk
whose artifacts validate — the paper's production posture, where every
map-reduce stage materialises its output before the next one starts.

Each computing stage still runs under a
:class:`repro.utils.timing.StageClock` so the run produces the four
columns of Table 9 (workers, runtime, bytes read, bytes written) for
the extraction and clustering rows; stage reports are checkpointed too,
so a resumed or warm-started run keeps the original build's accounting.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.community.parallel import (
    IterationTrace,
    ParallelCommunityDetector,
)
from repro.community.partition import Partition
from repro.community.sql_runner import SqlCommunityDetector
from repro.core.config import ESharpConfig
from repro.expansion.domainstore import DomainStore
from repro.querylog.generator import QueryLogGenerator
from repro.querylog.store import QueryLogStore
from repro.simgraph.extract import extract_similarity_graph
from repro.simgraph.graph import MultiGraph, WeightedGraph
from repro.utils.timing import StageClock, StageReport
from repro.worldmodel.builder import build_world
from repro.worldmodel.model import WorldModel


@dataclass(frozen=True)
class StageSpec:
    """One node of the offline dataflow: name plus declared data keys.

    ``checkpointable=False`` marks stages whose output is regenerated
    deterministically from configuration instead of persisted (the world
    model); they run on every build but never invalidate the resume
    prefix of the stages after them.
    """

    name: str
    inputs: tuple[str, ...]
    outputs: tuple[str, ...]
    checkpointable: bool = True


#: the offline dataflow, in execution order; artifact persistence and
#: warm-start loading iterate this same table, so the set of stage files
#: on disk can never drift from the pipeline definition
OFFLINE_STAGES: tuple[StageSpec, ...] = (
    StageSpec("world", (), ("world",), checkpointable=False),
    StageSpec("log", ("world",), ("store",)),
    StageSpec("extract", ("store",), ("weighted_graph", "multigraph")),
    StageSpec("cluster", ("multigraph",), ("partition", "clustering_history")),
    StageSpec("domains", ("partition",), ("domain_store",)),
)


class OfflineArtifacts:
    """Everything the offline stage hands to the online stage.

    ``world``, ``store``, ``weighted_graph`` and ``multigraph`` may each
    be supplied directly (a fresh build has them in hand) or as a
    zero-argument ``*_factory`` — the warm-start path passes factories
    so a load pays a decode only if something actually dereferences the
    attribute.  Pure serving touches none of them: queries run on the
    domain store and the detector's corpus, so replicas come up without
    materialising the query log or the similarity graphs (evaluation,
    QA generation and delta refresh do dereference, and pay then).
    """

    def __init__(
        self,
        *,
        partition: Partition,
        domain_store: DomainStore,
        clustering_history: list[IterationTrace],
        clock: StageClock,
        store: QueryLogStore | None = None,
        store_factory=None,
        weighted_graph: WeightedGraph | None = None,
        weighted_graph_factory=None,
        multigraph: MultiGraph | None = None,
        multigraph_factory=None,
        world: WorldModel | None = None,
        world_factory=None,
    ) -> None:
        for name, value, factory in (
            ("world", world, world_factory),
            ("store", store, store_factory),
            ("weighted_graph", weighted_graph, weighted_graph_factory),
            ("multigraph", multigraph, multigraph_factory),
        ):
            if (value is None) == (factory is None):
                raise ValueError(
                    f"provide exactly one of {name} / {name}_factory"
                )
        self._world = world
        self._world_factory = world_factory
        self._store = store
        self._store_factory = store_factory
        self._weighted_graph = weighted_graph
        self._weighted_graph_factory = weighted_graph_factory
        self._multigraph = multigraph
        self._multigraph_factory = multigraph_factory
        self.partition = partition
        self.domain_store = domain_store
        self.clustering_history = clustering_history
        self.clock = clock

    # benign races below: every factory is deterministic (the world from
    # config, the others from checksummed artifact records), so two
    # threads racing a first dereference build equal values

    @property
    def world(self) -> WorldModel:
        built = self._world
        if built is None:
            built = self._world = self._world_factory()
        return built

    @property
    def store(self) -> QueryLogStore:
        value = self._store
        if value is None:
            value = self._store = self._store_factory()
        return value

    @property
    def weighted_graph(self) -> WeightedGraph:
        value = self._weighted_graph
        if value is None:
            value = self._weighted_graph = self._weighted_graph_factory()
        return value

    @property
    def multigraph(self) -> MultiGraph:
        value = self._multigraph
        if value is None:
            value = self._multigraph = self._multigraph_factory()
        return value


class OfflinePipeline:
    """Runs §4 end to end, stage by stage."""

    def __init__(self, config: ESharpConfig | None = None) -> None:
        self.config = config or ESharpConfig()

    def run(
        self,
        world: WorldModel | None = None,
        store: QueryLogStore | None = None,
        checkpoint=None,
    ) -> OfflineArtifacts:
        """Run the offline dataflow; ``store`` injects a pre-existing log.

        The delta-refresh equivalence tests run this pipeline on an
        explicit union log (base + delta) instead of regenerating one
        from configuration — the paper's production system likewise
        reads a log it did not produce.

        ``checkpoint`` is an :class:`~repro.artifact.ArtifactBuilder`
        (or any object with its ``has_stage``/``load_stage``/
        ``save_stage`` protocol): completed stages are persisted as they
        finish, and stages already checkpointed — while every earlier
        checkpointable stage was also loaded, so their inputs are the
        artifacts they were computed from — are loaded instead of
        recomputed.  A stage that fails to load (corrupt or missing
        file) is recomputed and re-persisted, as are all stages after
        it.  Injected ``world``/``store`` bypass the checkpoint
        entirely — no reuse *and no writes*: the on-disk artifacts
        describe the *configured* inputs, and persisting stages derived
        from an injected log next to a stage file generated from
        configuration would poison the directory for future resumes.
        """
        from repro.artifact.errors import ArtifactError

        clock = StageClock()
        context: dict[str, object] = {}
        injected: set[str] = set()
        if world is not None:
            context["world"] = world
            injected.add("world")
        if store is not None:
            context["store"] = store
            injected.add("log")

        #: injected inputs disable the checkpoint for both reads and
        #: writes — its artifacts describe the configured inputs only
        if injected:
            checkpoint = None

        #: True while every checkpointable stage so far was loaded from
        #: the checkpoint — the moment one stage computes, every later
        #: checkpointed output is potentially stale and must recompute
        resumable = checkpoint is not None
        for spec in OFFLINE_STAGES:
            if spec.name in injected:
                continue
            if not spec.checkpointable:
                self._run_stage(spec, context, clock)
                continue
            if resumable and checkpoint.has_stage(spec.name, spec.outputs):
                try:
                    values, report = checkpoint.load_stage(
                        spec.name, spec.outputs
                    )
                except ArtifactError:
                    pass  # damaged checkpoint: fall through and recompute
                else:
                    context.update(values)
                    if report is not None:
                        clock.record(report)
                    continue
            resumable = False
            report = self._run_stage(spec, context, clock)
            if checkpoint is not None:
                checkpoint.save_stage(
                    spec.name,
                    {output: context[output] for output in spec.outputs},
                    report,
                )

        return OfflineArtifacts(
            world=context["world"],
            store=context["store"],
            weighted_graph=context["weighted_graph"],
            multigraph=context["multigraph"],
            partition=context["partition"],
            domain_store=context["domain_store"],
            clustering_history=context["clustering_history"],
            clock=clock,
        )

    # -- stage bodies ------------------------------------------------------

    def _run_stage(
        self, spec: StageSpec, context: dict, clock: StageClock
    ) -> StageReport | None:
        """Execute one stage; returns the clock report it recorded."""
        runner = getattr(self, f"_stage_{spec.name}")
        return runner(context, clock)

    def _stage_world(self, context: dict, clock: StageClock) -> None:
        context["world"] = build_world(self.config.world)
        return None

    def _stage_log(self, context: dict, clock: StageClock) -> None:
        # the raw log (the paper reads a pre-existing production log; we
        # account generation outside the Table 9 stages)
        generator = QueryLogGenerator(context["world"], self.config.querylog)
        context["store"] = generator.fill_store()
        return None

    def _stage_extract(
        self, context: dict, clock: StageClock
    ) -> StageReport:
        # extraction (Table 9 row 1); the row's `workers` is the pool
        # the similarity join actually used, not the requested width
        with clock.stage("Extraction") as report:
            extraction = extract_similarity_graph(
                context["store"],
                self.config.similarity,
                workers=self.config.offline_workers,
            )
            report.workers = extraction.report.workers
            report.bytes_read = extraction.report.bytes_read
            report.bytes_written = extraction.report.bytes_written
        context["weighted_graph"] = extraction.weighted
        context["multigraph"] = extraction.multigraph
        return report

    def _stage_cluster(
        self, context: dict, clock: StageClock
    ) -> StageReport:
        # clustering (Table 9 row 2; both detectors run serially)
        multigraph = context["multigraph"]
        with clock.stage("Clustering", workers=1) as report:
            report.bytes_read = multigraph.storage_bytes()
            if self.config.use_sql_clustering:
                sql_detector = SqlCommunityDetector(
                    multigraph, self.config.clustering
                )
                partition = sql_detector.run()
                history = sql_detector.history
            else:
                detector = ParallelCommunityDetector(
                    multigraph, self.config.clustering
                )
                partition = detector.run()
                history = detector.history
        context["partition"] = partition
        context["clustering_history"] = history
        return report

    def _stage_domains(
        self, context: dict, clock: StageClock
    ) -> StageReport:
        # domain materialisation folds into the Table 9 clustering row
        # (the clock merges same-name reports), matching the paper's
        # two-row offline accounting
        with clock.stage("Clustering", workers=1) as report:
            domain_store = DomainStore.from_partition(context["partition"])
            report.bytes_written = domain_store.storage_bytes()
        context["domain_store"] = domain_store
        return report

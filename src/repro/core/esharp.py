"""The e# facade — the library's main entry point.

>>> from repro import ESharp, ESharpConfig
>>> system = ESharp(ESharpConfig.small())   # doctest: +SKIP
>>> system.build()                          # doctest: +SKIP
>>> experts = system.find_experts("columbus bears")  # doctest: +SKIP

``build()`` runs the offline stage (and generates the microblog corpus);
``find_experts`` / ``find_experts_baseline`` answer queries with and
without expansion, which is precisely the comparison of §6.2.

Serving state lives in one atomically hot-swappable
:class:`~repro.serving.snapshot.ServiceSnapshot` — offline artifacts and
online pipeline always change together, so a concurrent reader can never
observe a fresh domain store paired with a stale pipeline (or vice
versa).  ``serve()`` wraps the built system in the concurrent
:class:`~repro.serving.service.ExpertService`.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING

from repro.core.config import ESharpConfig
from repro.core.offline import OfflineArtifacts, OfflinePipeline
from repro.core.online import OnlinePipeline, TimedAnswer
from repro.detector.palcounts import PalCountsDetector
from repro.detector.ranking import RankedExpert
from repro.microblog.generator import generate_platform
from repro.microblog.platform import MicroblogPlatform
from repro.serving.snapshot import ServiceSnapshot, SnapshotHolder

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.serving.service import ExpertService, ServiceConfig


class NotBuiltError(RuntimeError):
    """Raised when the online API is used before :meth:`ESharp.build`."""


class ESharp:
    """End-to-end e# over simulated substrates."""

    def __init__(self, config: ESharpConfig | None = None) -> None:
        self.config = config or ESharpConfig()
        #: the single publish/read point for all swappable serving state
        self.snapshots = SnapshotHolder()
        #: serialises build/refresh (readers never take this lock)
        self._swap_lock = threading.Lock()
        self._platform: MicroblogPlatform | None = None
        self._detector: PalCountsDetector | None = None
        #: incremental-refresh state, pinned to the generation it follows
        self._delta_refresher = None
        #: snapshot version the refresher's state is synced to; any other
        #: writer (build, full refresh) moves the version and forces a
        #: re-seed from the published artifacts
        self._delta_refresher_version = 0

    # -- lifecycle --------------------------------------------------------------

    def build(self) -> "ESharp":
        """Run the offline stage and materialise the microblog corpus."""
        with self._swap_lock:
            offline = OfflinePipeline(self.config).run()
            platform = generate_platform(offline.world, self.config.microblog)
            detector = PalCountsDetector(
                platform,
                ranking=self.config.ranking,
                normalization=self.config.normalization,
            )
            # aggregate the columnar candidate index now, as part of the
            # offline stage, so the first query never pays the build
            if detector.engine is not None:
                detector.engine.refresh()
            self._platform = platform
            self._detector = detector
            self.snapshots.publish(
                offline, OnlinePipeline(offline.domain_store, detector)
            )
        return self

    @property
    def is_built(self) -> bool:
        return self.snapshots.get() is not None

    def _require_snapshot(self) -> ServiceSnapshot:
        snapshot = self.snapshots.get()
        if snapshot is None:
            raise NotBuiltError(
                "call ESharp.build() before querying; the offline stage has "
                "not produced a domain collection yet"
            )
        return snapshot

    def _require_built(self) -> OnlinePipeline:
        return self._require_snapshot().pipeline

    # -- artifacts -----------------------------------------------------------------

    @property
    def snapshot(self) -> ServiceSnapshot:
        """The current serving generation (pin it for consistent reads)."""
        return self._require_snapshot()

    @property
    def offline(self) -> OfflineArtifacts:
        return self._require_snapshot().offline

    @property
    def platform(self) -> MicroblogPlatform:
        if self._platform is None:
            raise NotBuiltError("platform exists only after build()")
        return self._platform

    @property
    def detector(self) -> PalCountsDetector:
        if self._detector is None:
            raise NotBuiltError("detector exists only after build()")
        return self._detector

    @property
    def online(self) -> OnlinePipeline:
        return self._require_built()

    # -- the §6.2 comparison ----------------------------------------------------

    def find_experts(
        self, query: str, min_zscore: float | None = None
    ) -> list[RankedExpert]:
        """e#: expansion + detection (the paper's contribution)."""
        return self._require_built().answer(query, min_zscore).experts

    def find_experts_baseline(
        self, query: str, min_zscore: float | None = None
    ) -> list[RankedExpert]:
        """Baseline: Pal & Counts on the raw query (no expansion)."""
        detector = self.detector
        return detector.detect(query, min_zscore)

    def answer(self, query: str, min_zscore: float | None = None) -> TimedAnswer:
        """Full timed online answer (used by the Table 9 bench)."""
        return self._require_built().answer(query, min_zscore)

    def expansion_terms(self, query: str) -> list[str]:
        """The §5 expansion for ``query`` (query itself when unmatched)."""
        terms, _ = self._require_built().expander.expand_terms(query)
        return terms

    # -- serving ------------------------------------------------------------------

    def serve(self, config: "ServiceConfig | None" = None) -> "ExpertService":
        """Wrap the built system in a concurrent :class:`ExpertService`."""
        from repro.serving.service import ExpertService

        self._require_snapshot()
        return ExpertService(self, config)

    # -- §6.3: "The offline part of our system runs weekly" -----------------

    def refresh_domains(self, querylog_config=None) -> "ESharp":
        """Re-run the offline stage against a fresh search log.

        The production system rebuilds its domain collection weekly from
        the latest month of logs while the online serving path keeps
        running.  This re-executes extraction + clustering (optionally
        under a new :class:`~repro.querylog.QueryLogConfig`, e.g. a new
        seed standing in for a new week of traffic) and publishes the
        result as one new :class:`ServiceSnapshot` — a single atomic
        swap, so concurrent readers see either the old generation or the
        new one, never a mixture.  The microblog corpus and detector
        caches are untouched.
        """
        from dataclasses import replace

        self._require_snapshot()
        config = self.config
        if querylog_config is not None:
            config = replace(config, querylog=querylog_config)
        with self._swap_lock:
            # re-read the generation inside the lock: a concurrent build()
            # may have republished, and pairing its detector with a world
            # pinned outside the lock would mix generations
            snapshot = self._require_snapshot()
            offline = OfflinePipeline(config).run(world=snapshot.offline.world)
            self.snapshots.publish(
                offline, OnlinePipeline(offline.domain_store, self._detector)
            )
        return self

    def refresh_domains_delta(self, delta, delta_config=None):
        """Incrementally fold a delta batch of impressions into serving.

        The batch :meth:`refresh_domains` regenerates and re-clusters
        the entire log even when only a sliver of new traffic arrived;
        this path hands the new impressions (a
        :class:`~repro.querylog.store.QueryLogStore` or an iterable of
        :class:`~repro.querylog.records.Impression`) to a maintained
        :class:`~repro.core.incremental.DeltaRefresh` and publishes the
        delta-sized rebuild as one atomic snapshot swap.  The refresher
        is synced to the published version — a full rebuild (or build)
        in between moves the version and re-seeds it from the published
        artifacts.

        A delta that changes nothing serving-visible — no similarity
        edge added, reweighted or removed, and no partition change —
        is folded into the maintained log **without publishing**: a
        version bump would rotate every ``(version, query, threshold)``
        result-cache key over byte-identical serving state, collapsing
        a warm cache for zero data change.

        Returns the :class:`~repro.core.incremental.DeltaRefreshStats`
        of the absorbed batch.
        """
        from repro.core.incremental import DeltaRefresh

        self._require_snapshot()
        with self._swap_lock:
            snapshot = self._require_snapshot()
            refresher = self._delta_refresher
            synced = (
                refresher is not None
                and self._delta_refresher_version == snapshot.version
            )
            if not synced or (
                delta_config is not None
                and refresher.delta_config != delta_config
            ):
                # a synced refresher may hold serving-invisible ingest
                # that was never published; re-seeding from its own
                # artifacts (rather than the snapshot's) keeps those
                # impressions in the maintained log window
                base_artifacts = (
                    refresher.artifacts if synced else snapshot.offline
                )
                refresher = DeltaRefresh(
                    self.config, base_artifacts, delta_config
                )
                self._delta_refresher = refresher
            try:
                outcome = refresher.refresh(delta)
            except BaseException:
                # a partially-applied refresh (store merged, join not
                # repaired, ...) must never be resumed: drop the state so
                # the next call re-seeds from the published artifacts
                self._delta_refresher = None
                raise
            stats = outcome.stats
            changed = (
                stats.edges_added
                or stats.edges_changed
                or stats.edges_removed
                or stats.cluster_mode != "unchanged"
            )
            if changed:
                self.snapshots.publish(
                    outcome.artifacts,
                    OnlinePipeline(
                        outcome.artifacts.domain_store, self._detector
                    ),
                    expected_version=snapshot.version,
                )
            self._delta_refresher_version = self.snapshots.version
        return outcome.stats

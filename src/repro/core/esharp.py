"""The e# facade — the library's main entry point.

>>> from repro import ESharp, ESharpConfig
>>> system = ESharp(ESharpConfig.small())   # doctest: +SKIP
>>> system.build()                          # doctest: +SKIP
>>> experts = system.find_experts("columbus bears")  # doctest: +SKIP

``build()`` runs the offline stage (and generates the microblog corpus);
``find_experts`` / ``find_experts_baseline`` answer queries with and
without expansion, which is precisely the comparison of §6.2.
"""

from __future__ import annotations

from repro.core.config import ESharpConfig
from repro.core.offline import OfflineArtifacts, OfflinePipeline
from repro.core.online import OnlinePipeline, TimedAnswer
from repro.detector.palcounts import PalCountsDetector
from repro.detector.ranking import RankedExpert
from repro.microblog.generator import generate_platform
from repro.microblog.platform import MicroblogPlatform


class NotBuiltError(RuntimeError):
    """Raised when the online API is used before :meth:`ESharp.build`."""


class ESharp:
    """End-to-end e# over simulated substrates."""

    def __init__(self, config: ESharpConfig | None = None) -> None:
        self.config = config or ESharpConfig()
        self._offline: OfflineArtifacts | None = None
        self._platform: MicroblogPlatform | None = None
        self._online: OnlinePipeline | None = None
        self._detector: PalCountsDetector | None = None

    # -- lifecycle --------------------------------------------------------------

    def build(self) -> "ESharp":
        """Run the offline stage and materialise the microblog corpus."""
        offline = OfflinePipeline(self.config).run()
        platform = generate_platform(offline.world, self.config.microblog)
        detector = PalCountsDetector(
            platform,
            ranking=self.config.ranking,
            normalization=self.config.normalization,
        )
        self._offline = offline
        self._platform = platform
        self._detector = detector
        self._online = OnlinePipeline(offline.domain_store, detector)
        return self

    @property
    def is_built(self) -> bool:
        return self._online is not None

    def _require_built(self) -> OnlinePipeline:
        if self._online is None:
            raise NotBuiltError(
                "call ESharp.build() before querying; the offline stage has "
                "not produced a domain collection yet"
            )
        return self._online

    # -- artifacts -----------------------------------------------------------------

    @property
    def offline(self) -> OfflineArtifacts:
        if self._offline is None:
            raise NotBuiltError("offline artifacts exist only after build()")
        return self._offline

    @property
    def platform(self) -> MicroblogPlatform:
        if self._platform is None:
            raise NotBuiltError("platform exists only after build()")
        return self._platform

    @property
    def detector(self) -> PalCountsDetector:
        if self._detector is None:
            raise NotBuiltError("detector exists only after build()")
        return self._detector

    @property
    def online(self) -> OnlinePipeline:
        return self._require_built()

    # -- the §6.2 comparison ----------------------------------------------------

    def find_experts(
        self, query: str, min_zscore: float | None = None
    ) -> list[RankedExpert]:
        """e#: expansion + detection (the paper's contribution)."""
        return self._require_built().answer(query, min_zscore).experts

    def find_experts_baseline(
        self, query: str, min_zscore: float | None = None
    ) -> list[RankedExpert]:
        """Baseline: Pal & Counts on the raw query (no expansion)."""
        detector = self.detector
        return detector.detect(query, min_zscore)

    def answer(self, query: str, min_zscore: float | None = None) -> TimedAnswer:
        """Full timed online answer (used by the Table 9 bench)."""
        return self._require_built().answer(query, min_zscore)

    def expansion_terms(self, query: str) -> list[str]:
        """The §5 expansion for ``query`` (query itself when unmatched)."""
        terms, _ = self._require_built().expander.expand_terms(query)
        return terms

    # -- §6.3: "The offline part of our system runs weekly" -----------------

    def refresh_domains(self, querylog_config=None) -> "ESharp":
        """Re-run the offline stage against a fresh search log.

        The production system rebuilds its domain collection weekly from
        the latest month of logs while the online serving path keeps
        running.  This re-executes extraction + clustering (optionally
        under a new :class:`~repro.querylog.QueryLogConfig`, e.g. a new
        seed standing in for a new week of traffic) and swaps the domain
        store under the existing detector; the microblog corpus and
        detector caches are untouched.
        """
        from dataclasses import replace

        online = self._require_built()
        config = self.config
        if querylog_config is not None:
            config = replace(config, querylog=querylog_config)
        offline = OfflinePipeline(config).run(world=self.offline.world)
        self._offline = offline
        self._online = OnlinePipeline(offline.domain_store, online.detector)
        return self

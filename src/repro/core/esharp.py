"""The e# facade — the library's main entry point.

>>> from repro import ESharp, ESharpConfig
>>> system = ESharp(ESharpConfig.small())   # doctest: +SKIP
>>> system.build()                          # doctest: +SKIP
>>> experts = system.find_experts("columbus bears")  # doctest: +SKIP

``build()`` runs the offline stage (and generates the microblog corpus);
``find_experts`` / ``find_experts_baseline`` answer queries with and
without expansion, which is precisely the comparison of §6.2.

Serving state lives in one atomically hot-swappable
:class:`~repro.serving.snapshot.ServiceSnapshot` — offline artifacts and
online pipeline always change together, so a concurrent reader can never
observe a fresh domain store paired with a stale pipeline (or vice
versa).  ``serve()`` wraps the built system in the concurrent
:class:`~repro.serving.service.ExpertService`.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.config import ESharpConfig
from repro.core.offline import OfflineArtifacts, OfflinePipeline
from repro.core.online import OnlinePipeline, TimedAnswer
from repro.detector.palcounts import PalCountsDetector
from repro.detector.ranking import RankedExpert
from repro.microblog.generator import generate_platform
from repro.microblog.platform import MicroblogPlatform
from repro.serving.snapshot import ServiceSnapshot, SnapshotHolder

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.expansion.domainstore import DomainStore
    from repro.serving.service import ExpertService, ServiceConfig


@dataclass(frozen=True)
class StagedGeneration:
    """A fully-loaded serving generation that has NOT been published.

    The prepare half of two-phase promotion: :meth:`ESharp.stage_artifact`
    pays the whole load (artifact decode, corpus restore, candidate-index
    rebuild) without touching the published snapshot, and
    :meth:`ESharp.promote_staged` later flips it in with one CAS.  A
    fleet coordinator stages on every replica first and promotes only
    when all of them succeeded, so readers never observe a mixed-version
    fleet because one replica's disk was slow or its artifact corrupt.
    """

    version: int
    config: ESharpConfig
    offline: OfflineArtifacts
    pipeline: OnlinePipeline
    platform: MicroblogPlatform
    detector: PalCountsDetector


class NotBuiltError(RuntimeError):
    """Raised when the online API is used before :meth:`ESharp.build`."""


class ESharp:
    """End-to-end e# over simulated substrates."""

    def __init__(self, config: ESharpConfig | None = None) -> None:
        self.config = config or ESharpConfig()
        #: the single publish/read point for all swappable serving state
        self.snapshots = SnapshotHolder()
        #: serialises build/refresh (readers never take this lock)
        self._swap_lock = threading.Lock()
        self._platform: MicroblogPlatform | None = None
        self._detector: PalCountsDetector | None = None
        #: incremental-refresh state, pinned to the generation it follows
        self._delta_refresher = None
        #: snapshot version the refresher's state is synced to; any other
        #: writer (build, full refresh) moves the version and forces a
        #: re-seed from the published artifacts
        self._delta_refresher_version = 0

    # -- lifecycle --------------------------------------------------------------

    def build(
        self, artifact_dir=None, *, legacy_columns: bool = True
    ) -> "ESharp":
        """Run the offline stage and materialise the microblog corpus.

        ``artifact_dir`` checkpoints the build: every completed stage is
        persisted there as a versioned artifact, a re-run resumes from
        the last completed stage, and the finished directory is loadable
        with :meth:`from_artifact` (warm start — no rebuild).
        ``legacy_columns=False`` drops the base64 column blobs from the
        persisted stages, leaving only the binary sidecar form.
        """
        builder = None
        with self._swap_lock:
            if artifact_dir is None:
                offline = OfflinePipeline(self.config).run()
                platform = generate_platform(
                    offline.world, self.config.microblog
                )
            else:
                from repro.artifact import ArtifactBuilder

                builder = ArtifactBuilder(
                    artifact_dir, self.config, legacy_columns=legacy_columns
                )
                offline = OfflinePipeline(self.config).run(checkpoint=builder)
                platform = builder.load_corpus()
                if platform is None:
                    platform = generate_platform(
                        offline.world, self.config.microblog
                    )
                    builder.save_corpus(platform)
            detector = PalCountsDetector(
                platform,
                ranking=self.config.ranking,
                normalization=self.config.normalization,
            )
            # aggregate the columnar candidate index now, as part of the
            # offline stage, so the first query never pays the build;
            # a checkpointed index (same platform mutation count) is
            # restored instead of re-aggregated
            if detector.engine is not None:
                restored = False
                if builder is not None:
                    packed = builder.load_engine()
                    if packed is not None:
                        restored = detector.engine.restore_packed(*packed)
                if not restored:
                    detector.engine.refresh()
                    if builder is not None:
                        builder.save_engine(detector.engine.export_packed())
            self._platform = platform
            self._detector = detector
            self.snapshots.publish(
                offline, OnlinePipeline(offline.domain_store, detector)
            )
            if builder is not None:
                # a fresh build has no incremental-refresh state: drop any
                # stale stage a previous save left in the reused directory
                builder.drop_stage("refresher")
                if detector.engine is None:
                    builder.drop_stage("engine")
                builder.finalize(snapshot_version=self.snapshots.version)
        return self

    @classmethod
    def from_artifact(
        cls,
        path,
        expected_config: ESharpConfig | None = None,
        *,
        prefer_sidecar: bool = True,
    ) -> "ESharp":
        """Warm-start a system from an artifact directory (no rebuild).

        The offline artifacts, microblog corpus and (when present) the
        incremental refresher's join state are loaded byte-identically
        to the build that saved them; only the deterministic world model
        and the detector's derived candidate index are recomputed.  The
        snapshot is published at the version stamped in the manifest, so
        every replica loading the same artifact serves — and cache-keys
        — the same generation.  ``expected_config`` guards against
        loading an artifact built from a different config/seed
        (:class:`~repro.artifact.ArtifactMismatchError`).
        ``prefer_sidecar=False`` forces the legacy base64 decode path
        even when binary sidecars are present (benchmarks compare both).
        """
        from repro.artifact import load_artifact
        from repro.core.incremental import DeltaRefresh

        loaded = load_artifact(
            path, expected_config, prefer_sidecar=prefer_sidecar
        )
        system = cls(loaded.config)
        with system._swap_lock:
            detector = PalCountsDetector(
                loaded.platform,
                ranking=loaded.config.ranking,
                normalization=loaded.config.normalization,
            )
            if detector.engine is not None:
                restored = False
                if loaded.engine is not None:
                    restored = detector.engine.restore_packed(*loaded.engine)
                if not restored:
                    detector.engine.refresh()
            system._platform = loaded.platform
            system._detector = detector
            snapshot = system.snapshots.publish(
                loaded.offline,
                OnlinePipeline(loaded.offline.domain_store, detector),
                version=loaded.manifest.snapshot_version,
            )
            if loaded.refresher is not None:
                system._delta_refresher = DeltaRefresh(
                    loaded.config,
                    loaded.offline,
                    maintained_store=loaded.refresher.store,
                    maintained_edges=loaded.refresher.edges,
                )
                system._delta_refresher_version = snapshot.version
        return system

    def stage_artifact(
        self, path, expected_config: ESharpConfig | None = None
    ) -> StagedGeneration:
        """Load an artifact into memory WITHOUT publishing it (phase one).

        Does everything :meth:`from_artifact` does — decode, corpus
        restore, candidate-index restore-or-rebuild — but returns the
        generation as a :class:`StagedGeneration` instead of swapping it
        in, so the expensive load happens while the current snapshot
        keeps serving.  By default the artifact must match *this*
        system's config (the staged generation will share result-cache
        keyspace and ranking semantics with the running one); pass
        ``expected_config`` to override the expectation.
        """
        from repro.artifact import load_artifact

        if expected_config is None:
            expected_config = self.config
        loaded = load_artifact(path, expected_config)
        detector = PalCountsDetector(
            loaded.platform,
            ranking=loaded.config.ranking,
            normalization=loaded.config.normalization,
        )
        if detector.engine is not None:
            restored = False
            if loaded.engine is not None:
                restored = detector.engine.restore_packed(*loaded.engine)
            if not restored:
                detector.engine.refresh()
        return StagedGeneration(
            version=loaded.manifest.snapshot_version,
            config=loaded.config,
            offline=loaded.offline,
            pipeline=OnlinePipeline(loaded.offline.domain_store, detector),
            platform=loaded.platform,
            detector=detector,
        )

    def promote_staged(
        self, staged: StagedGeneration, expected_version: int | None = None
    ) -> ServiceSnapshot:
        """Atomically flip a staged generation into serving (phase two).

        One CAS under the swap lock: with ``expected_version`` given,
        the flip succeeds only if the published snapshot is still at
        that version (:class:`~repro.serving.snapshot.StaleSnapshotError`
        otherwise), and the staged manifest version must move the
        snapshot version strictly forward.  Queries in flight keep their
        pinned snapshot; new queries see the staged generation.  Any
        maintained incremental-refresh state is dropped — it followed
        the previous generation.
        """
        with self._swap_lock:
            snapshot = self.snapshots.publish(
                staged.offline,
                staged.pipeline,
                expected_version=expected_version,
                version=staged.version,
            )
            self.config = staged.config
            self._platform = staged.platform
            self._detector = staged.detector
            self._delta_refresher = None
            self._delta_refresher_version = 0
        return snapshot

    def export_domain_shard(self, policy, shard: int) -> "DomainStore":
        """The subset of the domain collection a fleet shard owns.

        ``policy`` is a sharding policy with ``shard_of_domain(domain_id)``
        (see :mod:`repro.fleet.sharding`); the result is a standalone
        :class:`~repro.expansion.domainstore.DomainStore` containing
        exactly the domains routed to ``shard``, suitable for a
        shard-local expansion tier.  Keyword→domain ownership is
        preserved because every keyword of a domain maps to the same
        shard under both built-in policies.
        """
        from repro.expansion.domainstore import DomainStore

        store = self._require_snapshot().offline.domain_store
        owned = [
            domain
            for domain in store.domains()
            if policy.shard_of_domain(domain.domain_id) == shard
        ]
        return DomainStore(owned)

    def save_artifact(self, path, *, legacy_columns: bool = True):
        """Persist the current serving generation as an artifact directory.

        Includes the incremental refresher's maintained join state when
        it is synced to the published snapshot, so
        :meth:`refresh_domains_delta` resumes across processes — the
        missing half of in-process incremental refresh.  Returns the
        written :class:`~repro.artifact.Manifest`.
        ``legacy_columns=False`` writes sidecar-only stage files.
        """
        from repro.artifact import RefresherState, save_artifact

        # Collect one consistent generation's references under the swap
        # lock, then write it outside: the captured objects (snapshot,
        # refresher state, exported index) are immutable once referenced,
        # so the serialization — seconds of disk I/O — must not stall
        # every concurrent refresh/promote behind it.
        with self._swap_lock:
            snapshot = self._require_snapshot()
            if self._platform is None:
                raise NotBuiltError("platform exists only after build()")
            platform = self._platform
            refresher = self._delta_refresher
            state = None
            if (
                refresher is not None
                and self._delta_refresher_version == snapshot.version
            ):
                state = RefresherState(
                    store=refresher.maintained_store,
                    edges=refresher.maintained_edges,
                )
            engine = None
            detector = self._detector
            if detector is not None and detector.engine is not None:
                packed_index, built_at = detector.engine.export_packed()
                if built_at == platform.mutation_count:
                    engine = (packed_index, built_at)
        return save_artifact(
            path,
            config=self.config,
            offline=snapshot.offline,
            platform=platform,
            snapshot_version=snapshot.version,
            refresher=state,
            engine=engine,
            legacy_columns=legacy_columns,
        )

    @property
    def is_built(self) -> bool:
        return self.snapshots.get() is not None

    def _require_snapshot(self) -> ServiceSnapshot:
        snapshot = self.snapshots.get()
        if snapshot is None:
            raise NotBuiltError(
                "call ESharp.build() before querying; the offline stage has "
                "not produced a domain collection yet"
            )
        return snapshot

    def _require_built(self) -> OnlinePipeline:
        return self._require_snapshot().pipeline

    # -- artifacts -----------------------------------------------------------------

    @property
    def snapshot(self) -> ServiceSnapshot:
        """The current serving generation (pin it for consistent reads)."""
        return self._require_snapshot()

    @property
    def offline(self) -> OfflineArtifacts:
        return self._require_snapshot().offline

    @property
    def platform(self) -> MicroblogPlatform:
        if self._platform is None:
            raise NotBuiltError("platform exists only after build()")
        return self._platform

    @property
    def detector(self) -> PalCountsDetector:
        if self._detector is None:
            raise NotBuiltError("detector exists only after build()")
        return self._detector

    @property
    def online(self) -> OnlinePipeline:
        return self._require_built()

    # -- the §6.2 comparison ----------------------------------------------------

    def find_experts(
        self, query: str, min_zscore: float | None = None
    ) -> list[RankedExpert]:
        """e#: expansion + detection (the paper's contribution)."""
        return self._require_built().answer(query, min_zscore).experts

    def find_experts_baseline(
        self, query: str, min_zscore: float | None = None
    ) -> list[RankedExpert]:
        """Baseline: Pal & Counts on the raw query (no expansion)."""
        detector = self.detector
        return detector.detect(query, min_zscore)

    def answer(self, query: str, min_zscore: float | None = None) -> TimedAnswer:
        """Full timed online answer (used by the Table 9 bench)."""
        return self._require_built().answer(query, min_zscore)

    def expansion_terms(self, query: str) -> list[str]:
        """The §5 expansion for ``query`` (query itself when unmatched)."""
        terms, _ = self._require_built().expander.expand_terms(query)
        return terms

    # -- serving ------------------------------------------------------------------

    def serve(self, config: "ServiceConfig | None" = None) -> "ExpertService":
        """Wrap the built system in a concurrent :class:`ExpertService`."""
        from repro.serving.service import ExpertService

        self._require_snapshot()
        return ExpertService(self, config)

    # -- §6.3: "The offline part of our system runs weekly" -----------------

    def refresh_domains(self, querylog_config=None) -> "ESharp":
        """Re-run the offline stage against a fresh search log.

        The production system rebuilds its domain collection weekly from
        the latest month of logs while the online serving path keeps
        running.  This re-executes extraction + clustering (optionally
        under a new :class:`~repro.querylog.QueryLogConfig`, e.g. a new
        seed standing in for a new week of traffic) and publishes the
        result as one new :class:`ServiceSnapshot` — a single atomic
        swap, so concurrent readers see either the old generation or the
        new one, never a mixture.  The microblog corpus and detector
        caches are untouched.
        """
        from dataclasses import replace

        self._require_snapshot()
        config = self.config
        if querylog_config is not None:
            config = replace(config, querylog=querylog_config)
        with self._swap_lock:
            # re-read the generation inside the lock: a concurrent build()
            # may have republished, and pairing its detector with a world
            # pinned outside the lock would mix generations
            snapshot = self._require_snapshot()
            offline = OfflinePipeline(config).run(world=snapshot.offline.world)
            self.snapshots.publish(
                offline, OnlinePipeline(offline.domain_store, self._detector)
            )
        return self

    def refresh_domains_delta(self, delta, delta_config=None):
        """Incrementally fold a delta batch of impressions into serving.

        The batch :meth:`refresh_domains` regenerates and re-clusters
        the entire log even when only a sliver of new traffic arrived;
        this path hands the new impressions (a
        :class:`~repro.querylog.store.QueryLogStore` or an iterable of
        :class:`~repro.querylog.records.Impression`) to a maintained
        :class:`~repro.core.incremental.DeltaRefresh` and publishes the
        delta-sized rebuild as one atomic snapshot swap.  The refresher
        is synced to the published version — a full rebuild (or build)
        in between moves the version and re-seeds it from the published
        artifacts.

        A delta that changes nothing serving-visible — no similarity
        edge added, reweighted or removed, and no partition change —
        is folded into the maintained log **without publishing**: a
        version bump would rotate every ``(version, query, threshold)``
        result-cache key over byte-identical serving state, collapsing
        a warm cache for zero data change.

        Returns the :class:`~repro.core.incremental.DeltaRefreshStats`
        of the absorbed batch.
        """
        from repro.core.incremental import DeltaRefresh

        self._require_snapshot()
        with self._swap_lock:
            snapshot = self._require_snapshot()
            refresher = self._delta_refresher
            synced = (
                refresher is not None
                and self._delta_refresher_version == snapshot.version
            )
            if not synced or (
                delta_config is not None
                and refresher.delta_config != delta_config
            ):
                # a synced refresher may hold serving-invisible ingest
                # that was never published; re-seeding from its own
                # artifacts (rather than the snapshot's) keeps those
                # impressions in the maintained log window
                base_artifacts = (
                    refresher.artifacts if synced else snapshot.offline
                )
                refresher = DeltaRefresh(
                    self.config, base_artifacts, delta_config
                )
                self._delta_refresher = refresher
            try:
                outcome = refresher.refresh(delta)
            except BaseException:
                # a partially-applied refresh (store merged, join not
                # repaired, ...) must never be resumed: drop the state so
                # the next call re-seeds from the published artifacts
                self._delta_refresher = None
                raise
            stats = outcome.stats
            changed = (
                stats.edges_added
                or stats.edges_changed
                or stats.edges_removed
                or stats.cluster_mode != "unchanged"
            )
            if changed:
                self.snapshots.publish(
                    outcome.artifacts,
                    OnlinePipeline(
                        outcome.artifacts.domain_store, self._detector
                    ),
                    expected_version=snapshot.version,
                )
            self._delta_refresher_version = self.snapshots.version
        return outcome.stats

"""Top-level configuration of an e# deployment."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.community.parallel import ParallelConfig
from repro.detector.normalize import NormalizationConfig
from repro.detector.ranking import RankingConfig
from repro.microblog.config import MicroblogConfig
from repro.querylog.config import QueryLogConfig
from repro.simgraph.similarity import SimilarityConfig
from repro.worldmodel.config import WorldConfig


@dataclass(frozen=True)
class ESharpConfig:
    """Every knob of the full reproduction, with coherent defaults.

    The default sizes are the "standard experiment scale" used by the
    benchmark harness: big enough for every shape statistic in §6, small
    enough to run the complete offline + online evaluation in minutes on a
    laptop.
    """

    seed: int = 2016
    world: WorldConfig = field(default_factory=WorldConfig)
    querylog: QueryLogConfig = field(default_factory=QueryLogConfig)
    similarity: SimilarityConfig = field(default_factory=SimilarityConfig)
    clustering: ParallelConfig = field(default_factory=ParallelConfig)
    microblog: MicroblogConfig = field(default_factory=MicroblogConfig)
    ranking: RankingConfig = field(default_factory=RankingConfig)
    normalization: NormalizationConfig = field(default_factory=NormalizationConfig)
    #: requested worker-pool width for the offline similarity join (the
    #: paper used 65 VMs).  The pool actually created is clamped to the
    #: machine's usable cores, and Table 9 reports that honest number.
    offline_workers: int = 65
    #: use the SQL-on-relational-engine clustering instead of the fast path
    use_sql_clustering: bool = False

    @classmethod
    def small(cls, seed: int = 2016) -> "ESharpConfig":
        """A fast configuration for tests: seconds, not minutes."""
        return cls(
            seed=seed,
            world=WorldConfig(seed=seed, topics_per_domain=8),
            querylog=QueryLogConfig(seed=seed, impressions=40_000, min_support=20),
            microblog=MicroblogConfig(
                seed=seed,
                tweets=20_000,
                casual_users=200,
                spammers=15,
                celebrities=6,
                broad_experts_per_domain=4,
                news_bots_per_domain=2,
            ),
        )

    @classmethod
    def standard(cls, seed: int = 2016) -> "ESharpConfig":
        """The benchmark scale used for every figure/table reproduction."""
        return cls(
            seed=seed,
            world=WorldConfig(seed=seed),
            querylog=QueryLogConfig(seed=seed, impressions=300_000),
            microblog=MicroblogConfig(seed=seed, tweets=150_000),
        )

"""repro — a reproduction of *e#: Sharper Expertise Detection from
Microblogs* (Sellam, Hentschel, Kandylas, Alonso; EDBT 2016).

The package implements the complete system described in the paper plus
every substrate it depends on, simulated where the original inputs are
proprietary (see DESIGN.md for the substitution table):

* :mod:`repro.worldmodel` — ground-truth topic taxonomy (S1)
* :mod:`repro.querylog` — search query-log simulator (S2)
* :mod:`repro.simgraph` — term-similarity-graph extraction, §4.1 (S3)
* :mod:`repro.relational` — SQL-capable relational engine, §4.2.2–4.2.3 (S4)
* :mod:`repro.community` — modularity-based community detection, §4.2 (S5)
* :mod:`repro.microblog` — microblog platform simulator (S6)
* :mod:`repro.detector` — Pal & Counts expert detector, §3 (S7)
* :mod:`repro.expansion` — domain store + query expansion, §5 (S8)
* :mod:`repro.core` — the assembled e# system, §2 (S9)
* :mod:`repro.crowd` — crowdsourcing-study simulator, §6.2 (S10)
* :mod:`repro.eval` — experiment harness for every table/figure, §6 (S11)
* :mod:`repro.serving` — concurrent query-serving tier, §6.3/Table 9 (S12)
* :mod:`repro.artifact` — versioned on-disk artifacts & warm start (S13)

Quickstart::

    from repro import ESharp, ESharpConfig

    system = ESharp(ESharpConfig.small()).build()
    for expert in system.find_experts("columbus bears"):
        print(expert)
"""

from repro.core.config import ESharpConfig
from repro.core.esharp import ESharp
from repro.detector.ranking import RankedExpert

__version__ = "1.0.0"

__all__ = ["ESharp", "ESharpConfig", "RankedExpert", "__version__"]

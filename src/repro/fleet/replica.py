"""Replica handles: the router's uniform view of a serving worker.

Two transports behind one duck type:

* :class:`InProcessReplica` — an :class:`~repro.serving.service.ExpertService`
  over its own (or a shared, read-only) :class:`~repro.core.esharp.ESharp`
  in this process; calls are plain method calls.
* :class:`SubprocessReplica` — a ``python -m repro fleet-worker`` child
  warm-started from an artifact directory, spoken to over the JSON-lines
  protocol of :mod:`repro.fleet.wire`; a reader thread resolves pending
  futures by request id, so many requests overlap on one worker.

Both expose the same surface: ``query`` / ``score_partial`` (the scatter
unit) / ``health`` / ``preload`` + ``promote`` (the two promotion
phases) / ``close``, plus the resilience hooks the supervisor leans on:
``is_alive`` (cheap liveness), ``ping(timeout=...)`` (bounded
responsiveness probe), and ``supports_budget`` (the router only passes
``budget_seconds`` to replicas that declare it, so simpler duck-typed
test doubles keep working).

Both transports are tenant-aware (``supports_tenants``): constructed
with tenant specs they serve many corpora from one replica — an
in-process replica wraps a
:class:`~repro.serving.tenancy.MultiTenantService`, a subprocess one
passes repeated ``--tenant NAME=DIR`` flags to its worker.  ``query``,
``score_partial``, ``preload``, and ``promote`` all take a ``tenant``
keyword (defaulting to the classic single-tenant ``"default"``), and
``tenants`` names what the replica serves — the supervisor records it
on restart so a healed multi-tenant replica provably recovered every
corpus.
"""

from __future__ import annotations

import os
import pathlib
import subprocess
import sys
import threading
from collections import deque
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FuturesTimeout
from typing import Iterable, Optional, Tuple

from repro.chaos.inject import fire
from repro.fleet.errors import (
    PromotionError,
    ReplicaStartupError,
    WorkerProtocolError,
)
from repro.fleet.wire import (
    answer_from_wire,
    error_from_wire,
    health_from_wire,
    parse_message,
    partial_from_wire,
    write_message,
)
from repro.serving.errors import DeadlineExceededError, UnknownTenantError
from repro.serving.service import (
    DEFAULT_TENANT,
    PartialPool,
    ReplicaHealthReport,
    ServedAnswer,
)

#: stderr lines a subprocess replica retains for startup diagnostics
STDERR_TAIL_LINES = 50

#: slack past a request's budget before the client gives up on the reply
BUDGET_GRACE_SECONDS = 0.25


class InProcessReplica:
    """A replica living in the router's process (one thread pool each).

    Single-tenant by default (``system``); constructed with
    ``tenant_specs`` instead, it serves many corpora from one shared
    engine (:class:`~repro.serving.tenancy.MultiTenantService`).
    """

    kind = "thread"
    supports_budget = True
    supports_tenants = True

    def __init__(
        self,
        name: str,
        system=None,
        service_config=None,
        *,
        tenant_specs=None,
        max_resident: Optional[int] = None,
    ) -> None:
        from repro.serving.service import ExpertService

        self.name = name
        self.system = system
        if tenant_specs is not None:
            if system is not None:
                raise ValueError(
                    "pass either a system or tenant_specs, not both"
                )
            from repro.serving.tenancy import MultiTenantService

            self.service = MultiTenantService(
                tenant_specs, service_config, max_resident=max_resident
            )
            self.tenants: Tuple[str, ...] = self.service.tenants()
            self._multi = True
        else:
            if system is None:
                raise ValueError("a single-tenant replica needs a system")
            self.service = ExpertService(system, service_config)
            self.tenants = (DEFAULT_TENANT,)
            self._multi = False
        self._staged = None
        self._closed = False

    def _check_tenant(self, tenant: str) -> None:
        if not self._multi and tenant != DEFAULT_TENANT:
            raise UnknownTenantError(tenant, self.tenants)

    def query(
        self,
        query: str,
        min_zscore: Optional[float] = None,
        *,
        budget_seconds: Optional[float] = None,
        tenant: str = DEFAULT_TENANT,
    ) -> ServedAnswer:
        fire("replica.call", replica=self.name, op="query", tenant=tenant)
        if self._multi:
            return self.service.query(
                tenant, query, min_zscore, budget_seconds=budget_seconds
            )
        self._check_tenant(tenant)
        return self.service.query(
            query, min_zscore, budget_seconds=budget_seconds
        )

    def score_partial(
        self,
        query: str,
        indexed_terms: Iterable[Tuple[int, str]],
        *,
        budget_seconds: Optional[float] = None,
        tenant: str = DEFAULT_TENANT,
    ) -> PartialPool:
        fire("replica.call", replica=self.name, op="partial", tenant=tenant)
        if self._multi:
            return self.service.score_partial(
                tenant, query, indexed_terms, budget_seconds=budget_seconds
            )
        self._check_tenant(tenant)
        return self.service.score_partial(
            query, indexed_terms, budget_seconds=budget_seconds
        )

    def health(self) -> ReplicaHealthReport:
        return self.service.health()

    def is_alive(self) -> bool:
        return not self._closed

    def ping(self, timeout: Optional[float] = None) -> bool:
        return not self._closed

    @property
    def snapshot_version(self) -> int:
        if self._multi:
            if DEFAULT_TENANT in self.tenants:
                return self.service.tenant_version(DEFAULT_TENANT) or 0
            return 0
        return self.system.snapshots.version

    def preload(
        self, artifact_dir, *, tenant: str = DEFAULT_TENANT
    ) -> int:
        """Phase one: load the artifact fully, publish nothing."""
        if self._multi:
            return self.service.stage(tenant, artifact_dir)
        self._check_tenant(tenant)
        self._staged = self.system.stage_artifact(artifact_dir)
        return self._staged.version

    def promote(
        self,
        expected_version: Optional[int] = None,
        *,
        tenant: str = DEFAULT_TENANT,
    ) -> int:
        """Phase two: CAS-flip the preloaded generation into serving."""
        if self._multi:
            return self.service.promote(
                tenant, expected_version=expected_version
            )
        self._check_tenant(tenant)
        staged = self._staged
        if staged is None:
            raise PromotionError(
                f"replica {self.name}: promote() before preload()"
            )
        snapshot = self.system.promote_staged(
            staged, expected_version=expected_version
        )
        self._staged = None
        return snapshot.version

    def close(self) -> None:
        self._closed = True
        self.service.close()


class SubprocessReplica:
    """A replica in its own process, warm-started from an artifact.

    Pass ``tenants={name: artifact_dir}`` instead of ``artifact_dir``
    to start a multi-tenant worker (repeated ``--tenant NAME=DIR``
    flags); the ready handshake reports back which tenants it serves.
    """

    kind = "process"
    supports_budget = True
    supports_tenants = True

    def __init__(
        self,
        name: str,
        artifact_dir=None,
        *,
        tenants: Optional[dict] = None,
        detection_workers: int = 2,
        cache_capacity: Optional[int] = None,
        startup_timeout_seconds: float = 60.0,
        request_timeout_seconds: float = 300.0,
        python: Optional[str] = None,
        extra_env: Optional[dict] = None,
    ) -> None:
        if (artifact_dir is None) == (tenants is None):
            raise ValueError(
                "pass exactly one of artifact_dir or tenants"
            )
        self.name = name
        self._timeout = request_timeout_seconds
        command = [
            python or sys.executable,
            "-m",
            "repro",
            "fleet-worker",
        ]
        if tenants is not None:
            for tenant_name in sorted(tenants):
                command += [
                    "--tenant",
                    f"{tenant_name}={tenants[tenant_name]}",
                ]
        else:
            command += ["--from-artifact", str(artifact_dir)]
        command += [
            "--detection-workers",
            str(detection_workers),
            "--name",
            name,
        ]
        if cache_capacity is not None:
            command += ["--cache-capacity", str(cache_capacity)]
        env = dict(os.environ)
        src_root = str(pathlib.Path(__file__).resolve().parents[2])
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            src_root if not existing else src_root + os.pathsep + existing
        )
        if extra_env:
            # e.g. REPRO_CHAOS_PLAN: a fault plan scoped to this worker
            env.update({str(k): str(v) for k, v in extra_env.items()})
        self._process = subprocess.Popen(
            command,
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            # captured so a warm-start crash reports *why* (stderr tail
            # rides on ReplicaStartupError) instead of scrolling away
            stderr=subprocess.PIPE,
            text=True,
            encoding="utf-8",
            env=env,
        )
        self._write_lock = threading.Lock()
        self._pending_lock = threading.Lock()
        self._pending: dict[int, Future] = {}  # guarded-by: _pending_lock
        self._next_id = 0  # guarded-by: _pending_lock
        self._stderr_lock = threading.Lock()
        self._stderr_tail: deque = deque(  # guarded-by: _stderr_lock
            maxlen=STDERR_TAIL_LINES
        )
        self._ready: Future = Future()
        self._closed = False
        self._reader = threading.Thread(
            target=self._read_loop, name=f"fleet-{name}-reader", daemon=True
        )
        self._reader.start()
        self._stderr_reader = threading.Thread(
            target=self._drain_stderr,
            name=f"fleet-{name}-stderr",
            daemon=True,
        )
        self._stderr_reader.start()
        try:
            ready = self._ready.result(timeout=startup_timeout_seconds)
        except FuturesTimeout:
            self.close()
            raise ReplicaStartupError(
                f"replica {name}: worker not ready within "
                f"{startup_timeout_seconds}s",
                stderr_tail=self.stderr_tail(),
                exit_code=self._process.poll(),
            ) from None
        except WorkerProtocolError as exc:
            self.close()
            raise ReplicaStartupError(
                f"replica {name}: worker died during warm start: {exc}",
                stderr_tail=self.stderr_tail(),
                exit_code=self._process.poll(),
            ) from exc
        except BaseException:
            self.close()
            raise
        self.snapshot_version = int(ready.get("version", 0))
        self.tenants: Tuple[str, ...] = tuple(
            ready.get("tenants") or (DEFAULT_TENANT,)
        )

    # -- the uniform replica surface -----------------------------------------

    def query(
        self,
        query: str,
        min_zscore: Optional[float] = None,
        *,
        budget_seconds: Optional[float] = None,
        tenant: str = DEFAULT_TENANT,
    ) -> ServedAnswer:
        payload = {"query": query, "min_zscore": min_zscore, "tenant": tenant}
        if budget_seconds is not None:
            payload["budget"] = budget_seconds
        raw = self._call("query", payload, budget=budget_seconds)
        return answer_from_wire(raw)

    def score_partial(
        self,
        query: str,
        indexed_terms: Iterable[Tuple[int, str]],
        *,
        budget_seconds: Optional[float] = None,
        tenant: str = DEFAULT_TENANT,
    ) -> PartialPool:
        payload = {
            "query": query,
            "terms": [[int(i), str(t)] for i, t in indexed_terms],
            "tenant": tenant,
        }
        if budget_seconds is not None:
            payload["budget"] = budget_seconds
        raw = self._call("partial", payload, budget=budget_seconds)
        return partial_from_wire(raw)

    def health(self) -> ReplicaHealthReport:
        report = health_from_wire(self._call("health", {}))
        self.snapshot_version = report.snapshot_version
        return report

    @property
    def pid(self) -> int:
        return self._process.pid

    def is_alive(self) -> bool:
        """Cheap liveness: the child process exists and we still own it."""
        return not self._closed and self._process.poll() is None

    def ping(self, timeout: Optional[float] = None) -> bool:
        """Bounded responsiveness probe; never raises."""
        if not self.is_alive():
            return False
        try:
            _, future = self.submit("ping", {})
            return (
                future.result(
                    timeout=self._timeout if timeout is None else timeout
                )
                == "pong"
            )
        except Exception:  # noqa: BLE001 - a probe reports, never raises
            return False

    def preload(self, artifact_dir, *, tenant: str = DEFAULT_TENANT) -> int:
        return int(
            self._call(
                "preload", {"path": str(artifact_dir), "tenant": tenant}
            )
        )

    def promote(
        self,
        expected_version: Optional[int] = None,
        *,
        tenant: str = DEFAULT_TENANT,
    ) -> int:
        version = int(
            self._call(
                "promote",
                {"expected_version": expected_version, "tenant": tenant},
            )
        )
        if tenant == DEFAULT_TENANT:
            self.snapshot_version = version
        return version

    def cancel(self, request_id: int) -> None:
        """Best-effort: a not-yet-started request on the worker is dropped."""
        try:
            self._send({"op": "cancel", "target": request_id})
        except WorkerProtocolError:
            pass

    def stderr_tail(self) -> Tuple[str, ...]:
        """The worker's most recent stderr lines (crash diagnostics)."""
        with self._stderr_lock:
            return tuple(self._stderr_tail)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        process = self._process
        if process.poll() is None:
            try:
                self._send({"op": "shutdown", "id": -1})
            except WorkerProtocolError:
                pass
            try:
                process.wait(timeout=10)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait(timeout=10)
        self._fail_pending(WorkerProtocolError("worker closed"))

    # -- plumbing --------------------------------------------------------------

    def _send(self, message: dict) -> None:
        stdin = self._process.stdin
        if stdin is None or self._process.poll() is not None:
            raise WorkerProtocolError(
                f"replica {self.name}: worker process is gone"
            )
        try:
            with self._write_lock:
                write_message(
                    stdin,
                    message,
                    chaos_site="wire.client.write",
                    chaos_context={
                        "replica": self.name,
                        "op": message.get("op", ""),
                        "tenant": message.get("tenant", DEFAULT_TENANT),
                    },
                )
        except (BrokenPipeError, ValueError) as exc:
            raise WorkerProtocolError(
                f"replica {self.name}: worker pipe broke"
            ) from exc

    def submit(self, op: str, payload: dict) -> Tuple[int, Future]:
        """Send one request; returns ``(request id, future of raw payload)``."""
        with self._pending_lock:
            if self._closed:
                raise WorkerProtocolError(
                    f"replica {self.name}: already closed"
                )
            self._next_id += 1
            request_id = self._next_id
            future: Future = Future()
            self._pending[request_id] = future
        message = {"op": op, "id": request_id}
        message.update(payload)
        try:
            self._send(message)
        except WorkerProtocolError:
            with self._pending_lock:
                self._pending.pop(request_id, None)
            raise
        return request_id, future

    def _call(self, op: str, payload: dict, budget: Optional[float] = None):
        """One round trip, bounded: the reply must land within the request
        timeout — or, when the call carries a deadline budget, within the
        budget plus a small grace (the worker's own typed deadline reply
        normally arrives first; the bound covers lost frames)."""
        timeout = self._timeout
        if budget is not None:
            timeout = min(timeout, max(0.0, budget) + BUDGET_GRACE_SECONDS)
        request_id, future = self.submit(op, payload)
        try:
            return future.result(timeout=timeout)
        except FuturesTimeout:
            self.cancel(request_id)
            if budget is not None and timeout < self._timeout:
                raise DeadlineExceededError(
                    f"replica {self.name}: no reply to {op!r} within the "
                    f"{budget:.3f}s budget",
                    budget_seconds=budget,
                ) from None
            raise WorkerProtocolError(
                f"replica {self.name}: no reply to {op!r} within {timeout}s"
            ) from None

    def _read_loop(self) -> None:
        stdout = self._process.stdout
        assert stdout is not None
        try:
            for line in stdout:
                line = line.strip()
                if not line:
                    continue
                try:
                    message = parse_message(line)
                except WorkerProtocolError as exc:
                    self._fail_pending(exc)
                    return
                if message.get("op") == "ready":
                    if not self._ready.done():
                        self._ready.set_result(message)
                    continue
                self._resolve(message)
        finally:
            died = WorkerProtocolError(
                f"replica {self.name}: worker exited "
                f"(code {self._process.poll()})"
            )
            if not self._ready.done():
                self._ready.set_exception(died)
            self._fail_pending(died)

    def _drain_stderr(self) -> None:
        stderr = self._process.stderr
        if stderr is None:  # pragma: no cover - always piped
            return
        for line in stderr:
            with self._stderr_lock:
                self._stderr_tail.append(line.rstrip("\n"))

    def _resolve(self, message: dict) -> None:
        request_id = message.get("id")
        with self._pending_lock:
            future = self._pending.pop(request_id, None)
        if future is None:  # late reply to a cancelled/abandoned request
            return
        if "error" in message:
            future.set_exception(error_from_wire(message["error"]))
        else:
            future.set_result(message.get("ok"))

    def _fail_pending(self, exc: Exception) -> None:
        with self._pending_lock:
            pending = list(self._pending.values())
            self._pending.clear()
        for future in pending:
            if not future.done():
                future.set_exception(exc)

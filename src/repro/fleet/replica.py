"""Replica handles: the router's uniform view of a serving worker.

Two transports behind one duck type:

* :class:`InProcessReplica` — an :class:`~repro.serving.service.ExpertService`
  over its own (or a shared, read-only) :class:`~repro.core.esharp.ESharp`
  in this process; calls are plain method calls.
* :class:`SubprocessReplica` — a ``python -m repro fleet-worker`` child
  warm-started from an artifact directory, spoken to over the JSON-lines
  protocol of :mod:`repro.fleet.wire`; a reader thread resolves pending
  futures by request id, so many requests overlap on one worker.

Both expose the same surface: ``query`` / ``score_partial`` (the scatter
unit) / ``health`` / ``preload`` + ``promote`` (the two promotion
phases) / ``close``.
"""

from __future__ import annotations

import os
import pathlib
import subprocess
import sys
import threading
from concurrent.futures import Future
from typing import Iterable, Optional, Tuple

from repro.fleet.errors import PromotionError, WorkerProtocolError
from repro.fleet.wire import (
    answer_from_wire,
    error_from_wire,
    health_from_wire,
    parse_message,
    partial_from_wire,
    write_message,
)
from repro.serving.service import (
    PartialPool,
    ReplicaHealthReport,
    ServedAnswer,
)


class InProcessReplica:
    """A replica living in the router's process (one thread pool each)."""

    kind = "thread"

    def __init__(self, name: str, system, service_config=None) -> None:
        from repro.serving.service import ExpertService

        self.name = name
        self.system = system
        self.service = ExpertService(system, service_config)
        self._staged = None

    def query(
        self, query: str, min_zscore: Optional[float] = None
    ) -> ServedAnswer:
        return self.service.query(query, min_zscore)

    def score_partial(
        self, query: str, indexed_terms: Iterable[Tuple[int, str]]
    ) -> PartialPool:
        return self.service.score_partial(query, indexed_terms)

    def health(self) -> ReplicaHealthReport:
        return self.service.health()

    @property
    def snapshot_version(self) -> int:
        return self.system.snapshots.version

    def preload(self, artifact_dir) -> int:
        """Phase one: load the artifact fully, publish nothing."""
        self._staged = self.system.stage_artifact(artifact_dir)
        return self._staged.version

    def promote(self, expected_version: Optional[int] = None) -> int:
        """Phase two: CAS-flip the preloaded generation into serving."""
        staged = self._staged
        if staged is None:
            raise PromotionError(
                f"replica {self.name}: promote() before preload()"
            )
        snapshot = self.system.promote_staged(
            staged, expected_version=expected_version
        )
        self._staged = None
        return snapshot.version

    def close(self) -> None:
        self.service.close()


class SubprocessReplica:
    """A replica in its own process, warm-started from an artifact."""

    kind = "process"

    def __init__(
        self,
        name: str,
        artifact_dir,
        *,
        detection_workers: int = 2,
        cache_capacity: Optional[int] = None,
        startup_timeout_seconds: float = 300.0,
        request_timeout_seconds: float = 300.0,
        python: Optional[str] = None,
    ) -> None:
        self.name = name
        self._timeout = request_timeout_seconds
        command = [
            python or sys.executable,
            "-m",
            "repro",
            "fleet-worker",
            "--from-artifact",
            str(artifact_dir),
            "--detection-workers",
            str(detection_workers),
        ]
        if cache_capacity is not None:
            command += ["--cache-capacity", str(cache_capacity)]
        env = dict(os.environ)
        src_root = str(pathlib.Path(__file__).resolve().parents[2])
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            src_root if not existing else src_root + os.pathsep + existing
        )
        self._process = subprocess.Popen(
            command,
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            # stderr inherits: a crashing worker should say why
            text=True,
            encoding="utf-8",
            env=env,
        )
        self._write_lock = threading.Lock()
        self._pending_lock = threading.Lock()
        self._pending: dict[int, Future] = {}  # guarded-by: _pending_lock
        self._next_id = 0  # guarded-by: _pending_lock
        self._ready: Future = Future()
        self._closed = False
        self._reader = threading.Thread(
            target=self._read_loop, name=f"fleet-{name}-reader", daemon=True
        )
        self._reader.start()
        try:
            ready = self._ready.result(timeout=startup_timeout_seconds)
        except Exception:
            self.close()
            raise
        self.snapshot_version = int(ready.get("version", 0))

    # -- the uniform replica surface -----------------------------------------

    def query(
        self, query: str, min_zscore: Optional[float] = None
    ) -> ServedAnswer:
        raw = self._call("query", {"query": query, "min_zscore": min_zscore})
        return answer_from_wire(raw)

    def score_partial(
        self, query: str, indexed_terms: Iterable[Tuple[int, str]]
    ) -> PartialPool:
        raw = self._call(
            "partial",
            {
                "query": query,
                "terms": [[int(i), str(t)] for i, t in indexed_terms],
            },
        )
        return partial_from_wire(raw)

    def health(self) -> ReplicaHealthReport:
        report = health_from_wire(self._call("health", {}))
        self.snapshot_version = report.snapshot_version
        return report

    def ping(self) -> bool:
        return self._call("ping", {}) == "pong"

    def preload(self, artifact_dir) -> int:
        return int(self._call("preload", {"path": str(artifact_dir)}))

    def promote(self, expected_version: Optional[int] = None) -> int:
        version = int(
            self._call("promote", {"expected_version": expected_version})
        )
        self.snapshot_version = version
        return version

    def cancel(self, request_id: int) -> None:
        """Best-effort: a not-yet-started request on the worker is dropped."""
        try:
            self._send({"op": "cancel", "target": request_id})
        except WorkerProtocolError:
            pass

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        process = self._process
        if process.poll() is None:
            try:
                self._send({"op": "shutdown", "id": -1})
            except WorkerProtocolError:
                pass
            try:
                process.wait(timeout=10)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait(timeout=10)
        self._fail_pending(WorkerProtocolError("worker closed"))

    # -- plumbing --------------------------------------------------------------

    def _send(self, message: dict) -> None:
        stdin = self._process.stdin
        if stdin is None or self._process.poll() is not None:
            raise WorkerProtocolError(
                f"replica {self.name}: worker process is gone"
            )
        try:
            with self._write_lock:
                write_message(stdin, message)
        except (BrokenPipeError, ValueError) as exc:
            raise WorkerProtocolError(
                f"replica {self.name}: worker pipe broke"
            ) from exc

    def submit(self, op: str, payload: dict) -> Tuple[int, Future]:
        """Send one request; returns ``(request id, future of raw payload)``."""
        with self._pending_lock:
            if self._closed:
                raise WorkerProtocolError(
                    f"replica {self.name}: already closed"
                )
            self._next_id += 1
            request_id = self._next_id
            future: Future = Future()
            self._pending[request_id] = future
        message = {"op": op, "id": request_id}
        message.update(payload)
        try:
            self._send(message)
        except WorkerProtocolError:
            with self._pending_lock:
                self._pending.pop(request_id, None)
            raise
        return request_id, future

    def _call(self, op: str, payload: dict):
        _, future = self.submit(op, payload)
        return future.result(timeout=self._timeout)

    def _read_loop(self) -> None:
        stdout = self._process.stdout
        assert stdout is not None
        try:
            for line in stdout:
                line = line.strip()
                if not line:
                    continue
                try:
                    message = parse_message(line)
                except WorkerProtocolError as exc:
                    self._fail_pending(exc)
                    return
                if message.get("op") == "ready":
                    if not self._ready.done():
                        self._ready.set_result(message)
                    continue
                self._resolve(message)
        finally:
            died = WorkerProtocolError(
                f"replica {self.name}: worker exited "
                f"(code {self._process.poll()})"
            )
            if not self._ready.done():
                self._ready.set_exception(died)
            self._fail_pending(died)

    def _resolve(self, message: dict) -> None:
        request_id = message.get("id")
        with self._pending_lock:
            future = self._pending.pop(request_id, None)
        if future is None:  # late reply to a cancelled/abandoned request
            return
        if "error" in message:
            future.set_exception(error_from_wire(message["error"]))
        else:
            future.set_result(message.get("ok"))

    def _fail_pending(self, exc: Exception) -> None:
        with self._pending_lock:
            pending = list(self._pending.values())
            self._pending.clear()
        for future in pending:
            if not future.done():
                future.set_exception(exc)

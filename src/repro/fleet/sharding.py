"""Deterministic shard ownership for scatter-gather serving.

Every replica in the fleet holds the **full** corpus; a shard is a unit
of *routing ownership*, not of storage.  The routing unit is the
expansion term: each term of an expanded query is owned by exactly one
shard, the owning replica scores it (and caches the scored slice), and
the router merges the per-shard partial pools back into the exact
single-replica ranking.  Two policies:

* :class:`DomainPartitionSharding` — every keyword of an expertise
  domain maps to its domain's shard, so a *matched* expansion (whose
  terms are by construction one domain's keywords) always collapses to
  a single shard and is served by one replica's whole-answer cache.
* :class:`TokenHashSharding` — terms spread individually over a
  consistent-hash ring, so multi-term expansions scatter and each
  replica's caches hold only its slice of the term space.

All hashing is SHA-1 based and therefore independent of
``PYTHONHASHSEED`` and stable across processes, platforms and runs —
two routers built from the same artifact agree on every owner.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, Iterable, List, Tuple

from repro.utils.text import phrase_key

#: ring points per shard; enough that domain ownership spreads evenly
#: over small fleets without making ring construction noticeable
DEFAULT_VIRTUAL_NODES = 64


def stable_hash(text: str) -> int:
    """A process-stable 64-bit hash (SHA-1 prefix, not ``hash()``)."""
    digest = hashlib.sha1(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class ConsistentHashRing:
    """Classic consistent hashing: shards own arcs of a hash circle.

    Adding or removing one shard moves only the keys on the arcs it
    owned — the property that makes resizing a fleet cheap — and every
    lookup is one bisect over a precomputed point list.
    """

    def __init__(
        self, num_shards: int, virtual_nodes: int = DEFAULT_VIRTUAL_NODES
    ) -> None:
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        if virtual_nodes < 1:
            raise ValueError(
                f"virtual_nodes must be >= 1, got {virtual_nodes}"
            )
        self.num_shards = num_shards
        points: List[Tuple[int, int]] = []
        for shard in range(num_shards):
            for node in range(virtual_nodes):
                points.append((stable_hash(f"shard:{shard}:vnode:{node}"), shard))
        points.sort()
        self._hashes = [point for point, _ in points]
        self._owners = [shard for _, shard in points]

    def owner(self, key: str) -> int:
        """The shard owning ``key`` (first ring point at or after it)."""
        index = bisect.bisect_left(self._hashes, stable_hash(key))
        if index == len(self._hashes):
            index = 0
        return self._owners[index]


class ShardingPolicy:
    """Base policy: deterministic term → shard and domain → shard maps."""

    name = "base"

    def __init__(self, num_shards: int) -> None:
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        self.num_shards = num_shards

    def shard_of_term(self, term: str) -> int:
        raise NotImplementedError

    def shard_of_domain(self, domain_id: str) -> int:
        raise NotImplementedError

    def plan(
        self, terms: Iterable[str]
    ) -> Dict[int, List[Tuple[int, str]]]:
        """Group an expansion's terms by owning shard.

        Each leg keeps its terms as ``(global index, term)`` pairs in
        ascending index order — the order the per-replica partial
        reduction relies on for its first-term-wins tie-break.
        """
        legs: Dict[int, List[Tuple[int, str]]] = {}
        for index, term in enumerate(terms):
            legs.setdefault(self.shard_of_term(term), []).append(
                (index, term)
            )
        return legs


class TokenHashSharding(ShardingPolicy):
    """Consistent-hash each (normalised) term onto the ring."""

    name = "hash"

    def __init__(
        self, num_shards: int, virtual_nodes: int = DEFAULT_VIRTUAL_NODES
    ) -> None:
        super().__init__(num_shards)
        self._ring = ConsistentHashRing(num_shards, virtual_nodes)

    def shard_of_term(self, term: str) -> int:
        return self._ring.owner(phrase_key(term))

    def shard_of_domain(self, domain_id: str) -> int:
        # a domain is addressed by its canonical id, exactly like a term
        return self._ring.owner(phrase_key(domain_id))


class DomainPartitionSharding(ShardingPolicy):
    """Route whole expertise domains: a domain's keywords share a shard.

    Domain ids are consistent-hashed onto the ring and every member
    keyword inherits the domain's owner, so a matched expansion — the
    query's domain's keyword list — is always a single leg.  Terms
    outside any domain (unmatched queries) fall back to term hashing,
    which keeps them deterministically spread.
    """

    name = "domain"

    def __init__(
        self,
        num_shards: int,
        keyword_owners: Dict[str, int],
        virtual_nodes: int = DEFAULT_VIRTUAL_NODES,
    ) -> None:
        super().__init__(num_shards)
        self._ring = ConsistentHashRing(num_shards, virtual_nodes)
        self._keyword_owners = dict(keyword_owners)

    @classmethod
    def from_store(
        cls,
        num_shards: int,
        domain_store,
        virtual_nodes: int = DEFAULT_VIRTUAL_NODES,
    ) -> "DomainPartitionSharding":
        """Build the keyword → shard map from a domain store."""
        ring = ConsistentHashRing(num_shards, virtual_nodes)
        owners: Dict[str, int] = {}
        for domain in domain_store.domains():
            shard = ring.owner(phrase_key(domain.domain_id))
            for keyword in domain.keywords:
                # setdefault mirrors DomainStore: a later domain never
                # steals an earlier domain's keyword
                owners.setdefault(phrase_key(keyword), shard)
        return cls(num_shards, owners, virtual_nodes)

    def shard_of_term(self, term: str) -> int:
        key = phrase_key(term)
        owner = self._keyword_owners.get(key)
        if owner is not None:
            return owner
        return self._ring.owner(key)

    def shard_of_domain(self, domain_id: str) -> int:
        return self._ring.owner(phrase_key(domain_id))


POLICIES = {
    TokenHashSharding.name: TokenHashSharding,
    DomainPartitionSharding.name: DomainPartitionSharding,
}

"""The ``python -m repro fleet-worker`` main loop.

A worker is one warm-started replica speaking the JSON-lines protocol of
:mod:`repro.fleet.wire` on stdio: load the artifact, announce
``{"op": "ready", "version": V}``, then serve requests until
``shutdown``.  Requests run on a small thread pool so a health probe (or
a hedged duplicate) is answered while a slow query is still scoring;
``cancel`` marks a request id so a not-yet-started request is dropped
instead of computed.

Resilience hooks: a request carrying ``budget`` (seconds, stamped when
the frame is read off stdin) has its queue time subtracted before the
service runs — a request that waited out its budget fails typed
(:class:`~repro.serving.errors.DeadlineExceededError`) over the wire.
:func:`serve_worker` installs any ``REPRO_CHAOS_PLAN`` fault plan
*before* loading the artifact, so injected faults cover warm start
(artifact reads) as well as serving (dispatch, reply frames).

Multi-tenancy: started with ``--tenant NAME=DIR`` flags instead of
``--from-artifact``, the worker wraps a
:class:`~repro.serving.tenancy.MultiTenantService` and every request's
``tenant`` field routes it to the right corpus; the ready handshake
grows a ``tenants`` list so the parent knows what this worker serves.
The classic single-artifact path is untouched — frames without a
``tenant`` field behave exactly as before.
"""

from __future__ import annotations

import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import IO, Mapping, Optional

from repro.chaos.inject import fire
from repro.core.esharp import ESharp
from repro.fleet.errors import PromotionError, WorkerProtocolError
from repro.fleet.wire import (
    answer_to_wire,
    error_to_wire,
    parse_message,
    partial_to_wire,
    write_message,
)
from repro.serving.errors import DeadlineExceededError, UnknownTenantError
from repro.serving.service import (
    DEFAULT_TENANT,
    ExpertService,
    ServiceConfig,
)

#: request threads per worker — enough for overlapping scatter legs plus
#: a health probe; the service's own admission control bounds real work
WORKER_THREADS = 4


class FleetWorker:
    """One replica process: an :class:`ExpertService` behind a wire loop."""

    # single-tenant unless __init__ saw a tenant map; class default keeps
    # partially-constructed workers on the legacy dispatch path
    _multi = False

    def __init__(
        self,
        artifact_dir: Optional[str] = None,
        *,
        tenants: Optional[Mapping[str, str]] = None,
        detection_workers: int = 2,
        cache_capacity: Optional[int] = None,
        score_cache_capacity: Optional[int] = None,
        reader: Optional[IO[str]] = None,
        writer: Optional[IO[str]] = None,
        name: str = "worker",
    ) -> None:
        if (artifact_dir is None) == (tenants is None):
            raise ValueError(
                "pass exactly one of artifact_dir or tenants"
            )
        self.name = name
        self._reader = reader if reader is not None else sys.stdin
        self._writer = writer if writer is not None else sys.stdout
        self._write_lock = threading.Lock()
        config = ServiceConfig(detection_workers=detection_workers)
        if cache_capacity is not None:
            from dataclasses import replace

            config = replace(config, cache_capacity=cache_capacity)
        if tenants is not None:
            from repro.serving.tenancy import MultiTenantService, TenantSpec

            specs = tuple(
                TenantSpec(tenant, tenants[tenant])
                for tenant in sorted(tenants)
            )
            self.system = None
            self.service = MultiTenantService(specs, config)
            self.tenants = self.service.tenants()
            self._multi = True
        else:
            self.system = ESharp.from_artifact(artifact_dir)
            if score_cache_capacity is not None:
                self.system.detector.configure_score_cache(
                    cache_capacity=score_cache_capacity
                )
            self.service = ExpertService(self.system, config)
            self.tenants = (DEFAULT_TENANT,)
            self._multi = False
        self._cancel_lock = threading.Lock()
        self._cancelled: set = set()  # guarded-by: _cancel_lock

    # -- wire I/O ---------------------------------------------------------------

    def _write(self, message: dict) -> None:
        with self._write_lock:
            write_message(
                self._writer,
                message,
                chaos_site="wire.worker.write",
                chaos_context={"worker": self.name},
            )

    def _reply_ok(self, request_id, payload) -> None:
        self._write({"id": request_id, "ok": payload})

    def _reply_error(self, request_id, exc: BaseException) -> None:
        self._write({"id": request_id, "error": error_to_wire(exc)})

    # -- request handling -------------------------------------------------------

    def _handle(self, message: dict, received_at: float) -> None:
        request_id = message.get("id")
        with self._cancel_lock:
            if request_id in self._cancelled:
                self._cancelled.discard(request_id)
                self._reply_error(
                    request_id, RuntimeError("cancelled before start")
                )
                return
        try:
            payload = self._dispatch(message, received_at)
        except BaseException as exc:  # noqa: BLE001 - typed over the wire
            self._reply_error(request_id, exc)
            return
        self._reply_ok(request_id, payload)

    def _budget_remaining(
        self, message: dict, received_at: Optional[float]
    ) -> Optional[float]:
        """The request's surviving budget after its queue wait, typed-fatal
        when the wait already spent it."""
        budget = message.get("budget")
        if budget is None:
            return None
        budget = float(budget)
        queued = (
            0.0
            if received_at is None
            else time.perf_counter() - received_at
        )
        remaining = budget - queued
        if remaining <= 0:
            raise DeadlineExceededError(
                f"worker {self.name}: budget {budget:.3f}s spent in queue "
                f"({queued:.3f}s) before dispatch",
                budget_seconds=budget,
                elapsed_seconds=queued,
            )
        return remaining

    def _check_tenant(self, tenant: str) -> None:
        if not self._multi and tenant != DEFAULT_TENANT:
            raise UnknownTenantError(tenant, self.tenants)

    def _dispatch(self, message: dict, received_at: Optional[float] = None):
        op = message.get("op")
        tenant = str(message.get("tenant", DEFAULT_TENANT))
        fire(
            "worker.dispatch",
            op=op or "",
            worker=getattr(self, "name", ""),
            tenant=tenant,
        )
        if op == "ping":
            return "pong"
        if op == "query":
            budget = self._budget_remaining(message, received_at)
            if self._multi:
                answer = self.service.query(
                    tenant,
                    message["query"],
                    message.get("min_zscore"),
                    budget_seconds=budget,
                )
            else:
                self._check_tenant(tenant)
                answer = self.service.query(
                    message["query"],
                    message.get("min_zscore"),
                    budget_seconds=budget,
                )
            return answer_to_wire(answer)
        if op == "partial":
            budget = self._budget_remaining(message, received_at)
            terms = [(index, term) for index, term in message["terms"]]
            if self._multi:
                pool = self.service.score_partial(
                    tenant, message["query"], terms, budget_seconds=budget
                )
            else:
                self._check_tenant(tenant)
                pool = self.service.score_partial(
                    message["query"], terms, budget_seconds=budget
                )
            return partial_to_wire(pool)
        if op == "health":
            return self.service.health().to_dict()
        if op == "preload":
            if self._multi:
                return self.service.stage(tenant, message["path"])
            self._check_tenant(tenant)
            self._staged = self.system.stage_artifact(message["path"])
            return self._staged.version
        if op == "promote":
            if self._multi:
                return self.service.promote(
                    tenant,
                    expected_version=message.get("expected_version"),
                )
            self._check_tenant(tenant)
            staged = getattr(self, "_staged", None)
            if staged is None:
                raise PromotionError("promote before preload")
            snapshot = self.system.promote_staged(
                staged, expected_version=message.get("expected_version")
            )
            self._staged = None
            return snapshot.version
        raise WorkerProtocolError(f"unknown op {op!r}")

    # -- the main loop ----------------------------------------------------------

    def run(self) -> int:
        executor = ThreadPoolExecutor(
            max_workers=WORKER_THREADS, thread_name_prefix="fleet-worker"
        )
        ready = {
            "op": "ready",
            "version": (
                self.system.snapshots.version
                if self.system is not None
                else 0
            ),
        }
        if self._multi:
            ready["tenants"] = list(self.tenants)
        self._write(ready)
        try:
            for line in self._reader:
                line = line.strip()
                if not line:
                    continue
                received_at = time.perf_counter()
                try:
                    message = parse_message(line)
                except Exception as exc:  # noqa: BLE001 - report and go on
                    self._write({"id": None, "error": error_to_wire(exc)})
                    continue
                op = message.get("op")
                if op == "shutdown":
                    self._reply_ok(message.get("id"), "bye")
                    break
                if op == "cancel":
                    with self._cancel_lock:
                        self._cancelled.add(message.get("target"))
                    continue
                executor.submit(self._handle, message, received_at)
        finally:
            executor.shutdown(wait=True)
            self.service.close()
        return 0


def serve_worker(
    artifact_dir: Optional[str] = None,
    *,
    tenants: Optional[Mapping[str, str]] = None,
    detection_workers: int = 2,
    cache_capacity: Optional[int] = None,
    score_cache_capacity: Optional[int] = None,
    name: str = "worker",
) -> int:
    """CLI entry point for ``python -m repro fleet-worker``."""
    from repro.chaos import inject

    # before the artifact loads, so a plan can fault warm start too
    inject.install_from_env()
    worker = FleetWorker(
        artifact_dir,
        tenants=tenants,
        detection_workers=detection_workers,
        cache_capacity=cache_capacity,
        score_cache_capacity=score_cache_capacity,
        name=name,
    )
    return worker.run()

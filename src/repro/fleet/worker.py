"""The ``python -m repro fleet-worker`` main loop.

A worker is one warm-started replica speaking the JSON-lines protocol of
:mod:`repro.fleet.wire` on stdio: load the artifact, announce
``{"op": "ready", "version": V}``, then serve requests until
``shutdown``.  Requests run on a small thread pool so a health probe (or
a hedged duplicate) is answered while a slow query is still scoring;
``cancel`` marks a request id so a not-yet-started request is dropped
instead of computed.

Resilience hooks: a request carrying ``budget`` (seconds, stamped when
the frame is read off stdin) has its queue time subtracted before the
service runs — a request that waited out its budget fails typed
(:class:`~repro.serving.errors.DeadlineExceededError`) over the wire.
:func:`serve_worker` installs any ``REPRO_CHAOS_PLAN`` fault plan
*before* loading the artifact, so injected faults cover warm start
(artifact reads) as well as serving (dispatch, reply frames).
"""

from __future__ import annotations

import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import IO, Optional

from repro.chaos.inject import fire
from repro.core.esharp import ESharp
from repro.fleet.errors import PromotionError, WorkerProtocolError
from repro.fleet.wire import (
    answer_to_wire,
    error_to_wire,
    parse_message,
    partial_to_wire,
    write_message,
)
from repro.serving.errors import DeadlineExceededError
from repro.serving.service import ExpertService, ServiceConfig

#: request threads per worker — enough for overlapping scatter legs plus
#: a health probe; the service's own admission control bounds real work
WORKER_THREADS = 4


class FleetWorker:
    """One replica process: an :class:`ExpertService` behind a wire loop."""

    def __init__(
        self,
        artifact_dir: str,
        *,
        detection_workers: int = 2,
        cache_capacity: Optional[int] = None,
        score_cache_capacity: Optional[int] = None,
        reader: Optional[IO[str]] = None,
        writer: Optional[IO[str]] = None,
        name: str = "worker",
    ) -> None:
        self.name = name
        self._reader = reader if reader is not None else sys.stdin
        self._writer = writer if writer is not None else sys.stdout
        self._write_lock = threading.Lock()
        self.system = ESharp.from_artifact(artifact_dir)
        if score_cache_capacity is not None:
            self.system.detector.configure_score_cache(
                cache_capacity=score_cache_capacity
            )
        config = ServiceConfig(detection_workers=detection_workers)
        if cache_capacity is not None:
            from dataclasses import replace

            config = replace(config, cache_capacity=cache_capacity)
        self.service = ExpertService(self.system, config)
        self._cancel_lock = threading.Lock()
        self._cancelled: set = set()  # guarded-by: _cancel_lock

    # -- wire I/O ---------------------------------------------------------------

    def _write(self, message: dict) -> None:
        with self._write_lock:
            write_message(
                self._writer,
                message,
                chaos_site="wire.worker.write",
                chaos_context={"worker": self.name},
            )

    def _reply_ok(self, request_id, payload) -> None:
        self._write({"id": request_id, "ok": payload})

    def _reply_error(self, request_id, exc: BaseException) -> None:
        self._write({"id": request_id, "error": error_to_wire(exc)})

    # -- request handling -------------------------------------------------------

    def _handle(self, message: dict, received_at: float) -> None:
        request_id = message.get("id")
        with self._cancel_lock:
            if request_id in self._cancelled:
                self._cancelled.discard(request_id)
                self._reply_error(
                    request_id, RuntimeError("cancelled before start")
                )
                return
        try:
            payload = self._dispatch(message, received_at)
        except BaseException as exc:  # noqa: BLE001 - typed over the wire
            self._reply_error(request_id, exc)
            return
        self._reply_ok(request_id, payload)

    def _budget_remaining(
        self, message: dict, received_at: Optional[float]
    ) -> Optional[float]:
        """The request's surviving budget after its queue wait, typed-fatal
        when the wait already spent it."""
        budget = message.get("budget")
        if budget is None:
            return None
        budget = float(budget)
        queued = (
            0.0
            if received_at is None
            else time.perf_counter() - received_at
        )
        remaining = budget - queued
        if remaining <= 0:
            raise DeadlineExceededError(
                f"worker {self.name}: budget {budget:.3f}s spent in queue "
                f"({queued:.3f}s) before dispatch",
                budget_seconds=budget,
                elapsed_seconds=queued,
            )
        return remaining

    def _dispatch(self, message: dict, received_at: Optional[float] = None):
        op = message.get("op")
        fire("worker.dispatch", op=op or "", worker=getattr(self, "name", ""))
        if op == "ping":
            return "pong"
        if op == "query":
            answer = self.service.query(
                message["query"],
                message.get("min_zscore"),
                budget_seconds=self._budget_remaining(message, received_at),
            )
            return answer_to_wire(answer)
        if op == "partial":
            pool = self.service.score_partial(
                message["query"],
                [(index, term) for index, term in message["terms"]],
                budget_seconds=self._budget_remaining(message, received_at),
            )
            return partial_to_wire(pool)
        if op == "health":
            return self.service.health().to_dict()
        if op == "preload":
            self._staged = self.system.stage_artifact(message["path"])
            return self._staged.version
        if op == "promote":
            staged = getattr(self, "_staged", None)
            if staged is None:
                raise PromotionError("promote before preload")
            snapshot = self.system.promote_staged(
                staged, expected_version=message.get("expected_version")
            )
            self._staged = None
            return snapshot.version
        raise WorkerProtocolError(f"unknown op {op!r}")

    # -- the main loop ----------------------------------------------------------

    def run(self) -> int:
        executor = ThreadPoolExecutor(
            max_workers=WORKER_THREADS, thread_name_prefix="fleet-worker"
        )
        self._write(
            {"op": "ready", "version": self.system.snapshots.version}
        )
        try:
            for line in self._reader:
                line = line.strip()
                if not line:
                    continue
                received_at = time.perf_counter()
                try:
                    message = parse_message(line)
                except Exception as exc:  # noqa: BLE001 - report and go on
                    self._write({"id": None, "error": error_to_wire(exc)})
                    continue
                op = message.get("op")
                if op == "shutdown":
                    self._reply_ok(message.get("id"), "bye")
                    break
                if op == "cancel":
                    with self._cancel_lock:
                        self._cancelled.add(message.get("target"))
                    continue
                executor.submit(self._handle, message, received_at)
        finally:
            executor.shutdown(wait=True)
            self.service.close()
        return 0


def serve_worker(
    artifact_dir: str,
    *,
    detection_workers: int = 2,
    cache_capacity: Optional[int] = None,
    score_cache_capacity: Optional[int] = None,
    name: str = "worker",
) -> int:
    """CLI entry point for ``python -m repro fleet-worker``."""
    from repro.chaos import inject

    # before the artifact loads, so a plan can fault warm start too
    inject.install_from_env()
    worker = FleetWorker(
        artifact_dir,
        detection_workers=detection_workers,
        cache_capacity=cache_capacity,
        score_cache_capacity=score_cache_capacity,
        name=name,
    )
    return worker.run()

"""Gather: merge shard partial pools into the exact single-replica answer.

The single-replica union (:meth:`QueryExpander.score_terms`) iterates
term pools **in term order** and keeps, per user, the first pool entry
achieving the maximum score — so on a score tie the *earliest term's*
:class:`~repro.detector.ranking.RankedExpert` wins (its per-term
``features``/``zscores`` ride along).  Each scatter leg reduces its
slice under that rule and tags survivors with their **global term
index** (:class:`~repro.serving.service.PartialPool`); this merge
applies the identical rule across legs:

    highest score wins; equal scores go to the lowest global index.

Then the exact final steps of the serving path: sort by
``(-score, user_id)``, threshold with ``>=``, cap at ``max_results``.
Because every comparison is on values computed identically on every
replica (same artifact generation ⇒ bit-equal floats), the merged
ranking is byte-identical to what one replica scoring every term would
have returned — the property test in ``tests/test_fleet.py`` proves it
for arbitrary queries.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from repro.detector.ranking import RankedExpert
from repro.fleet.errors import (
    FleetError,
    FleetTenantMismatchError,
    FleetVersionSkewError,
)
from repro.serving.service import PartialPool

# analysis: exact-path


def merge_partials(
    pools: Iterable[PartialPool],
    *,
    threshold: float,
    max_results: int,
) -> Tuple[Tuple[RankedExpert, ...], int]:
    """Merge scatter legs; returns ``(experts, snapshot_version)``.

    Raises :class:`FleetVersionSkewError` when the legs answered from
    different snapshot versions (a promotion raced the scatter) — the
    router retries rather than serve a cross-generation ranking.
    """
    pools = list(pools)
    if not pools:
        raise FleetError("merge_partials needs at least one partial pool")
    tenants = sorted({pool.tenant for pool in pools})
    if len(tenants) > 1:
        raise FleetTenantMismatchError(
            f"scatter legs answered for different tenants {tenants}"
        )
    versions = sorted({pool.snapshot_version for pool in pools})
    if len(versions) > 1:
        raise FleetVersionSkewError(
            f"scatter legs answered from mixed snapshot versions {versions}"
        )
    best: Dict[int, Tuple[int, RankedExpert]] = {}
    for pool in pools:
        for index, expert in pool.entries:
            incumbent = best.get(expert.user_id)
            if (
                incumbent is None
                or expert.score > incumbent[1].score
                or (
                    expert.score == incumbent[1].score
                    and index < incumbent[0]
                )
            ):
                best[expert.user_id] = (index, expert)
    ranked: List[RankedExpert] = sorted(
        (entry[1] for entry in best.values()),
        key=lambda e: (-e.score, e.user_id),
    )
    kept = [expert for expert in ranked if expert.score >= threshold]
    return tuple(kept[:max_results]), versions[0]

"""Self-healing: detect dead replicas and restart them warm from artifact.

:class:`ReplicaSupervisor` watches a :class:`~repro.fleet.router.FleetRouter`'s
replicas (a background poll loop, or synchronous :meth:`check_now` calls
for deterministic tests).  A replica that fails its liveness probe —
process gone, or a bounded ``ping`` unanswered — is restarted through a
caller-supplied factory (normally a fresh
:class:`~repro.fleet.replica.SubprocessReplica` warm-started from the
same artifact) and swapped into the router's slot, which resets the
slot's latency history and circuit breaker.

Restart discipline:

* **Exponential backoff with jitter.** Consecutive failed restarts wait
  ``initial · multiplier^n`` (capped), scaled by a deterministic
  per-slot jitter so a mass failure doesn't restart in lockstep.  The
  jitter RNG is seeded from the supervisor seed and the slot name —
  reproducible run to run.
* **Restart budget.** At most ``restart_budget`` restart attempts per
  sliding ``budget_window_seconds`` window; past it the slot is marked
  ``gave_up`` (a crash-looping artifact should page an operator, not
  burn CPU forever).  A slot that comes back healthy by other means
  clears the flag.

Restarts run *outside* the supervisor lock — warm starts take seconds,
and the lock only guards bookkeeping.
"""

from __future__ import annotations

import random
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple


@dataclass(frozen=True)
class SupervisorConfig:
    """Supervision knobs."""

    #: background poll cadence (start()/close() mode)
    poll_interval_seconds: float = 0.5
    #: how long a liveness ping may take before the replica counts dead
    probe_timeout_seconds: float = 5.0
    #: first backoff after a failed restart
    backoff_initial_seconds: float = 0.2
    backoff_multiplier: float = 2.0
    backoff_max_seconds: float = 10.0
    #: +/- fraction of the backoff added as deterministic jitter
    jitter_fraction: float = 0.1
    #: restart attempts allowed per sliding window before giving up
    restart_budget: int = 5
    budget_window_seconds: float = 60.0
    #: seeds the per-slot jitter RNGs
    seed: int = 2016

    def __post_init__(self) -> None:
        if self.poll_interval_seconds <= 0:
            raise ValueError("poll_interval_seconds must be > 0")
        if self.backoff_initial_seconds < 0:
            raise ValueError("backoff_initial_seconds must be >= 0")
        if self.backoff_multiplier < 1.0:
            raise ValueError("backoff_multiplier must be >= 1")
        if not 0.0 <= self.jitter_fraction < 1.0:
            raise ValueError("jitter_fraction must be in [0, 1)")
        if self.restart_budget < 1:
            raise ValueError("restart_budget must be >= 1")


@dataclass(frozen=True)
class ReplicaRestart:
    """One restart attempt's outcome.

    ``tenants`` records what the fresh replica serves — for a
    multi-tenant slot the healed process provably recovered every
    corpus, not just the default one.
    """

    replica: str
    ok: bool
    seconds: float
    error: str = ""
    tenants: Tuple[str, ...] = ()


@dataclass(frozen=True)
class SlotReport:
    """Read-only view of one supervised slot."""

    name: str
    state: str  # "healthy" | "down" | "gave-up"
    consecutive_failures: int
    restarts: int
    failed_restarts: int
    gave_up: bool
    last_error: str
    last_recovery_seconds: Optional[float]

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "state": self.state,
            "consecutive_failures": self.consecutive_failures,
            "restarts": self.restarts,
            "failed_restarts": self.failed_restarts,
            "gave_up": self.gave_up,
            "last_error": self.last_error,
            "last_recovery_seconds": self.last_recovery_seconds,
        }


@dataclass(frozen=True)
class SupervisorStats:
    """Aggregated supervision counters plus per-slot reports."""

    checks: int
    restarts: int
    failed_restarts: int
    gave_up: int
    slots: Tuple[SlotReport, ...] = ()
    restart_log: Tuple[ReplicaRestart, ...] = ()

    def to_dict(self) -> dict:
        return {
            "checks": self.checks,
            "restarts": self.restarts,
            "failed_restarts": self.failed_restarts,
            "gave_up": self.gave_up,
            "slots": [slot.to_dict() for slot in self.slots],
            "restart_log": [
                {
                    "replica": entry.replica,
                    "ok": entry.ok,
                    "seconds": entry.seconds,
                    "error": entry.error,
                    "tenants": list(entry.tenants),
                }
                for entry in self.restart_log
            ],
        }


@dataclass
class _Slot:
    """Mutable per-replica bookkeeping (mutated under the supervisor lock)."""

    name: str
    rng: random.Random
    consecutive_failures: int = 0
    restarts: int = 0
    failed_restarts: int = 0
    next_attempt_at: float = 0.0
    gave_up: bool = False
    down_since: Optional[float] = None
    last_error: str = ""
    last_recovery_seconds: Optional[float] = None
    restart_times: deque = field(default_factory=deque)


class ReplicaSupervisor:
    """Watch a router's replicas; restart the dead ones, bounded."""

    def __init__(
        self,
        router,
        factories: Dict[str, Callable[[], object]],
        config: Optional[SupervisorConfig] = None,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if not factories:
            raise ValueError("supervisor needs at least one replica factory")
        for name in factories:
            router.replica(name)  # raises FleetError on an unknown slot
        self._router = router
        self._factories = dict(factories)
        self.config = config or SupervisorConfig()
        self._clock = clock
        self._lock = threading.Lock()
        self._slots: Dict[str, _Slot] = {  # guarded-by: _lock
            name: _Slot(
                name=name,
                rng=random.Random(f"{self.config.seed}:{name}"),
            )
            for name in sorted(factories)
        }
        self._checks = 0  # guarded-by: _lock
        self._restarts = 0  # guarded-by: _lock
        self._failed_restarts = 0  # guarded-by: _lock
        self._gave_up = 0  # guarded-by: _lock
        self._log: List[ReplicaRestart] = []  # guarded-by: _lock
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> None:
        """Launch the background poll loop (idempotent)."""
        if self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="repro-fleet-supervisor", daemon=True
        )
        self._thread.start()

    def close(self) -> None:
        """Stop the poll loop (does not close the replicas)."""
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=30)
            self._thread = None

    def __enter__(self) -> "ReplicaSupervisor":
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def _loop(self) -> None:
        while not self._stop.wait(self.config.poll_interval_seconds):
            try:
                self.check_now()
            except Exception:  # noqa: BLE001 - supervision must outlive bugs
                pass

    # -- one supervision sweep ---------------------------------------------------

    def check_now(self) -> List[ReplicaRestart]:
        """Probe every slot once; restart what's restartable right now.

        Synchronous and deterministic given a fake clock — the unit the
        tests drive directly.  Returns the restart attempts performed.
        """
        with self._lock:
            self._checks += 1
            names = list(self._slots)
        outcomes = []
        for name in names:
            outcome = self._check_slot(name)
            if outcome is not None:
                outcomes.append(outcome)
        return outcomes

    def _check_slot(self, name: str) -> Optional[ReplicaRestart]:
        replica = self._router.replica(name)
        healthy = self._probe(replica)
        now = self._clock()
        with self._lock:
            slot = self._slots[name]
            if healthy:
                slot.consecutive_failures = 0
                slot.down_since = None
                slot.next_attempt_at = 0.0
                slot.gave_up = False
                return None
            if slot.down_since is None:
                slot.down_since = now
            if slot.gave_up or now < slot.next_attempt_at:
                return None
            while slot.restart_times and (
                now - slot.restart_times[0]
                > self.config.budget_window_seconds
            ):
                slot.restart_times.popleft()
            if len(slot.restart_times) >= self.config.restart_budget:
                slot.gave_up = True
                self._gave_up += 1
                return None
            slot.restart_times.append(now)
        return self._restart(name, replica)

    def _probe(self, replica) -> bool:
        """Is the replica alive *and* answering, within the probe timeout?"""
        is_alive = getattr(replica, "is_alive", None)
        if is_alive is not None:
            try:
                if not is_alive():
                    return False
            except Exception:  # noqa: BLE001 - a probe reports, not raises
                return False
        ping = getattr(replica, "ping", None)
        if ping is None:
            return True
        try:
            return bool(
                ping(timeout=self.config.probe_timeout_seconds)
            )
        except Exception:  # noqa: BLE001 - a probe reports, not raises
            return False

    def _restart(self, name: str, old_replica) -> ReplicaRestart:
        """One restart attempt, outside the lock (warm starts are slow)."""
        started = self._clock()
        try:
            try:
                old_replica.close()
            except Exception:  # noqa: BLE001 - it's already dead
                pass
            fresh = self._factories[name]()
            self._router.replace_replica(name, fresh)
        except Exception as exc:  # noqa: BLE001 - typed into the report
            now = self._clock()
            outcome = ReplicaRestart(
                replica=name,
                ok=False,
                seconds=now - started,
                error=f"{type(exc).__name__}: {exc}",
            )
            with self._lock:
                slot = self._slots[name]
                slot.consecutive_failures += 1
                slot.failed_restarts += 1
                slot.last_error = outcome.error
                slot.next_attempt_at = now + self._backoff(slot)
                self._failed_restarts += 1
                self._log.append(outcome)
            return outcome
        now = self._clock()
        outcome = ReplicaRestart(
            replica=name,
            ok=True,
            seconds=now - started,
            tenants=tuple(getattr(fresh, "tenants", ()) or ()),
        )
        with self._lock:
            slot = self._slots[name]
            if slot.down_since is not None:
                slot.last_recovery_seconds = now - slot.down_since
            slot.consecutive_failures = 0
            slot.restarts += 1
            slot.down_since = None
            slot.next_attempt_at = 0.0
            slot.last_error = ""
            self._restarts += 1
            self._log.append(outcome)
        return outcome

    def _backoff(self, slot: _Slot) -> float:  # holds: _lock
        """Deterministically jittered exponential backoff for one slot."""
        exponent = max(0, slot.consecutive_failures - 1)
        base = min(
            self.config.backoff_max_seconds,
            self.config.backoff_initial_seconds
            * (self.config.backoff_multiplier ** exponent),
        )
        jitter = 1.0 + self.config.jitter_fraction * (
            2.0 * slot.rng.random() - 1.0
        )
        return base * jitter

    # -- observability -----------------------------------------------------------

    def stats(self) -> SupervisorStats:
        with self._lock:
            slots = []
            for name in sorted(self._slots):
                slot = self._slots[name]
                if slot.gave_up:
                    state = "gave-up"
                elif slot.down_since is not None:
                    state = "down"
                else:
                    state = "healthy"
                slots.append(
                    SlotReport(
                        name=name,
                        state=state,
                        consecutive_failures=slot.consecutive_failures,
                        restarts=slot.restarts,
                        failed_restarts=slot.failed_restarts,
                        gave_up=slot.gave_up,
                        last_error=slot.last_error,
                        last_recovery_seconds=slot.last_recovery_seconds,
                    )
                )
            return SupervisorStats(
                checks=self._checks,
                restarts=self._restarts,
                failed_restarts=self._failed_restarts,
                gave_up=self._gave_up,
                slots=tuple(slots),
                restart_log=tuple(self._log),
            )

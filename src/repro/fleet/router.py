"""The fleet front-end: shard-aware scatter-gather over replica workers.

:class:`FleetRouter` owns a fixed set of replicas (in-process services
or ``fleet-worker`` subprocesses — one shard each), a deterministic
:mod:`sharding <repro.fleet.sharding>` policy, and a per-replica
:mod:`health <repro.fleet.health>` tracker.  The serving path:

1. **Expand** the query against the router's own (shard-independent)
   domain store — the exact expansion every replica would compute.
2. **Route.** If every expansion term lands on one shard (always true
   for matched queries under domain-partition sharding, and for any
   single-term query), the whole query goes to that shard's replica —
   its result cache serves repeats.  Otherwise the terms **scatter** as
   ``score_partial`` legs to their owning shards and the partial pools
   **gather** through :func:`~repro.fleet.merge.merge_partials`, which
   reproduces the single-replica ranking exactly.
3. **Hedge.** Every replica call races a latency-percentile deadline
   (per replica, from the tracker); past it, a backup fires on the
   next-healthiest replica — any replica can serve any leg because all
   hold the full corpus — and the first answer wins.  A replica that
   *fails* fails over the same way immediately, bounded by
   ``FleetConfig.leg_retries`` per leg.

Resilience discipline (PR 8) layers onto that path without changing its
answers:

* **Circuit breakers.** Each replica's breaker
  (:class:`~repro.fleet.health.CircuitBreaker`) must admit a call before
  it is spawned; a tripped replica is skipped outright (fast, typed)
  until its cooldown half-opens a probe.  When *no* admitting replica
  remains the router raises :class:`CircuitOpenError` immediately.
* **Deadline budgets.** ``query(..., deadline_seconds=...)`` (or the
  config-wide default) starts an end-to-end budget that bounds every
  wait and propagates to budget-aware replicas as ``budget_seconds`` —
  a worker whose queue already ate the budget fails typed
  (:class:`~repro.serving.errors.DeadlineExceededError`) instead of
  computing an answer nobody is waiting for.  Deadline misses are
  terminal: the budget is gone, so no failover fires.
* **Degraded answers.** With ``FleetConfig.allow_degraded``, a scatter
  whose leg fails outright (every candidate replica for it exhausted)
  merges the surviving shard pools and marks the answer
  ``coverage < 1.0`` — explicitly partial, never silently wrong.  The
  default remains fail-loud.

Promotion is two-phase (:meth:`FleetRouter.promote`): preload the
artifact on **every** replica first — any failure aborts with nothing
flipped anywhere — then CAS-flip each replica via
``SnapshotHolder.publish(expected_version=...)``.  A replica whose
version moved underneath loses the CAS loudly instead of silently
serving a mixed fleet, and the merge independently refuses
cross-version gathers (:class:`FleetVersionSkewError`) with a bounded
router-level retry.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import FIRST_COMPLETED, Future, ThreadPoolExecutor, wait
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.detector.ranking import RankedExpert, RankingConfig
from repro.expansion.domainstore import DomainStore
from repro.fleet.errors import (
    CircuitOpenError,
    FleetError,
    FleetVersionSkewError,
    NoHealthyReplicaError,
    PromotionError,
)
from repro.fleet.health import BreakerConfig, ReplicaTracker, ReplicaVitals
from repro.fleet.merge import merge_partials
from repro.fleet.sharding import (
    DomainPartitionSharding,
    ShardingPolicy,
    TokenHashSharding,
)
from repro.serving.errors import (
    DeadlineExceededError,
    ServiceClosedError,
    UnknownTenantError,
)
from repro.serving.service import DEFAULT_TENANT, ReplicaHealthReport


@dataclass(frozen=True)
class FleetConfig:
    """Router knobs (hedging, retries, deadlines, degradation)."""

    #: fire backup requests past the per-replica latency deadline
    hedging: bool = True
    #: latency percentile a call must beat before a backup fires
    hedge_percentile: float = 0.95
    #: per-replica samples required before percentile deadlines apply
    hedge_min_samples: int = 8
    #: deadline used until a replica has enough samples
    hedge_default_deadline_seconds: float = 0.05
    #: sliding latency window per replica
    latency_window: int = 128
    #: how long a gather waits for its slowest leg before giving up
    gather_timeout_seconds: float = 300.0
    #: re-scatters allowed when a promotion races a gather
    skew_retries: int = 2
    #: failovers allowed per hedged leg before its first error surfaces
    leg_retries: int = 2
    #: end-to-end budget applied to every query (None: only per-call)
    deadline_seconds: Optional[float] = None
    #: merge surviving shards into a coverage<1.0 answer when a scatter
    #: leg fails outright, instead of failing the whole query
    allow_degraded: bool = False
    #: per-replica circuit-breaker knobs (None: BreakerConfig defaults)
    breaker: Optional[BreakerConfig] = None
    #: threads executing replica calls (None: 4 per replica, min 8)
    executor_threads: Optional[int] = None

    def __post_init__(self) -> None:
        if not 0.0 < self.hedge_percentile <= 1.0:
            raise ValueError("hedge_percentile must be in (0, 1]")
        if self.skew_retries < 0:
            raise ValueError("skew_retries must be >= 0")
        if self.leg_retries < 0:
            raise ValueError("leg_retries must be >= 0")
        if self.deadline_seconds is not None and self.deadline_seconds <= 0:
            raise ValueError("deadline_seconds must be > 0")


class _Deadline:
    """A monotonic end-to-end budget (inert when ``budget`` is None)."""

    __slots__ = ("budget", "_expires")

    def __init__(self, budget: Optional[float]) -> None:
        self.budget = budget
        self._expires = (
            None if budget is None else time.monotonic() + budget
        )

    def remaining(self) -> Optional[float]:
        if self._expires is None:
            return None
        return self._expires - time.monotonic()

    def expired(self) -> bool:
        return (
            self._expires is not None and time.monotonic() >= self._expires
        )

    def clamp(self, timeout: Optional[float]) -> Optional[float]:
        """Bound a wait by the remaining budget."""
        remaining = self.remaining()
        if remaining is None:
            return timeout
        remaining = max(0.0, remaining)
        return remaining if timeout is None else min(timeout, remaining)


@dataclass(frozen=True)
class FleetAnswer:
    """One answered query, stamped with fleet routing provenance.

    Field-compatible with the single-replica
    :class:`~repro.serving.service.ServedAnswer` surface the load
    generator reads, plus the routing story (mode, shards touched,
    hedges fired) and the coverage contract: ``coverage == 1.0`` is the
    exact single-replica answer; ``coverage < 1.0`` is an explicitly
    degraded partial (only produced under ``FleetConfig.allow_degraded``
    when a shard was down), never a silently wrong ranking.
    """

    query: str
    experts: Tuple[RankedExpert, ...]
    terms: Tuple[str, ...]
    matched_domain: Optional[str]
    snapshot_version: int
    cache_hit: bool
    coalesced: bool
    expansion_seconds: float
    detection_seconds: float
    total_seconds: float
    #: "single-shard" (whole query on one replica) or "scatter-gather"
    mode: str = "single-shard"
    #: shards that served this answer
    shards: Tuple[int, ...] = ()
    #: backup requests fired for this answer
    hedges: int = 0
    #: fraction of expansion terms the answer covers (1.0 = exact)
    coverage: float = 1.0


@dataclass(frozen=True)
class FleetStats:
    """Aggregated router counters plus per-replica vitals."""

    replicas: int
    shards: int
    policy: str
    requests: int
    single_shard: int
    scattered: int
    scatter_legs: int
    hedges_fired: int
    hedge_wins: int
    failovers: int
    skew_retries: int
    promotions: int
    degraded_answers: int = 0
    deadline_exceeded: int = 0
    breaker_rejections: int = 0
    replica_vitals: Tuple[ReplicaVitals, ...] = ()
    replica_health: Tuple[Tuple[str, ReplicaHealthReport], ...] = ()

    def to_dict(self) -> dict:
        return {
            "replicas": self.replicas,
            "shards": self.shards,
            "policy": self.policy,
            "requests": self.requests,
            "single_shard": self.single_shard,
            "scattered": self.scattered,
            "scatter_legs": self.scatter_legs,
            "hedges_fired": self.hedges_fired,
            "hedge_wins": self.hedge_wins,
            "failovers": self.failovers,
            "skew_retries": self.skew_retries,
            "promotions": self.promotions,
            "degraded_answers": self.degraded_answers,
            "deadline_exceeded": self.deadline_exceeded,
            "breaker_rejections": self.breaker_rejections,
            "replica_vitals": [v.to_dict() for v in self.replica_vitals],
            "replica_health": {
                name: report.to_dict()
                for name, report in self.replica_health
            },
        }


@dataclass
class _HedgedOutcome:
    value: object
    hedges: int = 0
    backup_won: bool = False
    failovers: int = 0


@dataclass(frozen=True)
class _TenantRoute:
    """One tenant's routing state: its own store, ranking, and sharding.

    The router keeps one of these per tenant so expansion and shard
    planning always run against the corpus the query is *for* — two
    tenants with overlapping keywords still route independently.
    """

    store: DomainStore
    ranking: RankingConfig
    sharding: ShardingPolicy
    policy: object
    graph: object = None


class FleetRouter:
    """Scatter-gather front-end over a fixed replica fleet."""

    def __init__(
        self,
        replicas: Sequence,
        *,
        domain_store: DomainStore,
        ranking: RankingConfig,
        sharding: Optional[ShardingPolicy] = None,
        expansion_policy=None,
        graph=None,
        config: Optional[FleetConfig] = None,
    ) -> None:
        from repro.expansion.policies import FullCommunityPolicy

        if not replicas:
            raise ValueError("a fleet needs at least one replica")
        names = [replica.name for replica in replicas]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate replica names: {names}")
        self.replicas = list(replicas)
        self.config = config or FleetConfig()
        self.sharding = sharding or DomainPartitionSharding.from_store(
            len(replicas), domain_store
        )
        if self.sharding.num_shards != len(self.replicas):
            raise ValueError(
                f"sharding covers {self.sharding.num_shards} shards but the "
                f"fleet has {len(self.replicas)} replicas"
            )
        self._store = domain_store
        self._ranking = ranking
        self._policy = expansion_policy or FullCommunityPolicy()
        self._graph = graph
        #: tenant → routing state; the classic constructor serves the
        #: default tenant, ``add_tenant`` grows the table
        self._routes: Dict[str, _TenantRoute] = {
            DEFAULT_TENANT: _TenantRoute(
                store=self._store,
                ranking=self._ranking,
                sharding=self.sharding,
                policy=self._policy,
                graph=self._graph,
            )
        }
        self._by_name = {replica.name: replica for replica in replicas}
        self._tracker = ReplicaTracker(
            names,
            window=self.config.latency_window,
            hedge_percentile=self.config.hedge_percentile,
            min_samples=self.config.hedge_min_samples,
            default_deadline_seconds=(
                self.config.hedge_default_deadline_seconds
            ),
            breaker=self.config.breaker,
        )
        threads = self.config.executor_threads
        if threads is None:
            threads = max(8, 4 * len(self.replicas))
        #: runs ONLY leaf replica calls — nothing submitted here ever
        #: submits here again, so the pool cannot deadlock on itself
        self._executor = ThreadPoolExecutor(
            max_workers=threads, thread_name_prefix="repro-fleet"
        )
        self._lock = threading.Lock()
        self._requests = 0  # guarded-by: _lock
        self._single = 0  # guarded-by: _lock
        self._scattered = 0  # guarded-by: _lock
        self._legs = 0  # guarded-by: _lock
        self._hedges = 0  # guarded-by: _lock
        self._hedge_wins = 0  # guarded-by: _lock
        self._failovers = 0  # guarded-by: _lock
        self._skew_retries = 0  # guarded-by: _lock
        self._promotions = 0  # guarded-by: _lock
        self._degraded = 0  # guarded-by: _lock
        self._deadline_exceeded = 0  # guarded-by: _lock
        self._breaker_rejections = 0  # guarded-by: _lock
        self._closed = False

    @classmethod
    def from_artifact(
        cls,
        path,
        replicas: Sequence,
        *,
        sharding: str = "domain",
        expected_config=None,
        config: Optional[FleetConfig] = None,
    ) -> "FleetRouter":
        """Build a router whose routing state warm-starts from an artifact.

        Loads **only** the domain-store stage
        (:func:`~repro.artifact.load_artifact_stages`) — the front-end
        needs the keyword → domain map for expansion/routing, not the
        corpus — plus the manifest config for ranking semantics.
        """
        from repro.artifact import load_artifact_stages

        partial = load_artifact_stages(
            path, ("domain_store",), expected_config
        )
        domain_store = partial.values["domain_store"]
        if sharding == "domain":
            policy: ShardingPolicy = DomainPartitionSharding.from_store(
                len(replicas), domain_store
            )
        elif sharding == "hash":
            policy = TokenHashSharding(len(replicas))
        else:
            raise ValueError(f"unknown sharding policy {sharding!r}")
        return cls(
            replicas,
            domain_store=domain_store,
            ranking=partial.config.ranking,
            sharding=policy,
            config=config,
        )

    @classmethod
    def from_tenant_artifacts(
        cls,
        tenant_dirs: Dict[str, object],
        replicas: Sequence,
        *,
        sharding: str = "domain",
        config: Optional[FleetConfig] = None,
    ) -> "FleetRouter":
        """Build a multi-tenant router: one route per tenant artifact.

        ``tenant_dirs`` maps tenant name → artifact directory; each
        tenant gets its own domain store, ranking config, and sharding
        plan (loaded front-end-only, like :meth:`from_artifact`).  The
        replicas must themselves serve those tenants (constructed with
        matching tenant specs).  The default single-tenant route exists
        only if ``tenant_dirs`` names the default tenant.
        """
        from repro.artifact import load_artifact_stages

        if not tenant_dirs:
            raise FleetError("from_tenant_artifacts needs at least one tenant")
        names = sorted(tenant_dirs)
        first = load_artifact_stages(
            tenant_dirs[names[0]], ("domain_store",), None
        )
        router = cls(
            replicas,
            domain_store=first.values["domain_store"],
            ranking=first.config.ranking,
            sharding=cls._shard_policy(
                sharding, len(replicas), first.values["domain_store"]
            ),
            config=config,
        )
        # the seed route above landed under the default tenant; re-key
        # the table so only the named tenants route
        del router._routes[DEFAULT_TENANT]
        router.add_tenant(
            names[0],
            first.values["domain_store"],
            first.config.ranking,
            sharding=router.sharding,
        )
        for tenant in names[1:]:
            partial = load_artifact_stages(
                tenant_dirs[tenant], ("domain_store",), None
            )
            store = partial.values["domain_store"]
            router.add_tenant(
                tenant,
                store,
                partial.config.ranking,
                sharding=cls._shard_policy(sharding, len(replicas), store),
            )
        return router

    @staticmethod
    def _shard_policy(
        sharding: str, num_replicas: int, domain_store: DomainStore
    ) -> ShardingPolicy:
        if sharding == "domain":
            return DomainPartitionSharding.from_store(
                num_replicas, domain_store
            )
        if sharding == "hash":
            return TokenHashSharding(num_replicas)
        raise FleetError(f"unknown sharding policy {sharding!r}")

    def add_tenant(
        self,
        tenant: str,
        domain_store: DomainStore,
        ranking: RankingConfig,
        *,
        sharding: Optional[ShardingPolicy] = None,
        expansion_policy=None,
        graph=None,
    ) -> None:
        """Register a tenant's routing state (store + ranking + shards)."""
        from repro.expansion.policies import FullCommunityPolicy

        policy = sharding or DomainPartitionSharding.from_store(
            len(self.replicas), domain_store
        )
        if policy.num_shards != len(self.replicas):
            raise FleetError(
                f"tenant {tenant!r}: sharding covers {policy.num_shards} "
                f"shards but the fleet has {len(self.replicas)} replicas"
            )
        self._routes[tenant] = _TenantRoute(
            store=domain_store,
            ranking=ranking,
            sharding=policy,
            policy=expansion_policy or FullCommunityPolicy(),
            graph=graph,
        )

    def tenants(self) -> Tuple[str, ...]:
        """The tenants this router can route for, sorted."""
        return tuple(sorted(self._routes))

    def _route_for(self, tenant: str) -> _TenantRoute:
        route = self._routes.get(tenant)
        if route is None:
            raise UnknownTenantError(tenant, self._routes)
        return route

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        """Close every replica and release the call pool (idempotent)."""
        self._closed = True
        for replica in self.replicas:
            try:
                replica.close()
            except Exception:  # noqa: BLE001 - keep closing the rest
                pass
        self._executor.shutdown(wait=True)

    def __enter__(self) -> "FleetRouter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- replica management (the supervisor's hooks) -----------------------------

    def replica(self, name: str):
        """The live replica handle currently serving ``name``'s slot."""
        replica = self._by_name.get(name)
        if replica is None:
            raise FleetError(f"unknown replica {name!r}")
        return replica

    def replace_replica(self, name: str, replica) -> None:
        """Swap a (restarted) replica into an existing slot.

        The new handle must carry the same name; the tracker's history
        and breaker for the slot are reset so the fresh process starts
        with a clean record instead of inheriting its predecessor's
        failure streak.
        """
        if replica.name != name:
            raise FleetError(
                f"replacement is named {replica.name!r}, slot is {name!r}"
            )
        with self._lock:
            if name not in self._by_name:
                raise FleetError(f"unknown replica {name!r}")
            for index, current in enumerate(self.replicas):
                if current.name == name:
                    self.replicas[index] = replica
                    break
            self._by_name[name] = replica
        self._tracker.reset(name)

    @property
    def tracker(self) -> ReplicaTracker:
        return self._tracker

    # -- the serving path --------------------------------------------------------

    def query(
        self,
        query: str,
        min_zscore: Optional[float] = None,
        *,
        deadline_seconds: Optional[float] = None,
        tenant: str = DEFAULT_TENANT,
    ) -> FleetAnswer:
        """Route one query through the fleet.

        Exactly the single-replica answer (same experts, same order,
        same snapshot version), produced by one replica or merged from
        several — the caller cannot tell which, except through the
        provenance fields.  ``deadline_seconds`` (or the config default)
        bounds the whole call end to end; a degraded partial (only with
        ``allow_degraded``) is marked by ``coverage < 1.0``.
        ``tenant`` picks the corpus (and its route); the default tenant
        is the classic single-tenant fleet.
        """
        if self._closed:
            raise ServiceClosedError("fleet router is closed")
        route = self._route_for(tenant)
        started = time.perf_counter()
        budget = (
            deadline_seconds
            if deadline_seconds is not None
            else self.config.deadline_seconds
        )
        with self._lock:
            self._requests += 1
        attempts = self.config.skew_retries + 1
        for attempt in range(attempts):
            deadline = _Deadline(budget)
            try:
                return self._route(
                    route, tenant, query, min_zscore, started, deadline
                )
            except FleetVersionSkewError:
                if attempt + 1 == attempts:
                    raise
                with self._lock:
                    self._skew_retries += 1
        raise AssertionError("unreachable")  # pragma: no cover

    def _route(
        self,
        route: _TenantRoute,
        tenant: str,
        query: str,
        min_zscore: Optional[float],
        started: float,
        deadline: _Deadline,
    ) -> FleetAnswer:
        expansion_started = time.perf_counter()
        terms, domain_id = self._expand(route, query)
        expansion_seconds = time.perf_counter() - expansion_started
        legs = route.sharding.plan(terms)

        if len(legs) == 1:
            (shard,) = legs
            outcome = self._call_hedged(
                shard,
                self._query_call(query, min_zscore, deadline, tenant),
                deadline,
            )
            answer = outcome.value
            self._account(
                single=1,
                hedges=outcome.hedges,
                hedge_wins=int(outcome.backup_won),
                failovers=outcome.failovers,
            )
            return FleetAnswer(
                query=answer.query,
                experts=answer.experts,
                terms=answer.terms,
                matched_domain=answer.matched_domain,
                snapshot_version=answer.snapshot_version,
                cache_hit=answer.cache_hit,
                coalesced=answer.coalesced,
                expansion_seconds=expansion_seconds,
                detection_seconds=answer.detection_seconds,
                total_seconds=time.perf_counter() - started,
                mode="single-shard",
                shards=(shard,),
                hedges=outcome.hedges,
            )

        threshold = (
            min_zscore if min_zscore is not None else route.ranking.min_zscore
        )
        detection_started = time.perf_counter()
        ordered = sorted(legs.items())
        results, errors = self._scatter(query, ordered, deadline, tenant)
        outcomes = [outcome for outcome in results if outcome is not None]
        failures = [exc for exc in errors if exc is not None]
        served_shards = [
            shard
            for (shard, _indexed), outcome in zip(ordered, results)
            if outcome is not None
        ]
        coverage = 1.0
        if failures:
            if not self.config.allow_degraded or not outcomes:
                misses = [
                    exc
                    for exc in failures
                    if isinstance(exc, DeadlineExceededError)
                ]
                raise misses[0] if misses else failures[0]
            total_terms = sum(len(indexed) for _, indexed in ordered)
            served_terms = sum(
                len(indexed)
                for (_shard, indexed), outcome in zip(ordered, results)
                if outcome is not None
            )
            coverage = served_terms / total_terms if total_terms else 0.0
        pools = [outcome.value for outcome in outcomes]
        experts, version = merge_partials(
            pools,
            threshold=threshold,
            max_results=route.ranking.max_results,
        )
        detection_seconds = time.perf_counter() - detection_started
        hedges = sum(outcome.hedges for outcome in outcomes)
        self._account(
            scattered=1,
            legs=len(ordered),
            hedges=hedges,
            hedge_wins=sum(int(o.backup_won) for o in outcomes),
            failovers=sum(o.failovers for o in outcomes),
            degraded=int(coverage < 1.0),
        )
        return FleetAnswer(
            query=query,
            experts=experts,
            terms=tuple(terms),
            matched_domain=domain_id,
            snapshot_version=version,
            cache_hit=False,
            coalesced=False,
            expansion_seconds=expansion_seconds,
            detection_seconds=detection_seconds,
            total_seconds=time.perf_counter() - started,
            mode="scatter-gather",
            shards=tuple(sorted(served_shards)),
            hedges=hedges,
            coverage=coverage,
        )

    def _expand(
        self, route: _TenantRoute, query: str
    ) -> Tuple[List[str], Optional[str]]:
        """The exact expansion every replica would compute (§5)."""
        domain = route.store.lookup(query)
        if domain is None:
            return [query], None
        return (
            route.policy.terms(query, domain, route.graph),
            domain.domain_id,
        )

    # -- budget-aware replica calls ----------------------------------------------

    @staticmethod
    def _tenant_kwargs(replica, tenant: str) -> dict:
        """``{"tenant": ...}`` for tenant-aware replicas; the default
        tenant rides for free on legacy replicas, any other tenant on a
        tenant-blind replica is a routing bug surfaced typed."""
        if getattr(replica, "supports_tenants", False):
            return {"tenant": tenant}
        if tenant != DEFAULT_TENANT:
            raise UnknownTenantError(tenant, (DEFAULT_TENANT,))
        return {}

    def _query_call(
        self,
        query: str,
        min_zscore: Optional[float],
        deadline: _Deadline,
        tenant: str = DEFAULT_TENANT,
    ) -> Callable:
        def call(replica):
            kwargs = self._tenant_kwargs(replica, tenant)
            budget = deadline.remaining()
            if budget is not None and getattr(
                replica, "supports_budget", False
            ):
                kwargs["budget_seconds"] = max(0.0, budget)
            return replica.query(query, min_zscore, **kwargs)

        return call

    def _partial_call(
        self,
        query: str,
        indexed,
        deadline: _Deadline,
        tenant: str = DEFAULT_TENANT,
    ) -> Callable:
        def call(replica):
            kwargs = self._tenant_kwargs(replica, tenant)
            budget = deadline.remaining()
            if budget is not None and getattr(
                replica, "supports_budget", False
            ):
                kwargs["budget_seconds"] = max(0.0, budget)
            return replica.score_partial(query, indexed, **kwargs)

        return call

    def _scatter(
        self,
        query: str,
        ordered: List[Tuple[int, List[Tuple[int, str]]]],
        deadline: _Deadline,
        tenant: str = DEFAULT_TENANT,
    ) -> Tuple[
        List[Optional[_HedgedOutcome]], List[Optional[BaseException]]
    ]:
        """Run every leg's hedged call concurrently; gather in shard order.

        Coordinator threads are plain daemons (one per extra leg; the
        first leg coordinates on the calling thread) because a hedged
        call *waits* on executor futures — coordinating on the executor
        itself could deadlock a saturated pool.  Returns per-leg results
        and errors aligned with ``ordered``; a leg whose coordinator is
        still running at the gather deadline counts as failed (the
        daemon thread is abandoned, its late result discarded).
        """
        results: List[Optional[_HedgedOutcome]] = [None] * len(ordered)
        errors: List[Optional[BaseException]] = [None] * len(ordered)

        def coordinate(position: int, shard: int, indexed) -> None:
            try:
                results[position] = self._call_hedged(
                    shard,
                    self._partial_call(query, indexed, deadline, tenant),
                    deadline,
                )
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors[position] = exc

        threads = [
            threading.Thread(
                target=coordinate,
                args=(position, shard, indexed),
                name=f"repro-fleet-leg-{shard}",
                daemon=True,
            )
            for position, (shard, indexed) in enumerate(ordered)
            if position > 0
        ]
        for thread in threads:
            thread.start()
        coordinate(0, *ordered[0])
        gather_budget = deadline.clamp(self.config.gather_timeout_seconds)
        expires = time.monotonic() + gather_budget
        for position, thread in enumerate(threads, start=1):
            thread.join(timeout=max(0.0, expires - time.monotonic()))
            if thread.is_alive():
                # abandon the leg: discard any result that lands later
                results[position] = None
                errors[position] = (
                    DeadlineExceededError(
                        f"leg {thread.name} missed the "
                        f"{deadline.budget}s deadline",
                        budget_seconds=deadline.budget,
                    )
                    if deadline.expired()
                    else NoHealthyReplicaError(
                        f"gather timed out after "
                        f"{self.config.gather_timeout_seconds}s waiting for "
                        f"{thread.name}"
                    )
                )
        return results, errors

    def _call_hedged(
        self, shard: int, call: Callable, deadline: _Deadline
    ) -> _HedgedOutcome:
        """Call the shard's replica with hedging + bounded failover.

        The primary runs on the executor so this thread can race it
        against the tracker's deadline; past the deadline (or on primary
        failure) the next-healthiest *admitting* replica gets a backup
        and the first success wins.  The loser future is cancelled —
        unstarted work is dropped; started work completes and its
        latency still feeds the tracker.  Failovers stop after
        ``leg_retries``; deadline misses are terminal (no failover); a
        primary whose breaker rejects falls through to the healthiest
        admitting replica, or :class:`CircuitOpenError` when none is
        left.
        """
        primary = self.replicas[shard]
        if not self._tracker.admit(primary.name):
            self._account(breaker_rejections=1)
            fallback = self._next_backup({primary.name})
            if fallback is None:
                raise CircuitOpenError(
                    f"shard {shard}: no replica's circuit breaker admits "
                    "the call"
                )
            primary = fallback
        tried = {primary.name}
        flights: Dict[Future, str] = {self._spawn(primary, call): primary.name}
        hedges = 0
        failovers = 0
        hedged = False
        use_deadline = self.config.hedging and len(self.replicas) > 1
        first_error: Optional[BaseException] = None
        while flights:
            remaining = deadline.remaining()
            if remaining is not None and remaining <= 0:
                for loser in flights:
                    loser.cancel()
                self._account(deadline_exceeded=1)
                raise DeadlineExceededError(
                    f"deadline budget of {deadline.budget}s exhausted "
                    f"waiting on shard {shard}",
                    budget_seconds=deadline.budget,
                )
            timeout = (
                self._tracker.hedge_deadline(primary.name)
                if use_deadline and not hedged
                else None
            )
            timeout = deadline.clamp(timeout)
            done, _ = wait(
                set(flights), timeout=timeout, return_when=FIRST_COMPLETED
            )
            if not done:
                if deadline.expired():
                    continue  # the loop top raises the typed miss
                # hedge deadline expired: fire ONE backup, then first
                # answer wins
                hedged = True
                backup = self._next_backup(tried)
                if backup is not None:
                    tried.add(backup.name)
                    hedges += 1
                    flights[self._spawn(backup, call)] = backup.name
                continue
            for future in done:
                name = flights.pop(future)
                try:
                    value = future.result()
                except BaseException as exc:  # noqa: BLE001 - failover
                    if isinstance(exc, DeadlineExceededError):
                        # the budget is spent fleet-wide: retrying
                        # elsewhere cannot beat it
                        for loser in flights:
                            loser.cancel()
                        self._account(deadline_exceeded=1)
                        raise exc
                    if not isinstance(exc, ServiceClosedError):
                        self._tracker.record_failure(name)
                    if first_error is None:
                        first_error = exc
                    if not flights and failovers < self.config.leg_retries:
                        backup = self._next_backup(tried)
                        if backup is not None:
                            tried.add(backup.name)
                            failovers += 1
                            flights[self._spawn(backup, call)] = backup.name
                    continue
                for loser in flights:
                    loser.cancel()
                return _HedgedOutcome(
                    value=value,
                    hedges=hedges,
                    backup_won=(name != primary.name),
                    failovers=failovers,
                )
        if first_error is not None:
            raise first_error
        raise NoHealthyReplicaError("no replica answered")

    def _next_backup(self, tried: set):
        """The healthiest untried replica whose breaker admits a call."""
        name = self._tracker.select(exclude=tried)
        if name is None:
            return None
        return self._by_name[name]

    def _spawn(self, replica, call: Callable) -> Future:
        """Run one replica call on the leaf executor, feeding the tracker."""

        def run():
            call_started = time.perf_counter()
            value = call(replica)
            self._tracker.record_success(
                replica.name, time.perf_counter() - call_started
            )
            return value

        return self._executor.submit(run)

    def _account(
        self,
        *,
        single: int = 0,
        scattered: int = 0,
        legs: int = 0,
        hedges: int = 0,
        hedge_wins: int = 0,
        failovers: int = 0,
        degraded: int = 0,
        deadline_exceeded: int = 0,
        breaker_rejections: int = 0,
    ) -> None:
        with self._lock:
            self._single += single
            self._scattered += scattered
            self._legs += legs
            self._hedges += hedges
            self._hedge_wins += hedge_wins
            self._failovers += failovers
            self._degraded += degraded
            self._deadline_exceeded += deadline_exceeded
            self._breaker_rejections += breaker_rejections

    # -- two-phase snapshot promotion --------------------------------------------

    def promote(
        self, artifact_dir, *, tenant: str = DEFAULT_TENANT
    ) -> int:
        """Roll the whole fleet to an artifact generation, two-phase.

        ``tenant`` scopes the roll: only that tenant's generation moves
        on every replica; every other tenant keeps its version (and its
        warm caches) untouched.

        **Phase one (preload):** every replica loads the artifact fully —
        decode, corpus, candidate index — while still serving its current
        generation.  Any failure aborts the promotion with *nothing
        flipped anywhere* (:class:`PromotionError` lists per-replica
        outcomes).  All replicas must stage the same manifest version.

        **Phase two (flip):** each replica CAS-publishes the staged
        generation (``publish(expected_version=<its current version>,
        version=<staged>)``).  A replica whose version moved in between
        fails the CAS loudly; the error reports which replicas flipped.
        The flip itself is one reference swap per replica, and the
        gather path refuses mixed-version merges in the window, so a
        client can never observe a blended ranking.

        Returns the fleet-wide version after a fully successful roll.
        """
        if self._closed:
            raise ServiceClosedError("fleet router is closed")
        outcomes: Dict[str, str] = {}

        def preload(replica):
            return replica.preload(
                artifact_dir, **self._tenant_kwargs(replica, tenant)
            )

        preload_futures = [
            (replica, self._executor.submit(preload, replica))
            for replica in self.replicas
        ]
        staged_versions: Dict[str, int] = {}
        failed = False
        for replica, future in preload_futures:
            try:
                staged_versions[replica.name] = future.result(
                    timeout=self.config.gather_timeout_seconds
                )
                outcomes[replica.name] = (
                    f"preloaded v{staged_versions[replica.name]}"
                )
            except Exception as exc:  # noqa: BLE001 - aggregated below
                outcomes[replica.name] = f"preload failed: {exc}"
                failed = True
        if failed:
            raise PromotionError(
                "phase one (preload) failed; nothing was flipped", outcomes
            )
        versions = sorted(set(staged_versions.values()))
        if len(versions) > 1:
            raise PromotionError(
                f"replicas staged different versions {versions}; "
                "nothing was flipped",
                outcomes,
            )
        target = versions[0]

        # current serving versions, read *after* preload so a lazily
        # loaded tenant is resident by now; the CAS below catches any
        # promotion racing this one
        current: Dict[str, int] = {}
        for replica in self.replicas:
            version = replica.health().tenant_version(tenant)
            if version is None:
                outcomes[replica.name] = (
                    f"tenant {tenant!r} not served; nothing was flipped"
                )
                raise PromotionError(
                    f"replica {replica.name} does not serve tenant "
                    f"{tenant!r}; nothing was flipped",
                    outcomes,
                )
            current[replica.name] = version

        flipped = 0
        for replica in self.replicas:
            try:
                flipped_to = replica.promote(
                    expected_version=current[replica.name],
                    **self._tenant_kwargs(replica, tenant),
                )
                outcomes[replica.name] = f"flipped to v{flipped_to}"
                flipped += 1
            except Exception as exc:  # noqa: BLE001 - aggregated below
                outcomes[replica.name] = f"flip failed: {exc}"
                raise PromotionError(
                    f"phase two (flip) failed on {replica.name} after "
                    f"{flipped} of {len(self.replicas)} replicas flipped",
                    outcomes,
                ) from exc
        with self._lock:
            self._promotions += 1
        return target

    # -- observability -----------------------------------------------------------

    def health(self) -> Dict[str, ReplicaHealthReport]:
        """Poll every reachable replica's vitals (version skew shows up
        here).  A replica that cannot answer — killed, hung, mid-restart
        — is omitted rather than turning an observability call into a
        crash; its absence *is* the signal."""
        reports: Dict[str, ReplicaHealthReport] = {}
        for replica in self.replicas:
            try:
                reports[replica.name] = replica.health()
            except Exception:  # noqa: BLE001 - dead replica: omitted
                continue
        return reports

    def stats(self) -> FleetStats:
        with self._lock:
            requests = self._requests
            single = self._single
            scattered = self._scattered
            legs = self._legs
            hedges = self._hedges
            hedge_wins = self._hedge_wins
            failovers = self._failovers
            skew_retries = self._skew_retries
            promotions = self._promotions
            degraded = self._degraded
            deadline_exceeded = self._deadline_exceeded
            breaker_rejections = self._breaker_rejections
        return FleetStats(
            replicas=len(self.replicas),
            shards=self.sharding.num_shards,
            policy=self.sharding.name,
            requests=requests,
            single_shard=single,
            scattered=scattered,
            scatter_legs=legs,
            hedges_fired=hedges,
            hedge_wins=hedge_wins,
            failovers=failovers,
            skew_retries=skew_retries,
            promotions=promotions,
            degraded_answers=degraded,
            deadline_exceeded=deadline_exceeded,
            breaker_rejections=breaker_rejections,
            replica_vitals=tuple(self._tracker.vitals()),
            replica_health=tuple(self.health().items()),
        )

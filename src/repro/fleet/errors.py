"""Typed failure modes of the fleet tier.

Everything a :class:`~repro.fleet.router.FleetRouter` can surface derives
from :class:`FleetError`, which itself derives from the serving tier's
:class:`~repro.serving.errors.ServingError` — a client already handling
serving failures handles fleet failures for free, and can still tell a
single-replica overload apart from a fleet-wide routing problem.
"""

from __future__ import annotations

from repro.serving.errors import ServingError


class FleetError(ServingError):
    """Base class for every fleet-tier failure."""


class NoHealthyReplicaError(FleetError):
    """Every candidate replica for a request failed or was unreachable."""


class FleetVersionSkewError(FleetError):
    """Scatter legs answered from different snapshot versions.

    The merge refuses to combine pools from mixed generations — a merged
    ranking spanning two domain collections would be an answer no single
    replica could ever have produced.  The router retries the whole
    query (bounded), which re-scatters against the settled generation.
    """


class FleetTenantMismatchError(FleetError):
    """Scatter legs answered for different tenants.

    The merge refuses to combine partial pools across tenants — the
    result would mix corpora no tenant ever asked for.  Like version
    skew this indicates a routing bug, not a transient, so it is
    surfaced rather than retried.
    """


class PromotionError(FleetError):
    """Two-phase snapshot promotion failed.

    Carries per-replica outcomes so the operator can see exactly which
    replica failed which phase.  After a phase-one (preload) failure
    nothing was flipped anywhere; after a phase-two CAS failure the
    offending replica kept its generation and the error says which
    replicas were already flipped.
    """

    def __init__(self, message: str, outcomes: dict[str, str] | None = None):
        super().__init__(message)
        #: replica name → human-readable phase outcome
        self.outcomes = dict(outcomes or {})


class WorkerProtocolError(FleetError):
    """A subprocess worker broke the wire protocol or died mid-request."""


class ReplicaStartupError(FleetError):
    """A subprocess replica failed (or timed out) its ready handshake.

    Carries the worker's captured stderr tail and exit code so a crash
    during warm start reports *why* instead of a bare timeout.
    """

    def __init__(
        self,
        message: str,
        *,
        stderr_tail: tuple[str, ...] = (),
        exit_code: int | None = None,
    ) -> None:
        tail = "\n".join(stderr_tail).strip()
        if tail:
            message = f"{message}\n--- worker stderr tail ---\n{tail}"
        super().__init__(message)
        self.stderr_tail = tuple(stderr_tail)
        self.exit_code = exit_code


class CircuitOpenError(FleetError):
    """Every candidate replica's circuit breaker is open.

    The fleet is failing fast instead of queueing onto replicas that
    just demonstrated they cannot answer; breakers half-open after their
    cooldown and probe traffic re-closes them.
    """


class RemoteReplicaError(FleetError):
    """A worker-side failure that has no typed local counterpart.

    The original exception type survives as :attr:`remote_type` so
    health tracking and logs keep the real failure mode.
    """

    def __init__(self, remote_type: str, message: str):
        super().__init__(f"{remote_type}: {message}")
        self.remote_type = remote_type

"""Per-replica health tracking and hedging deadlines.

The router records every replica call's latency (bounded window) and
failure streak here, and asks two questions back:

* *when should a hedge fire?* — :meth:`ReplicaTracker.hedge_deadline`
  returns the replica's recent latency percentile, so backups fire only
  when a call is slow **for that replica**, not on a fleet-wide constant;
* *who should serve it?* — :meth:`ReplicaTracker.ranked` orders
  replicas healthiest-first (shortest failure streak, then fastest
  median, then name), deterministically.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from repro.utils.stats import percentile


@dataclass(frozen=True)
class ReplicaVitals:
    """Read-only view of one replica's tracked health."""

    name: str
    samples: int
    consecutive_failures: int
    total_failures: int
    p50_seconds: float
    p95_seconds: float

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "samples": self.samples,
            "consecutive_failures": self.consecutive_failures,
            "total_failures": self.total_failures,
            "p50_ms": self.p50_seconds * 1000,
            "p95_ms": self.p95_seconds * 1000,
        }


class ReplicaTracker:
    """Thread-safe latency/failure accounting for a fixed replica set."""

    def __init__(
        self,
        names: Iterable[str],
        *,
        window: int = 128,
        hedge_percentile: float = 0.95,
        min_samples: int = 8,
        default_deadline_seconds: float = 0.05,
        min_deadline_seconds: float = 0.001,
    ) -> None:
        names = list(names)
        if not names:
            raise ValueError("tracker needs at least one replica")
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate replica names: {names}")
        if not 0.0 < hedge_percentile <= 1.0:
            raise ValueError("hedge_percentile must be in (0, 1]")
        self._window = window
        self._hedge_percentile = hedge_percentile
        self._min_samples = min_samples
        self._default_deadline = default_deadline_seconds
        self._min_deadline = min_deadline_seconds
        self._lock = threading.Lock()
        self._latencies: Dict[str, deque] = {  # guarded-by: _lock
            name: deque(maxlen=window) for name in names
        }
        self._streak: Dict[str, int] = {name: 0 for name in names}  # guarded-by: _lock
        self._failures: Dict[str, int] = {name: 0 for name in names}  # guarded-by: _lock
        self._order: Tuple[str, ...] = tuple(names)

    @property
    def names(self) -> Tuple[str, ...]:
        return self._order

    def record_success(self, name: str, seconds: float) -> None:
        with self._lock:
            self._latencies[name].append(seconds)
            self._streak[name] = 0

    def record_failure(self, name: str) -> None:
        with self._lock:
            self._streak[name] += 1
            self._failures[name] += 1

    def hedge_deadline(self, name: str) -> float:
        """How long to wait on ``name`` before firing a backup.

        The replica's recent latency percentile — until enough samples
        accumulate, a conservative default so a cold fleet doesn't hedge
        every first request.
        """
        with self._lock:
            samples = list(self._latencies[name])
        if len(samples) < self._min_samples:
            return self._default_deadline
        return max(
            percentile(samples, self._hedge_percentile), self._min_deadline
        )

    def ranked(self, exclude: Iterable[str] = ()) -> List[str]:
        """Replica names healthiest-first (deterministic tie-break)."""
        skip = set(exclude)
        with self._lock:
            def sort_key(name: str):
                samples = self._latencies[name]
                median = (
                    percentile(list(samples), 0.50) if samples else 0.0
                )
                return (self._streak[name], median, name)

            return sorted(
                (name for name in self._order if name not in skip),
                key=sort_key,
            )

    def vitals(self) -> List[ReplicaVitals]:
        with self._lock:
            out = []
            for name in self._order:
                samples = list(self._latencies[name])
                out.append(
                    ReplicaVitals(
                        name=name,
                        samples=len(samples),
                        consecutive_failures=self._streak[name],
                        total_failures=self._failures[name],
                        p50_seconds=(
                            percentile(samples, 0.50) if samples else 0.0
                        ),
                        p95_seconds=(
                            percentile(samples, 0.95) if samples else 0.0
                        ),
                    )
                )
            return out

"""Per-replica health tracking, hedging deadlines, and circuit breakers.

The router records every replica call's latency (bounded window) and
failure streak here, and asks three questions back:

* *when should a hedge fire?* — :meth:`ReplicaTracker.hedge_deadline`
  returns the replica's recent latency percentile, so backups fire only
  when a call is slow **for that replica**, not on a fleet-wide constant;
* *who should serve it?* — :meth:`ReplicaTracker.ranked` orders
  replicas healthiest-first (shortest failure streak, then fastest
  median, then name), deterministically;
* *may it serve at all?* — each replica carries a
  :class:`CircuitBreaker` (closed → open → half-open): a replica that
  just failed ``failure_threshold`` calls in a row is skipped outright
  until its cooldown elapses, then a single half-open probe decides
  whether it re-closes.  :meth:`ReplicaTracker.admit` /
  :meth:`ReplicaTracker.select` are the consuming gates the router uses.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.utils.stats import percentile


@dataclass(frozen=True)
class BreakerConfig:
    """Circuit-breaker knobs (per replica)."""

    enabled: bool = True
    #: consecutive failures that trip the breaker open
    failure_threshold: int = 5
    #: how long an open breaker rejects before half-opening one probe
    cooldown_seconds: float = 1.0

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if self.cooldown_seconds < 0:
            raise ValueError("cooldown_seconds must be >= 0")


class CircuitBreaker:
    """One replica's closed → open → half-open state machine.

    **Not** internally locked: the owning :class:`ReplicaTracker`
    mutates it only while holding its own lock.  The clock is injectable
    so tests drive the cooldown deterministically.
    """

    def __init__(
        self,
        config: BreakerConfig,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self._config = config
        self._clock = clock
        self._failures = 0
        self._opened_at: Optional[float] = None
        self._probing = False

    @property
    def state(self) -> str:
        """``"closed"``, ``"open"``, or ``"half-open"``."""
        if self._opened_at is None:
            return "closed"
        if self._probing or self._cooled():
            return "half-open"
        return "open"

    def _cooled(self) -> bool:
        return (
            self._opened_at is not None
            and self._clock() - self._opened_at
            >= self._config.cooldown_seconds
        )

    def available(self) -> bool:
        """Would :meth:`admit` let a call through right now? (read-only)"""
        if not self._config.enabled or self._opened_at is None:
            return True
        return self._cooled() and not self._probing

    def admit(self) -> bool:
        """Gate one call; a half-open breaker admits a single probe."""
        if not self._config.enabled or self._opened_at is None:
            return True
        if self._probing or not self._cooled():
            return False
        self._probing = True
        return True

    def on_success(self) -> None:
        self._failures = 0
        self._opened_at = None
        self._probing = False

    def on_failure(self) -> None:
        self._failures += 1
        if self._probing:
            # the half-open probe failed: reopen and restart the cooldown
            self._probing = False
            self._opened_at = self._clock()
        elif (
            self._opened_at is None
            and self._failures >= self._config.failure_threshold
        ):
            self._opened_at = self._clock()

    def reset(self) -> None:
        self.on_success()


@dataclass(frozen=True)
class ReplicaVitals:
    """Read-only view of one replica's tracked health."""

    name: str
    samples: int
    consecutive_failures: int
    total_failures: int
    p50_seconds: float
    p95_seconds: float
    breaker_state: str = "closed"

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "samples": self.samples,
            "consecutive_failures": self.consecutive_failures,
            "total_failures": self.total_failures,
            "p50_ms": self.p50_seconds * 1000,
            "p95_ms": self.p95_seconds * 1000,
            "breaker_state": self.breaker_state,
        }


class ReplicaTracker:
    """Thread-safe latency/failure/breaker accounting for a fixed fleet."""

    def __init__(
        self,
        names: Iterable[str],
        *,
        window: int = 128,
        hedge_percentile: float = 0.95,
        min_samples: int = 8,
        default_deadline_seconds: float = 0.05,
        min_deadline_seconds: float = 0.001,
        breaker: Optional[BreakerConfig] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        names = list(names)
        if not names:
            raise ValueError("tracker needs at least one replica")
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate replica names: {names}")
        if not 0.0 < hedge_percentile <= 1.0:
            raise ValueError("hedge_percentile must be in (0, 1]")
        self._window = window
        self._hedge_percentile = hedge_percentile
        self._min_samples = min_samples
        self._default_deadline = default_deadline_seconds
        self._min_deadline = min_deadline_seconds
        self._breaker_config = breaker or BreakerConfig()
        self._clock = clock
        self._lock = threading.Lock()
        self._latencies: Dict[str, deque] = {  # guarded-by: _lock
            name: deque(maxlen=window) for name in names
        }
        self._streak: Dict[str, int] = {name: 0 for name in names}  # guarded-by: _lock
        self._failures: Dict[str, int] = {name: 0 for name in names}  # guarded-by: _lock
        self._breakers: Dict[str, CircuitBreaker] = {  # guarded-by: _lock
            name: CircuitBreaker(self._breaker_config, clock)
            for name in names
        }
        self._order: Tuple[str, ...] = tuple(names)

    @property
    def names(self) -> Tuple[str, ...]:
        return self._order

    def record_success(self, name: str, seconds: float) -> None:
        with self._lock:
            self._latencies[name].append(seconds)
            self._streak[name] = 0
            self._breakers[name].on_success()

    def record_failure(self, name: str) -> None:
        with self._lock:
            self._streak[name] += 1
            self._failures[name] += 1
            self._breakers[name].on_failure()

    def reset(self, name: str) -> None:
        """Forget a replica's history (a supervisor just restarted it)."""
        with self._lock:
            self._latencies[name].clear()
            self._streak[name] = 0
            self._breakers[name].reset()

    # -- circuit-breaker gates ------------------------------------------------

    def admit(self, name: str) -> bool:
        """May ``name`` take a call right now? (consumes half-open probes)"""
        with self._lock:
            return self._breakers[name].admit()

    def available(self, name: str) -> bool:
        """Read-only :meth:`admit` — no probe token is consumed."""
        with self._lock:
            return self._breakers[name].available()

    def breaker_state(self, name: str) -> str:
        with self._lock:
            return self._breakers[name].state

    def select(self, exclude: Iterable[str] = ()) -> Optional[str]:
        """The healthiest replica whose breaker admits a call, or None."""
        skip = set(exclude)
        with self._lock:
            for name in self._ranked_locked(skip):
                if self._breakers[name].admit():
                    return name
        return None

    def hedge_deadline(self, name: str) -> float:
        """How long to wait on ``name`` before firing a backup.

        The replica's recent latency percentile — until enough samples
        accumulate, a conservative default so a cold fleet doesn't hedge
        every first request.
        """
        with self._lock:
            samples = list(self._latencies[name])
        if len(samples) < self._min_samples:
            return self._default_deadline
        return max(
            percentile(samples, self._hedge_percentile), self._min_deadline
        )

    def _ranked_locked(self, skip: set) -> List[str]:  # holds: _lock
        def sort_key(name: str):
            samples = self._latencies[name]
            median = percentile(list(samples), 0.50) if samples else 0.0
            return (self._streak[name], median, name)

        return sorted(
            (name for name in self._order if name not in skip),
            key=sort_key,
        )

    def ranked(self, exclude: Iterable[str] = ()) -> List[str]:
        """Replica names healthiest-first (deterministic tie-break)."""
        skip = set(exclude)
        with self._lock:
            return self._ranked_locked(skip)

    def vitals(self) -> List[ReplicaVitals]:
        with self._lock:
            out = []
            for name in self._order:
                samples = list(self._latencies[name])
                out.append(
                    ReplicaVitals(
                        name=name,
                        samples=len(samples),
                        consecutive_failures=self._streak[name],
                        total_failures=self._failures[name],
                        p50_seconds=(
                            percentile(samples, 0.50) if samples else 0.0
                        ),
                        p95_seconds=(
                            percentile(samples, 0.95) if samples else 0.0
                        ),
                        breaker_state=self._breakers[name].state,
                    )
                )
            return out

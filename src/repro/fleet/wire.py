"""JSON-lines wire format between the router and subprocess workers.

One request or response per line, UTF-8 JSON.  Requests carry a
monotonically increasing ``id``; responses echo it with either ``ok``
(the payload) or ``error`` (``{"type", "message"}``).  The worker's
very first line is an unsolicited ``{"op": "ready", "version": V}``
handshake so the parent knows the artifact finished loading.

Floats cross the wire through ``json`` (repr-based), which round-trips
every finite IEEE-754 double **exactly** — a score computed on a worker
compares bit-equal after decoding, so the merge's tie-breaking (and the
byte-identity property) survives process boundaries.
"""

from __future__ import annotations

import json
from typing import IO, Optional

from repro.chaos.inject import filter_frame
from repro.detector.features import FeatureVector
from repro.detector.normalize import NormalizedFeatures
from repro.detector.ranking import RankedExpert
from repro.fleet.errors import RemoteReplicaError, WorkerProtocolError
from repro.serving.errors import (
    DeadlineExceededError,
    ServiceClosedError,
    ServiceOverloadedError,
    TenantOverloadedError,
    UnknownTenantError,
)
from repro.serving.service import (
    DEFAULT_TENANT,
    PartialPool,
    ReplicaHealthReport,
    ServedAnswer,
    TenantHealth,
)
from repro.serving.snapshot import StaleSnapshotError

PROTOCOL_VERSION = 1


# -- records ------------------------------------------------------------------


def expert_to_wire(expert: RankedExpert) -> list:
    return [
        expert.user_id,
        expert.screen_name,
        expert.description,
        expert.verified,
        expert.followers,
        expert.score,
        list(expert.features),
        list(expert.zscores),
    ]


def expert_from_wire(raw: list) -> RankedExpert:
    return RankedExpert(
        user_id=raw[0],
        screen_name=raw[1],
        description=raw[2],
        verified=raw[3],
        followers=raw[4],
        score=raw[5],
        features=FeatureVector(*raw[6]),
        zscores=NormalizedFeatures(*raw[7]),
    )


def answer_to_wire(answer: ServedAnswer) -> dict:
    return {
        "query": answer.query,
        "experts": [expert_to_wire(e) for e in answer.experts],
        "terms": list(answer.terms),
        "matched_domain": answer.matched_domain,
        "snapshot_version": answer.snapshot_version,
        "cache_hit": answer.cache_hit,
        "coalesced": answer.coalesced,
        "expansion_seconds": answer.expansion_seconds,
        "detection_seconds": answer.detection_seconds,
        "total_seconds": answer.total_seconds,
        "tenant": answer.tenant,
    }


def answer_from_wire(raw: dict) -> ServedAnswer:
    return ServedAnswer(
        query=raw["query"],
        experts=tuple(expert_from_wire(e) for e in raw["experts"]),
        terms=tuple(raw["terms"]),
        matched_domain=raw["matched_domain"],
        snapshot_version=raw["snapshot_version"],
        cache_hit=raw["cache_hit"],
        coalesced=raw["coalesced"],
        expansion_seconds=raw["expansion_seconds"],
        detection_seconds=raw["detection_seconds"],
        total_seconds=raw["total_seconds"],
        # absent on frames from pre-tenancy peers: the default tenant
        tenant=raw.get("tenant", DEFAULT_TENANT),
    )


def partial_to_wire(pool: PartialPool) -> dict:
    return {
        "query": pool.query,
        "snapshot_version": pool.snapshot_version,
        "entries": [
            [index, expert_to_wire(expert)] for index, expert in pool.entries
        ],
        "tenant": pool.tenant,
    }


def partial_from_wire(raw: dict) -> PartialPool:
    return PartialPool(
        query=raw["query"],
        snapshot_version=raw["snapshot_version"],
        entries=tuple(
            (index, expert_from_wire(expert))
            for index, expert in raw["entries"]
        ),
        tenant=raw.get("tenant", DEFAULT_TENANT),
    )


def health_from_wire(raw: dict) -> ReplicaHealthReport:
    return ReplicaHealthReport(
        snapshot_version=raw["snapshot_version"],
        cache_hit_ratio=raw["cache_hit_ratio"],
        requests=raw["requests"],
        partial_requests=raw["partial_requests"],
        in_flight=raw["in_flight"],
        waiting=raw["waiting"],
        tenants=tuple(
            TenantHealth.from_dict(entry)
            for entry in raw.get("tenants", ())
        ),
    )


# -- errors -------------------------------------------------------------------

#: worker-side exception types re-raised as their typed local selves
_TYPED_ERRORS = {
    "ServiceClosedError": ServiceClosedError,
    "StaleSnapshotError": StaleSnapshotError,
    "DeadlineExceededError": DeadlineExceededError,
}


def error_to_wire(exc: BaseException) -> dict:
    frame = {"type": type(exc).__name__, "message": str(exc)}
    tenant = getattr(exc, "tenant", None)
    if tenant is not None:
        frame["tenant"] = tenant
    return frame


def error_from_wire(raw: dict) -> Exception:
    kind = raw.get("type", "Exception")
    message = raw.get("message", "")
    if kind == "TenantOverloadedError":
        # keep the tenant typing across the process boundary: the
        # router must not mistake one tenant's quota rejection for
        # global overload
        return TenantOverloadedError(
            str(raw.get("tenant", DEFAULT_TENANT)), message
        )
    if kind == "ServiceOverloadedError":
        # the structured fields are already rendered into the message;
        # reconstruct with the message as the reason so isinstance-based
        # backoff in the router keeps working
        return ServiceOverloadedError(message)
    if kind == "UnknownTenantError":
        return UnknownTenantError(str(raw.get("tenant", message)))
    factory = _TYPED_ERRORS.get(kind)
    if factory is not None:
        return factory(message)
    return RemoteReplicaError(kind, message)


# -- framing ------------------------------------------------------------------


def write_message(
    stream: IO[str],
    message: dict,
    *,
    chaos_site: Optional[str] = None,
    chaos_context: Optional[dict] = None,
) -> None:
    """One JSON object per line, flushed (the peer is blocked on it).

    ``chaos_site`` routes the frame through the fault injector (a no-op
    unless a plan is installed): a fault there can drop, truncate, or
    corrupt this frame before it reaches the peer — which must then
    detect the mangling through parse failures, timeouts, or failover,
    never by serving a wrong answer.
    """
    line = json.dumps(message, separators=(",", ":"))
    if chaos_site is not None:
        mangled = filter_frame(
            chaos_site, line, **(chaos_context or {})
        )
        if mangled is None:  # drop_frame: the peer never sees it
            return
        line = mangled
    stream.write(line + "\n")
    stream.flush()


def parse_message(line: str) -> dict:
    try:
        message = json.loads(line)
    except ValueError as exc:
        raise WorkerProtocolError(
            f"undecodable wire line: {line[:120]!r}"
        ) from exc
    if not isinstance(message, dict):
        raise WorkerProtocolError(
            f"wire message must be an object, got {type(message).__name__}"
        )
    return message

"""repro.fleet — shard-aware multi-replica serving (scatter-gather).

The paper's production system runs its online tier as a fleet behind a
front-end; this package is the reproduction's version of that tier on
top of the existing single-replica :class:`~repro.serving.service.ExpertService`:

* :class:`FleetRouter` — the front-end: deterministic shard routing,
  scatter-gather with exact single-replica merge semantics, hedged
  requests with per-replica latency deadlines, two-phase coordinated
  snapshot promotion.
* :class:`InProcessReplica` / :class:`SubprocessReplica` — the two
  replica transports (threads in-process, or ``python -m repro
  fleet-worker`` children warm-started from an artifact).
* :mod:`~repro.fleet.sharding` — domain-partition and consistent-hash
  term ownership, ``PYTHONHASHSEED``-independent.
* :func:`~repro.fleet.merge.merge_partials` — the gather step, provably
  byte-identical to a single replica's union ranking.

See ``README.md`` ("Fleet serving") for topology and semantics.
"""

from repro.fleet.errors import (
    CircuitOpenError,
    FleetError,
    FleetTenantMismatchError,
    FleetVersionSkewError,
    NoHealthyReplicaError,
    PromotionError,
    RemoteReplicaError,
    ReplicaStartupError,
    WorkerProtocolError,
)
from repro.fleet.health import (
    BreakerConfig,
    CircuitBreaker,
    ReplicaTracker,
    ReplicaVitals,
)
from repro.fleet.merge import merge_partials
from repro.fleet.replica import InProcessReplica, SubprocessReplica
from repro.fleet.router import (
    FleetAnswer,
    FleetConfig,
    FleetRouter,
    FleetStats,
)
from repro.fleet.sharding import (
    ConsistentHashRing,
    DomainPartitionSharding,
    ShardingPolicy,
    TokenHashSharding,
    stable_hash,
)
from repro.fleet.supervisor import (
    ReplicaRestart,
    ReplicaSupervisor,
    SlotReport,
    SupervisorConfig,
    SupervisorStats,
)

__all__ = [
    "BreakerConfig",
    "CircuitBreaker",
    "CircuitOpenError",
    "ConsistentHashRing",
    "DomainPartitionSharding",
    "FleetAnswer",
    "FleetConfig",
    "FleetError",
    "FleetRouter",
    "FleetStats",
    "FleetTenantMismatchError",
    "FleetVersionSkewError",
    "InProcessReplica",
    "NoHealthyReplicaError",
    "PromotionError",
    "RemoteReplicaError",
    "ReplicaRestart",
    "ReplicaStartupError",
    "ReplicaSupervisor",
    "ReplicaTracker",
    "ReplicaVitals",
    "ShardingPolicy",
    "SlotReport",
    "SubprocessReplica",
    "SupervisorConfig",
    "SupervisorStats",
    "TokenHashSharding",
    "WorkerProtocolError",
    "merge_partials",
    "stable_hash",
]

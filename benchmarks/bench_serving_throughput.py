"""SRV1 — serving throughput and tail latency (queries/sec trajectory).

The paper serves its online stages at interactive latencies (Table 9);
this bench starts tracking the *traffic* dimension on top of them: a
Zipf (duplicate-heavy) workload replayed through the concurrent
:class:`~repro.serving.service.ExpertService` versus the same workload
answered serially with no result cache.  The serving tier must win by at
least 2x — that is the cache + single-flight + sharded detection doing
real work, not thread-scheduling noise.

Writes ``BENCH_serving.json`` at the repo root (qps, p50/p95/p99, cache
hit rate) so future PRs can diff the perf trajectory.

Runs unchanged against a warm-started replica: set
``REPRO_FROM_ARTIFACT=<dir>`` (a ``python -m repro build --out``
artifact) and the session system loads from disk instead of rebuilding
— the workload, assertions and JSON report are identical.
"""

import json
import pathlib

from repro.serving.loadgen import run_serve
from repro.serving.service import ServiceConfig

from conftest import write_artifact

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

REQUESTS = 400
CONCURRENCY = 8


def test_serving_throughput(benchmark, ctx, results_dir):
    outcome = benchmark.pedantic(
        run_serve,
        args=(ctx.system,),
        kwargs={
            "requests": REQUESTS,
            "concurrency": CONCURRENCY,
            "max_unique": 64,
            "zipf_exponent": 1.1,
            "service_config": ServiceConfig(detection_workers=4),
            "measure_refresh": True,
        },
        rounds=1,
        iterations=1,
    )

    report = outcome.report
    assert report.errors == 0
    # the zero-downtime weekly rebuild (accumulator-join offline path)
    # must actually run and be accounted
    assert outcome.refresh_seconds is not None and outcome.refresh_seconds > 0
    # ... and so must the incremental delta refresh, which must beat it
    assert (
        outcome.delta_refresh_seconds is not None
        and 0 < outcome.delta_refresh_seconds < outcome.refresh_seconds
    )
    assert outcome.baseline is not None and outcome.baseline.errors == 0
    # the serving tier must earn its keep on a warm duplicate-heavy stream
    assert outcome.speedup is not None and outcome.speedup >= 2.0
    # the workload is duplicate-heavy, so a warm cache dominates
    assert report.cache_hit_rate > 0.5
    # hit + miss accounting must close over every admitted request
    info = outcome.stats.cache
    assert info.hits + info.misses == outcome.stats.requests

    payload = outcome.to_dict()
    bench_path = REPO_ROOT / "BENCH_serving.json"
    bench_path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    write_artifact(
        results_dir,
        "serving_throughput",
        outcome.render() + f"\n[json written to {bench_path}]",
    )

"""TEN1 — multi-tenant serving: isolation, aggregate QPS, and fairness.

One :class:`~repro.serving.tenancy.MultiTenantService` serves N corpora
from a single process — one shared result cache, single-flight table,
micro-batcher, and fair admission controller.  This bench measures the
three properties that make that consolidation safe:

**Isolation first.**  Every tenant is mapped onto one of two genuinely
different base corpora (different seeds).  Each tenant's answers under
concurrent mixed traffic are compared byte-for-byte against the classic
single-tenant :class:`~repro.serving.service.ExpertService` over that
tenant's own corpus; **any** divergence is a cross-tenant leak and the
bench fails.  The acceptance bar is 0 leaks at every fleet size
(1/4/8 tenants; 1/4 in smoke mode).

**Then aggregate capacity.**  Per-tenant workloads replay concurrently
through one process; the payload records aggregate QPS and per-tenant
p99 at each tenant count, so the cost of consolidation is visible
rather than implied.

**Then fairness.**  A heavy tenant floods past its
:class:`~repro.serving.quotas.TenantQuota` (every rejection must be the
tenant-typed :class:`~repro.serving.errors.TenantOverloadedError`)
while a light tenant runs its normal workload; the light tenant must
finish error-free with p99 under ``FAIRNESS_P99_BOUND_MS``.

Writes ``BENCH_tenancy.json`` at the repo root.  CI smoke::

    PYTHONPATH=src python benchmarks/bench_tenancy.py --smoke \
        --output /tmp/BENCH_tenancy.json
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import shutil
import tempfile
import threading
import time

from repro.core.config import ESharpConfig
from repro.core.esharp import ESharp
from repro.fleet.wire import answer_to_wire
from repro.serving.errors import TenantOverloadedError
from repro.serving.loadgen import LoadGenerator, candidate_queries
from repro.serving.quotas import TenantQuota
from repro.serving.service import ExpertService, ServiceConfig
from repro.serving.tenancy import MultiTenantService, TenantClient, TenantSpec

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: the fairness acceptance bar: light-tenant p99 while a heavy tenant
#: saturates its quota (generous enough for a loaded CI box)
FAIRNESS_P99_BOUND_MS = 1500.0


def answer_bytes(answer) -> str:
    """Canonical JSON of an answer's *content* (timings, provenance and
    the tenant stamp stripped — content must match the single-tenant
    reference exactly)."""
    wire = answer_to_wire(answer)
    for volatile in (
        "expansion_seconds",
        "detection_seconds",
        "total_seconds",
        "cache_hit",
        "coalesced",
        "tenant",
    ):
        wire.pop(volatile, None)
    return json.dumps(wire, sort_keys=True, separators=(",", ":"))


def build_corpora(tmp: pathlib.Path, seed: int, smoke: bool):
    """Two genuinely different base corpora; tenants alternate between
    them, so neighbouring tenants never share data."""
    corpora = []
    for offset in (0, 1):
        config = (
            ESharpConfig.small(seed=seed + offset)
            if smoke
            else ESharpConfig.standard(seed=seed + offset)
        )
        artifact = tmp / f"corpus-{offset}"
        system = ESharp(config).build(artifact_dir=artifact)
        corpora.append(
            {
                "artifact": artifact,
                "system": system,
                "queries": candidate_queries(system, 24),
            }
        )
    return corpora


def reference_answers(corpora) -> list[dict]:
    """Per-corpus single-tenant reference: query -> canonical bytes."""
    references = []
    for corpus in corpora:
        with ExpertService(
            corpus["system"], ServiceConfig(detection_workers=1)
        ) as single:
            references.append(
                {
                    query: answer_bytes(single.query(query))
                    for query in corpus["queries"]
                }
            )
    return references


def make_specs(corpora, tenant_count: int) -> list[TenantSpec]:
    return [
        TenantSpec(
            f"t{index}", str(corpora[index % len(corpora)]["artifact"])
        )
        for index in range(tenant_count)
    ]


def run_tenant_fleet(
    corpora,
    references,
    tenant_count: int,
    *,
    rounds: int,
    concurrency: int,
) -> dict:
    """Replay every tenant's workload concurrently through one process;
    returns aggregate QPS, per-tenant p99, and the leak count."""
    specs = make_specs(corpora, tenant_count)
    reports: dict[str, object] = {}
    failures: list[str] = []
    leaks = 0
    with MultiTenantService(
        specs, ServiceConfig(detection_workers=2)
    ) as service:
        clients = {
            spec.name: TenantClient(service, spec.name) for spec in specs
        }

        def replay(spec: TenantSpec) -> None:
            corpus_index = int(spec.name[1:]) % len(corpora)
            workload = corpora[corpus_index]["queries"] * rounds
            try:
                reports[spec.name] = LoadGenerator(
                    clients[spec.name], workload, concurrency=concurrency
                ).run()
            except Exception as exc:  # noqa: BLE001 - surfaced below
                failures.append(f"{spec.name}: {exc!r}")

        wall_start = time.perf_counter()
        threads = [
            threading.Thread(target=replay, args=(spec,), daemon=True)
            for spec in specs
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall_seconds = time.perf_counter() - wall_start
        if failures:
            raise AssertionError(
                f"tenant replay failed: {'; '.join(failures)}"
            )

        # the isolation sweep: every tenant's answers, fresh after the
        # concurrent storm, must equal its own corpus's reference
        for spec in specs:
            corpus_index = int(spec.name[1:]) % len(corpora)
            for query in corpora[corpus_index]["queries"]:
                answer = service.query(spec.name, query)
                if answer.tenant != spec.name:
                    leaks += 1
                elif answer_bytes(answer) != references[corpus_index][query]:
                    leaks += 1
        service_stats = service.stats()

    total_requests = sum(r.requests for r in reports.values())
    total_errors = sum(r.errors for r in reports.values())
    if total_errors:
        raise AssertionError(
            f"{total_errors} errors replaying {tenant_count} tenants"
        )
    if leaks:
        raise AssertionError(
            f"{leaks} cross-tenant leaks at {tenant_count} tenants"
        )
    return {
        "tenants": tenant_count,
        "requests": total_requests,
        "wall_seconds": wall_seconds,
        "aggregate_qps": (
            total_requests / wall_seconds if wall_seconds else 0.0
        ),
        "cache_hit_rate": service_stats.cache.hit_rate,
        "leaks": leaks,
        "per_tenant_p99_ms": {
            name: report.p99_ms for name, report in sorted(reports.items())
        },
        "per_tenant_qps": {
            name: report.qps for name, report in sorted(reports.items())
        },
    }


def run_fairness(corpora, *, rounds: int) -> dict:
    """A quota-capped heavy tenant floods; the light tenant must keep
    its latency and lose no request."""
    specs = [
        TenantSpec(
            "heavy",
            str(corpora[0]["artifact"]),
            quota=TenantQuota(max_in_flight=2, max_queue_depth=0),
        ),
        TenantSpec(
            "light",
            str(corpora[1]["artifact"]),
            quota=TenantQuota(max_in_flight=4, max_queue_depth=8),
        ),
    ]
    config = ServiceConfig(
        detection_workers=2,
        max_in_flight=8,
        cache_capacity=0,  # every request does real work
        single_flight=False,
    )
    rejections: list[int] = []
    mistyped: list[str] = []
    heavy_served: list[int] = []
    stop = threading.Event()
    with MultiTenantService(specs, config) as service:
        service.query("heavy", corpora[0]["queries"][0])  # warm start
        service.query("light", corpora[1]["queries"][0])

        def hammer() -> None:
            index = 0
            while not stop.is_set():
                query = corpora[0]["queries"][index % 8]
                index += 1
                try:
                    service.query("heavy", query)
                    heavy_served.append(1)
                except TenantOverloadedError:
                    rejections.append(1)
                except Exception as exc:  # noqa: BLE001 - contract broke
                    mistyped.append(repr(exc))

        threads = [
            threading.Thread(target=hammer, daemon=True) for _ in range(6)
        ]
        for thread in threads:
            thread.start()
        try:
            light = LoadGenerator(
                TenantClient(service, "light"),
                corpora[1]["queries"] * rounds,
                concurrency=2,
            ).run()
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=30)

    if light.errors:
        raise AssertionError(
            f"light tenant lost {light.errors} requests under flood"
        )
    if mistyped:
        raise AssertionError(
            f"{len(mistyped)} heavy-tenant rejections were not the typed "
            f"TenantOverloadedError (first: {mistyped[0]})"
        )
    if not rejections:
        raise AssertionError("the heavy tenant never hit its quota")
    if light.p99_ms >= FAIRNESS_P99_BOUND_MS:
        raise AssertionError(
            f"light-tenant p99 {light.p99_ms:.1f}ms breaches the "
            f"{FAIRNESS_P99_BOUND_MS:.0f}ms fairness bound"
        )
    return {
        "light_p99_ms": light.p99_ms,
        "light_qps": light.qps,
        "light_errors": light.errors,
        "heavy_served": len(heavy_served),
        "heavy_typed_rejections": len(rejections),
        "p99_bound_ms": FAIRNESS_P99_BOUND_MS,
        "bound_met": True,
    }


def run_tenancy_bench(
    *,
    seed: int,
    tenant_counts: list[int],
    rounds: int,
    concurrency: int,
    smoke: bool,
) -> dict:
    tmp = pathlib.Path(tempfile.mkdtemp(prefix="bench-tenancy-"))
    try:
        t0 = time.perf_counter()
        corpora = build_corpora(tmp, seed, smoke)
        build_seconds = time.perf_counter() - t0
        references = reference_answers(corpora)

        runs = [
            run_tenant_fleet(
                corpora,
                references,
                count,
                rounds=rounds,
                concurrency=concurrency,
            )
            for count in tenant_counts
        ]
        fairness = run_fairness(corpora, rounds=rounds)

        return {
            "bench": "tenancy",
            "mode": "smoke" if smoke else "full",
            "scale": "small" if smoke else "standard",
            "host_cpus": os.cpu_count(),
            "build_seconds": build_seconds,
            "base_corpora": len(corpora),
            "tenant_counts": tenant_counts,
            "rounds": rounds,
            "isolation": {
                "leaks": sum(run["leaks"] for run in runs),
                "checked_answers": sum(
                    run["tenants"] * len(corpora[0]["queries"])
                    for run in runs
                ),
            },
            "aggregate": runs,
            "fairness": fairness,
        }
    finally:
        shutil.rmtree(tmp, ignore_errors=True)


def render(payload: dict) -> str:
    lines = [
        f"tenancy bench ({payload['mode']}, {payload['scale']} scale, "
        f"{payload['host_cpus']} host cpus)",
        f"  isolation:  {payload['isolation']['leaks']} leaks over "
        f"{payload['isolation']['checked_answers']} cross-checked answers",
    ]
    for run in payload["aggregate"]:
        worst_p99 = max(run["per_tenant_p99_ms"].values())
        lines.append(
            f"  {run['tenants']} tenant(s): {run['aggregate_qps']:8.1f} "
            f"aggregate qps, worst p99 {worst_p99:7.1f}ms, "
            f"hit rate {run['cache_hit_rate']:.1%}"
        )
    fairness = payload["fairness"]
    lines.append(
        f"  fairness:   light p99 {fairness['light_p99_ms']:.1f}ms "
        f"(bound {fairness['p99_bound_ms']:.0f}ms), "
        f"{fairness['heavy_typed_rejections']} typed rejections of the "
        "flooding tenant"
    )
    return "\n".join(lines)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small scale, 1/4 tenants, isolation-focused (CI)",
    )
    parser.add_argument("--seed", type=int, default=2016)
    parser.add_argument("--output", metavar="PATH", default=None)
    parser.add_argument("--rounds", type=int, default=3)
    parser.add_argument("--concurrency", type=int, default=2)
    args = parser.parse_args()

    tenant_counts = [1, 4] if args.smoke else [1, 4, 8]
    payload = run_tenancy_bench(
        seed=args.seed,
        tenant_counts=tenant_counts,
        rounds=args.rounds,
        concurrency=args.concurrency,
        smoke=args.smoke,
    )
    print(render(payload))
    output = (
        pathlib.Path(args.output)
        if args.output
        else REPO_ROOT / "BENCH_tenancy.json"
    )
    output.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    print(f"[json written to {output}]")


if __name__ == "__main__":
    main()

"""ART1 — artifact save/load vs from-scratch build (warm-start speedup).

The paper's online tier answers from a materialised collection; nothing
is rebuilt per process.  This bench measures our equivalent: persist a
built system with :func:`repro.artifact.save_artifact`, warm-start
replicas with :meth:`ESharp.from_artifact`, and compare against the
from-scratch :meth:`ESharp.build` the seed architecture forced on every
process start.  **Exactness is checked first**: the loaded replica must
answer a query sample identically (same experts, same scores, same
snapshot version) to the in-process build that saved the artifact, and
must then serve the ``bench_serving_throughput`` workload (same driver,
same assertions) straight from the loaded generation.

Acceptance bar: warm-start p50 >= 5x faster than a from-scratch build at
standard scale.

Writes ``BENCH_artifact.json`` at the repo root.  Also runnable
standalone; the CI smoke keeps the equivalence assertion on every push::

    PYTHONPATH=src python benchmarks/bench_artifact.py --smoke \
        --output /tmp/BENCH_artifact.json
"""

from __future__ import annotations

import argparse
import json
import pathlib
import shutil
import tempfile
import time

from repro.core.config import ESharpConfig
from repro.core.esharp import ESharp
from repro.serving.loadgen import run_serve
from repro.serving.service import ServiceConfig
from repro.utils.stats import percentile

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

LOAD_REPEATS = 3
MIN_SPEEDUP = 5.0
SERVE_REQUESTS = 200
SERVE_CONCURRENCY = 8


def sample_queries(system: ESharp) -> list[str]:
    world = system.offline.world
    topics = sorted(world.topics, key=lambda t: -t.popularity)[:8]
    return [t.canonical.text for t in topics] + ["no such phrase at all"]


def check_equivalence(built: ESharp, loaded: ESharp) -> dict:
    """Loaded replica ≡ in-process build, on state and on answers."""
    if built.snapshots.version != loaded.snapshots.version:
        raise AssertionError(
            "loaded snapshot version diverged from the manifest stamp"
        )
    ours, theirs = built.offline, loaded.offline
    if list(ours.weighted_graph.edges()) != list(theirs.weighted_graph.edges()):
        raise AssertionError("loaded similarity edges diverged")
    if ours.partition.assignment != theirs.partition.assignment:
        raise AssertionError("loaded partition diverged")
    if ours.domain_store.domains() != theirs.domain_store.domains():
        raise AssertionError("loaded domain store diverged")
    queries = sample_queries(built)
    for query in queries:
        if built.find_experts(query) != loaded.find_experts(query):
            raise AssertionError(f"answers diverged for {query!r}")
        if built.find_experts_baseline(query) != loaded.find_experts_baseline(
            query
        ):
            raise AssertionError(f"baseline answers diverged for {query!r}")
    return {"identical": True, "queries_checked": len(queries)}


def run_artifact_bench(
    config: ESharpConfig,
    artifact_dir: pathlib.Path,
    load_repeats: int = LOAD_REPEATS,
    serve_requests: int = SERVE_REQUESTS,
) -> dict:
    started = time.perf_counter()
    built = ESharp(config).build()
    build_seconds = time.perf_counter() - started

    started = time.perf_counter()
    manifest = built.save_artifact(artifact_dir)
    save_seconds = time.perf_counter() - started

    load_samples = []
    loaded = None
    for _ in range(load_repeats):
        started = time.perf_counter()
        loaded = ESharp.from_artifact(artifact_dir, expected_config=config)
        load_samples.append(time.perf_counter() - started)
    load_p50 = percentile(load_samples, 0.5)

    equivalence = check_equivalence(built, loaded)

    # the serving-throughput workload, unchanged, on the loaded replica
    outcome = run_serve(
        loaded,
        requests=serve_requests,
        concurrency=SERVE_CONCURRENCY,
        max_unique=64,
        zipf_exponent=1.1,
        service_config=ServiceConfig(detection_workers=4),
        baseline=False,
    )
    if outcome.report.errors:
        raise AssertionError(
            f"loaded replica served {outcome.report.errors} errors"
        )

    artifact_bytes = sum(
        (artifact_dir / entry.filename).stat().st_size
        for stage in manifest.stages.values()
        for entry in stage.files.values()
    )
    return {
        "config": {
            "impressions": config.querylog.impressions,
            "tweets": config.microblog.tweets,
            "seed": config.seed,
            "load_repeats": load_repeats,
        },
        "build": {"from_scratch_s": round(build_seconds, 4)},
        "save": {"seconds": round(save_seconds, 4)},
        "load": {
            "p50_s": round(load_p50, 4),
            "max_s": round(max(load_samples), 4),
            "samples_s": [round(s, 4) for s in load_samples],
        },
        "warm_start_speedup": (
            round(build_seconds / load_p50, 2) if load_p50 else None
        ),
        "artifact": {
            "stages": sorted(manifest.stages),
            "bytes": artifact_bytes,
            "snapshot_version": manifest.snapshot_version,
        },
        "equivalence": equivalence,
        "serving_from_artifact": {
            "requests": outcome.report.requests,
            "errors": outcome.report.errors,
            "qps": round(outcome.report.qps, 1),
            "p50_ms": round(outcome.report.p50_ms, 3),
            "p99_ms": round(outcome.report.p99_ms, 3),
        },
    }


def render(payload: dict) -> str:
    build = payload["build"]
    load = payload["load"]
    serving = payload["serving_from_artifact"]
    return "\n".join(
        [
            "ART1 — artifact warm start vs from-scratch build (s)",
            f"  corpus: {payload['config']['impressions']} impressions, "
            f"{payload['config']['tweets']} tweets",
            f"  from-scratch build  {build['from_scratch_s']:>8.4f}",
            f"  artifact save       {payload['save']['seconds']:>8.4f}"
            f"  ({payload['artifact']['bytes'] / 1e6:.1f} MB, "
            f"{len(payload['artifact']['stages'])} stages)",
            f"  warm start p50      {load['p50_s']:>8.4f}"
            f"  speedup={payload['warm_start_speedup']}x",
            f"  equivalence: identical={payload['equivalence']['identical']} "
            f"over {payload['equivalence']['queries_checked']} queries",
            f"  serving from artifact: {serving['requests']} requests, "
            f"{serving['errors']} errors, {serving['qps']} q/s "
            f"(p50 {serving['p50_ms']} ms)",
        ]
    )


def write_payload(payload: dict, path: pathlib.Path) -> None:
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def test_artifact_roundtrip(benchmark, results_dir, tmp_path_factory):
    # a dedicated system: the bench needs an honest from-scratch build
    # time, which the shared session system has already paid
    config = ESharpConfig.standard(seed=2016)
    artifact_dir = tmp_path_factory.mktemp("bench-artifact") / "art"
    payload = benchmark.pedantic(
        run_artifact_bench, args=(config, artifact_dir), rounds=1, iterations=1
    )
    assert payload["equivalence"]["identical"]
    assert payload["warm_start_speedup"] >= MIN_SPEEDUP
    assert payload["serving_from_artifact"]["errors"] == 0

    bench_path = REPO_ROOT / "BENCH_artifact.json"
    write_payload(payload, bench_path)

    from conftest import write_artifact

    write_artifact(
        results_dir,
        "artifact_roundtrip",
        render(payload) + f"\n[json written to {bench_path}]",
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale", choices=("small", "standard"), default="standard"
    )
    parser.add_argument("--seed", type=int, default=2016)
    parser.add_argument("--load-repeats", type=int, default=LOAD_REPEATS)
    parser.add_argument(
        "--artifact-dir",
        type=pathlib.Path,
        default=None,
        help="where to write the artifact (default: a temp dir, removed "
        "afterwards)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small config, one load, no speedup bar — the CI "
        "equivalence check",
    )
    parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=REPO_ROOT / "BENCH_artifact.json",
    )
    args = parser.parse_args()

    scale = "small" if args.smoke else args.scale
    config = (
        ESharpConfig.small(seed=args.seed)
        if scale == "small"
        else ESharpConfig.standard(seed=args.seed)
    )
    scratch = None
    artifact_dir = args.artifact_dir
    if artifact_dir is None:
        scratch = tempfile.mkdtemp(prefix="repro-artifact-")
        artifact_dir = pathlib.Path(scratch) / "art"
    try:
        payload = run_artifact_bench(
            config,
            artifact_dir,
            load_repeats=1 if args.smoke else args.load_repeats,
            serve_requests=40 if args.smoke else SERVE_REQUESTS,
        )
        if not args.smoke and scale == "standard":
            if payload["warm_start_speedup"] < MIN_SPEEDUP:
                raise AssertionError(
                    f"warm start must be >= {MIN_SPEEDUP}x faster than a "
                    f"from-scratch build, got "
                    f"{payload['warm_start_speedup']}x"
                )
        write_payload(payload, args.output)
        print(render(payload))
        print(f"[json written to {args.output}]")
    finally:
        if scratch is not None:
            shutil.rmtree(scratch, ignore_errors=True)


if __name__ == "__main__":
    main()

"""ART1 — artifact save/load vs from-scratch build (warm-start speedup).

The paper's online tier answers from a materialised collection; nothing
is rebuilt per process.  This bench measures our equivalent: persist a
built system with :func:`repro.artifact.save_artifact`, warm-start
replicas with :meth:`ESharp.from_artifact`, and compare against the
from-scratch :meth:`ESharp.build` the seed architecture forced on every
process start.  **Exactness is checked first**: the loaded replica must
answer a query sample identically (same experts, same scores, same
snapshot version) to the in-process build that saved the artifact —
through *both* on-disk forms, the legacy base64 columns and the binary
mmap sidecars — and must then serve the ``bench_serving_throughput``
workload (same driver, same assertions) straight from the loaded
generation.

Every timed load runs in a **fresh subprocess** so the two forms cannot
share decoded state, and each sample carries the child's peak RSS
(``resource.getrusage``) — the zero-copy claim is visible as the mmap
loader peaking far below the legacy loader, which must materialise
every column.  The page cache is warmed before the timed loads so p50
measures decode, not disk; one separately-recorded sample runs after a
``posix_fadvise(DONTNEED)`` eviction to keep an honest cold-cache
number.

Acceptance bars: warm-start p50 >= 5x faster than a from-scratch build
at standard scale, and the mmap form >= 5x faster than the legacy form
even at smoke scale.

Writes ``BENCH_artifact.json`` at the repo root.  Also runnable
standalone; the CI smoke keeps the equivalence assertion on every push::

    PYTHONPATH=src python benchmarks/bench_artifact.py --smoke \
        --output /tmp/BENCH_artifact.json
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import shutil
import subprocess
import sys
import tempfile
import time

from repro.core.config import ESharpConfig
from repro.core.esharp import ESharp
from repro.serving.loadgen import run_serve
from repro.serving.service import ServiceConfig
from repro.utils.stats import percentile

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

LOAD_REPEATS = 5
MIN_SPEEDUP = 5.0
MIN_MMAP_SPEEDUP = 5.0
SERVE_REQUESTS = 200
SERVE_CONCURRENCY = 8

#: run in a fresh interpreter per sample: imports happen before the
#: clock starts, so the number is the warm start alone, and the child's
#: peak RSS reflects exactly one load of exactly one on-disk form
_CHILD_LOADER = """\
import json, resource, sys, time

path, form = sys.argv[1], sys.argv[2]
from repro.core.esharp import ESharp
import repro.artifact, repro.core.incremental  # noqa: F401  (lazy imports
# inside from_artifact; pull them before the clock starts so the timed
# region is the load, not one-time module initialisation)

started = time.perf_counter()
system = ESharp.from_artifact(path, prefer_sidecar=(form == "mmap"))
elapsed = time.perf_counter() - started

# getrusage's ru_maxrss survives fork on Linux, so a child spawned from
# a fat bench parent inherits the parent's peak; VmHWM resets at exec
# and tracks this process alone, so prefer it where /proc exists
peak_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
try:
    with open("/proc/self/status") as handle:
        for line in handle:
            if line.startswith("VmHWM:"):
                peak_kb = int(line.split()[1])
                break
except OSError:
    pass
print(json.dumps({"seconds": elapsed, "peak_rss_kb": peak_kb}))
"""


def _child_load(artifact_dir: pathlib.Path, form: str) -> dict:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    extra = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src + (os.pathsep + extra if extra else "")
    result = subprocess.run(
        [sys.executable, "-c", _CHILD_LOADER, str(artifact_dir), form],
        check=True,
        capture_output=True,
        text=True,
        env=env,
    )
    return json.loads(result.stdout)


def _artifact_files(artifact_dir: pathlib.Path) -> list[pathlib.Path]:
    return sorted(p for p in artifact_dir.iterdir() if p.is_file())


def _warm_page_cache(artifact_dir: pathlib.Path) -> None:
    """Fault every artifact byte in so timed loads measure decode."""
    for path in _artifact_files(artifact_dir):
        path.read_bytes()


def _evict_page_cache(artifact_dir: pathlib.Path) -> bool:
    """Best-effort eviction for the cold-cache sample (Linux honours
    ``POSIX_FADV_DONTNEED`` for clean pages); returns False where the
    platform cannot evict, in which case no cold number is recorded."""
    fadvise = getattr(os, "posix_fadvise", None)
    dontneed = getattr(os, "POSIX_FADV_DONTNEED", None)
    if fadvise is None or dontneed is None:
        return False
    for path in _artifact_files(artifact_dir):
        fd = os.open(path, os.O_RDONLY)
        try:
            fadvise(fd, 0, 0, dontneed)
        except OSError:
            return False
        finally:
            os.close(fd)
    return True


def sample_queries(system: ESharp) -> list[str]:
    world = system.offline.world
    topics = sorted(world.topics, key=lambda t: -t.popularity)[:8]
    return [t.canonical.text for t in topics] + ["no such phrase at all"]


def check_equivalence(built: ESharp, loaded: ESharp) -> dict:
    """Loaded replica ≡ in-process build, on state and on answers."""
    if built.snapshots.version != loaded.snapshots.version:
        raise AssertionError(
            "loaded snapshot version diverged from the manifest stamp"
        )
    ours, theirs = built.offline, loaded.offline
    if list(ours.weighted_graph.edges()) != list(theirs.weighted_graph.edges()):
        raise AssertionError("loaded similarity edges diverged")
    if ours.partition.assignment != theirs.partition.assignment:
        raise AssertionError("loaded partition diverged")
    if ours.domain_store.domains() != theirs.domain_store.domains():
        raise AssertionError("loaded domain store diverged")
    queries = sample_queries(built)
    for query in queries:
        if built.find_experts(query) != loaded.find_experts(query):
            raise AssertionError(f"answers diverged for {query!r}")
        if built.find_experts_baseline(query) != loaded.find_experts_baseline(
            query
        ):
            raise AssertionError(f"baseline answers diverged for {query!r}")
    return {"identical": True, "queries_checked": len(queries)}


def run_artifact_bench(
    config: ESharpConfig,
    artifact_dir: pathlib.Path,
    load_repeats: int = LOAD_REPEATS,
    serve_requests: int = SERVE_REQUESTS,
    legacy_columns: bool = True,
) -> dict:
    started = time.perf_counter()
    built = ESharp(config).build()
    build_seconds = time.perf_counter() - started

    started = time.perf_counter()
    manifest = built.save_artifact(
        artifact_dir, legacy_columns=legacy_columns
    )
    save_seconds = time.perf_counter() - started

    # cold-cache sample first (recorded separately), then warm the page
    # cache so every p50 sample below measures decode, not disk
    evicted = _evict_page_cache(artifact_dir)
    cold = _child_load(artifact_dir, "mmap") if evicted else None
    _warm_page_cache(artifact_dir)

    mmap_samples = [
        _child_load(artifact_dir, "mmap") for _ in range(load_repeats)
    ]
    legacy_samples = (
        [_child_load(artifact_dir, "legacy") for _ in range(load_repeats)]
        if legacy_columns
        else []
    )
    mmap_p50 = percentile([s["seconds"] for s in mmap_samples], 0.5)
    legacy_p50 = (
        percentile([s["seconds"] for s in legacy_samples], 0.5)
        if legacy_samples
        else None
    )

    loaded = ESharp.from_artifact(artifact_dir, expected_config=config)
    equivalence = check_equivalence(built, loaded)
    if legacy_columns:
        loaded_legacy = ESharp.from_artifact(
            artifact_dir, expected_config=config, prefer_sidecar=False
        )
        check_equivalence(built, loaded_legacy)
        equivalence["legacy_form_identical"] = True

    # the serving-throughput workload, unchanged, on the loaded replica
    outcome = run_serve(
        loaded,
        requests=serve_requests,
        concurrency=SERVE_CONCURRENCY,
        max_unique=64,
        zipf_exponent=1.1,
        service_config=ServiceConfig(detection_workers=4),
        baseline=False,
    )
    if outcome.report.errors:
        raise AssertionError(
            f"loaded replica served {outcome.report.errors} errors"
        )

    artifact_bytes = sum(
        (artifact_dir / entry.filename).stat().st_size
        for stage in manifest.stages.values()
        for entry in stage.files.values()
    )
    return {
        "config": {
            "impressions": config.querylog.impressions,
            "tweets": config.microblog.tweets,
            "seed": config.seed,
            "load_repeats": load_repeats,
            "legacy_columns": legacy_columns,
        },
        "build": {"from_scratch_s": round(build_seconds, 4)},
        "save": {"seconds": round(save_seconds, 4)},
        "load": {
            "p50_s": round(mmap_p50, 4),
            "max_s": round(max(s["seconds"] for s in mmap_samples), 4),
            "samples_s": [round(s["seconds"], 4) for s in mmap_samples],
            "legacy_p50_s": (
                round(legacy_p50, 4) if legacy_p50 is not None else None
            ),
            "legacy_samples_s": [
                round(s["seconds"], 4) for s in legacy_samples
            ],
            "cold_cache_s": (
                round(cold["seconds"], 4) if cold is not None else None
            ),
            "page_cache_evicted": evicted,
            "peak_rss_kb": {
                "mmap": int(
                    percentile([s["peak_rss_kb"] for s in mmap_samples], 0.5)
                ),
                "legacy": (
                    int(
                        percentile(
                            [s["peak_rss_kb"] for s in legacy_samples], 0.5
                        )
                    )
                    if legacy_samples
                    else None
                ),
            },
        },
        "warm_start_speedup": (
            round(build_seconds / mmap_p50, 2) if mmap_p50 else None
        ),
        "warm_start_speedup_mmap": (
            round(legacy_p50 / mmap_p50, 2)
            if legacy_p50 is not None and mmap_p50
            else None
        ),
        "artifact": {
            "stages": sorted(manifest.stages),
            "bytes": artifact_bytes,
            "snapshot_version": manifest.snapshot_version,
        },
        "equivalence": equivalence,
        "serving_from_artifact": {
            "requests": outcome.report.requests,
            "errors": outcome.report.errors,
            "qps": round(outcome.report.qps, 1),
            "p50_ms": round(outcome.report.p50_ms, 3),
            "p99_ms": round(outcome.report.p99_ms, 3),
        },
    }


def render(payload: dict) -> str:
    build = payload["build"]
    load = payload["load"]
    serving = payload["serving_from_artifact"]
    rss = load["peak_rss_kb"]
    lines = [
        "ART1 — artifact warm start vs from-scratch build (s)",
        f"  corpus: {payload['config']['impressions']} impressions, "
        f"{payload['config']['tweets']} tweets",
        f"  from-scratch build  {build['from_scratch_s']:>8.4f}",
        f"  artifact save       {payload['save']['seconds']:>8.4f}"
        f"  ({payload['artifact']['bytes'] / 1e6:.1f} MB, "
        f"{len(payload['artifact']['stages'])} stages)",
        f"  warm start p50      {load['p50_s']:>8.4f}"
        f"  speedup={payload['warm_start_speedup']}x"
        f"  (peak rss {rss['mmap'] / 1024:.0f} MB)",
    ]
    if load["legacy_p50_s"] is not None:
        lines.append(
            f"  legacy load p50     {load['legacy_p50_s']:>8.4f}"
            f"  mmap speedup={payload['warm_start_speedup_mmap']}x"
            f"  (peak rss {rss['legacy'] / 1024:.0f} MB)"
        )
    if load["cold_cache_s"] is not None:
        lines.append(f"  cold-cache load     {load['cold_cache_s']:>8.4f}")
    lines += [
        f"  equivalence: identical={payload['equivalence']['identical']} "
        f"over {payload['equivalence']['queries_checked']} queries",
        f"  serving from artifact: {serving['requests']} requests, "
        f"{serving['errors']} errors, {serving['qps']} q/s "
        f"(p50 {serving['p50_ms']} ms)",
    ]
    return "\n".join(lines)


def write_payload(payload: dict, path: pathlib.Path) -> None:
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def test_artifact_roundtrip(benchmark, results_dir, tmp_path_factory):
    # a dedicated system: the bench needs an honest from-scratch build
    # time, which the shared session system has already paid
    config = ESharpConfig.standard(seed=2016)
    artifact_dir = tmp_path_factory.mktemp("bench-artifact") / "art"
    payload = benchmark.pedantic(
        run_artifact_bench, args=(config, artifact_dir), rounds=1, iterations=1
    )
    assert payload["equivalence"]["identical"]
    assert payload["equivalence"]["legacy_form_identical"]
    assert payload["warm_start_speedup"] >= MIN_SPEEDUP
    assert payload["warm_start_speedup_mmap"] >= MIN_MMAP_SPEEDUP
    assert payload["serving_from_artifact"]["errors"] == 0

    bench_path = REPO_ROOT / "BENCH_artifact.json"
    write_payload(payload, bench_path)

    from conftest import write_artifact

    write_artifact(
        results_dir,
        "artifact_roundtrip",
        render(payload) + f"\n[json written to {bench_path}]",
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale", choices=("small", "standard"), default="standard"
    )
    parser.add_argument("--seed", type=int, default=2016)
    parser.add_argument("--load-repeats", type=int, default=LOAD_REPEATS)
    parser.add_argument(
        "--artifact-dir",
        type=pathlib.Path,
        default=None,
        help="where to write the artifact (default: a temp dir, removed "
        "afterwards)",
    )
    parser.add_argument(
        "--no-legacy",
        action="store_true",
        help="save sidecar-only stage files (no base64 blobs); skips the "
        "legacy-vs-mmap comparison since there is no legacy form to load",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small config, fewer loads, no build-speedup bar — the CI "
        "equivalence + mmap-speedup check",
    )
    parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=REPO_ROOT / "BENCH_artifact.json",
    )
    args = parser.parse_args()

    scale = "small" if args.smoke else args.scale
    config = (
        ESharpConfig.small(seed=args.seed)
        if scale == "small"
        else ESharpConfig.standard(seed=args.seed)
    )
    scratch = None
    artifact_dir = args.artifact_dir
    if artifact_dir is None:
        scratch = tempfile.mkdtemp(prefix="repro-artifact-")
        artifact_dir = pathlib.Path(scratch) / "art"
    try:
        payload = run_artifact_bench(
            config,
            artifact_dir,
            load_repeats=3 if args.smoke else args.load_repeats,
            serve_requests=40 if args.smoke else SERVE_REQUESTS,
            legacy_columns=not args.no_legacy,
        )
        if not args.no_legacy:
            # the zero-copy bar holds even at smoke scale: mmap views
            # must beat the base64 decode by 5x or the layout regressed
            if payload["warm_start_speedup_mmap"] < MIN_MMAP_SPEEDUP:
                raise AssertionError(
                    f"mmap load must be >= {MIN_MMAP_SPEEDUP}x faster than "
                    f"the legacy decode, got "
                    f"{payload['warm_start_speedup_mmap']}x"
                )
        if not args.smoke and scale == "standard":
            if payload["warm_start_speedup"] < MIN_SPEEDUP:
                raise AssertionError(
                    f"warm start must be >= {MIN_SPEEDUP}x faster than a "
                    f"from-scratch build, got "
                    f"{payload['warm_start_speedup']}x"
                )
        write_payload(payload, args.output)
        print(render(payload))
        print(f"[json written to {args.output}]")
    finally:
        if scratch is not None:
            shutil.rmtree(scratch, ignore_errors=True)


if __name__ == "__main__":
    main()

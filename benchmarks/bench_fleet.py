"""FLT1 — fleet scatter-gather: exactness and aggregate-QPS scaling.

The paper's production deployment serves its online tier as a fleet; this
bench measures the reproduction's :class:`~repro.fleet.FleetRouter` on
the two axes that matter:

**Exactness first.**  A router over N replicas (consistent-hash term
sharding, so multi-term expansions genuinely scatter) must answer every
candidate query **byte-identically** to one
:class:`~repro.serving.service.ExpertService` — same experts, same
order, same scores, same snapshot version — verified by comparing the
JSON wire encoding of both answers under ``PYTHONHASHSEED=0``.

**Then capacity scaling.**  Every replica holds the full corpus, so the
fleet's headline win on a fixed machine is *cache capacity*, not CPU:
domain-partition sharding routes each query to one owning replica, so N
replicas partition the working set across N result caches.  The bench
fixes a per-replica cache smaller than the distinct working set and
cycles the standard workload through fleets of 1..N replicas: one
replica thrashes (cyclic LRU over W > C distinct queries hits 0%), while
the fleet's shards each own a slice that fits, and aggregate QPS jumps.
The acceptance bar is **>= 2.5x aggregate QPS at 4 replicas vs 1**.  A
pure-cold scenario (all caches off) is reported alongside with the host
CPU count stamped, so the CPU-bound floor on this machine is visible
rather than implied.

Writes ``BENCH_fleet.json`` at the repo root.  CI smoke::

    PYTHONPATH=src python benchmarks/bench_fleet.py --smoke \
        --output /tmp/BENCH_fleet.json
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import shutil
import tempfile
import time

from repro.core.config import ESharpConfig
from repro.core.esharp import ESharp
from repro.fleet import FleetConfig, FleetRouter, InProcessReplica
from repro.fleet.wire import answer_to_wire
from repro.serving.loadgen import LoadGenerator, candidate_queries
from repro.serving.service import ExpertService, ServiceConfig

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

MIN_SPEEDUP_AT_4 = 2.5


def answer_bytes(answer) -> str:
    """Canonical JSON of an answer's *content* (timings stripped)."""
    wire = answer_to_wire(answer)
    for volatile in (
        "expansion_seconds",
        "detection_seconds",
        "total_seconds",
        "cache_hit",
        "coalesced",
    ):
        wire.pop(volatile, None)
    return json.dumps(wire, sort_keys=True, separators=(",", ":"))


def make_fleet(
    artifact: pathlib.Path,
    replicas: int,
    *,
    sharding: str,
    cache_capacity: int | None = None,
    score_memo: bool = True,
    hedging: bool = True,
):
    """N warm-started in-process replicas behind a router."""
    handles = []
    for index in range(replicas):
        system = ESharp.from_artifact(artifact)
        if not score_memo:
            system.detector.configure_score_cache(cache_scores=False)
        service_config = (
            ServiceConfig(detection_workers=1)
            if cache_capacity is None
            else ServiceConfig(
                detection_workers=1, cache_capacity=cache_capacity
            )
        )
        handles.append(
            InProcessReplica(f"replica-{index}", system, service_config)
        )
    return FleetRouter.from_artifact(
        artifact,
        handles,
        sharding=sharding,
        config=FleetConfig(hedging=hedging),
    )


def check_equivalence(
    system: ESharp, artifact: pathlib.Path, fleet_sizes: list[int]
) -> dict:
    """Router over N replicas ≡ one service, byte-for-byte, both policies."""
    queries = candidate_queries(system, 48) + [
        "no such phrase at all",
        "treasury yields",
    ]
    with ExpertService(system) as single:
        reference = {q: answer_bytes(single.query(q)) for q in queries}
    checked = {}
    for size in fleet_sizes:
        for policy in ("hash", "domain"):
            router = make_fleet(artifact, size, sharding=policy)
            try:
                scattered = 0
                for query in queries:
                    answer = router.query(query)
                    scattered += answer.mode == "scatter-gather"
                    got = answer_bytes(answer)
                    if got != reference[query]:
                        raise AssertionError(
                            f"{policy} sharding, {size} replicas: answer "
                            f"for {query!r} diverged from single-replica"
                        )
                checked[f"{policy}-{size}"] = {
                    "queries": len(queries),
                    "scattered": scattered,
                }
            finally:
                router.close()
    return {"byte_identical": True, "fleets": checked}


def run_replay(
    artifact: pathlib.Path,
    replicas: int,
    workload: list[str],
    *,
    sharding: str,
    cache_capacity: int | None,
    score_memo: bool,
    concurrency: int,
) -> dict:
    router = make_fleet(
        artifact,
        replicas,
        sharding=sharding,
        cache_capacity=cache_capacity,
        score_memo=score_memo,
        hedging=False,  # measure routing + caches, not backup traffic
    )
    try:
        report = LoadGenerator(
            router, workload, concurrency=concurrency
        ).run()
        if report.errors:
            raise AssertionError(
                f"{report.errors} errors at {replicas} replicas"
            )
        stats = router.stats()
        return {
            "replicas": replicas,
            "requests": report.requests,
            "wall_seconds": report.wall_seconds,
            "qps": report.qps,
            "p95_ms": report.p95_ms,
            "cache_hit_rate": report.cache_hit_rate,
            "single_shard": stats.single_shard,
            "scattered": stats.scattered,
            "per_replica_requests": {
                name: health.requests
                for name, health in stats.replica_health
            },
        }
    finally:
        router.close()


def run_fleet_bench(
    config: ESharpConfig,
    *,
    fleet_sizes: list[int],
    working_set: int,
    rounds: int,
    concurrency: int,
    smoke: bool,
) -> dict:
    tmp = pathlib.Path(tempfile.mkdtemp(prefix="bench-fleet-"))
    try:
        artifact = tmp / "artifact"
        t0 = time.perf_counter()
        system = ESharp(config).build(artifact_dir=artifact)
        build_seconds = time.perf_counter() - t0

        equivalence = check_equivalence(
            system, artifact, fleet_sizes[1:] or fleet_sizes
        )

        head = candidate_queries(system, working_set)
        if len(head) < 8:
            raise AssertionError(
                f"workload head too small ({len(head)} queries)"
            )
        # per-replica cache deliberately smaller than the working set:
        # one replica cycles (0% hits); a fleet's shards each fit
        capacity = max(4, int(len(head) * 0.7))
        workload = head * rounds

        capacity_runs = [
            run_replay(
                artifact,
                size,
                workload,
                sharding="domain",
                cache_capacity=capacity,
                score_memo=False,
                concurrency=concurrency,
            )
            for size in fleet_sizes
        ]
        base_qps = capacity_runs[0]["qps"]
        for run in capacity_runs:
            run["speedup_vs_1"] = run["qps"] / base_qps if base_qps else 0.0

        # pure-cold floor: every cache off, so this is raw compute
        # scatter — flat on a 1-CPU host, and stamped as such
        cold_runs = [
            run_replay(
                artifact,
                size,
                head,
                sharding="domain",
                cache_capacity=0,
                score_memo=False,
                concurrency=concurrency,
            )
            for size in fleet_sizes
        ]
        cold_base = cold_runs[0]["qps"]
        for run in cold_runs:
            run["speedup_vs_1"] = run["qps"] / cold_base if cold_base else 0.0

        payload = {
            "bench": "fleet",
            "mode": "smoke" if smoke else "full",
            "scale": "small" if smoke else "standard",
            "host_cpus": os.cpu_count(),
            "build_seconds": build_seconds,
            "fleet_sizes": fleet_sizes,
            "working_set": len(head),
            "per_replica_cache_capacity": capacity,
            "rounds": rounds,
            "equivalence": equivalence,
            "aggregate_qps": capacity_runs,
            "pure_cold_qps": cold_runs,
            "speedup_at_max": capacity_runs[-1]["speedup_vs_1"],
        }
        if not smoke:
            at4 = next(
                (r for r in capacity_runs if r["replicas"] == 4), None
            )
            if at4 is None:
                raise AssertionError("full mode must include 4 replicas")
            payload["speedup_at_4"] = at4["speedup_vs_1"]
            if at4["speedup_vs_1"] < MIN_SPEEDUP_AT_4:
                raise AssertionError(
                    f"aggregate QPS at 4 replicas only "
                    f"{at4['speedup_vs_1']:.2f}x vs 1 "
                    f"(bar: {MIN_SPEEDUP_AT_4}x)"
                )
        return payload
    finally:
        shutil.rmtree(tmp, ignore_errors=True)


def render(payload: dict) -> str:
    lines = [
        f"fleet bench ({payload['mode']}, {payload['scale']} scale, "
        f"{payload['host_cpus']} host cpus)",
        f"  equivalence:  byte-identical over "
        f"{sum(f['queries'] for f in payload['equivalence']['fleets'].values())}"
        f" answers ({', '.join(sorted(payload['equivalence']['fleets']))})",
        f"  working set:  {payload['working_set']} distinct queries, "
        f"{payload['per_replica_cache_capacity']} cache entries/replica, "
        f"{payload['rounds']} rounds",
    ]
    for run in payload["aggregate_qps"]:
        lines.append(
            f"  {run['replicas']} replica(s): {run['qps']:8.1f} qps "
            f"({run['speedup_vs_1']:.2f}x, "
            f"hit rate {run['cache_hit_rate']:.1%})"
        )
    lines.append("  pure cold (all caches off):")
    for run in payload["pure_cold_qps"]:
        lines.append(
            f"    {run['replicas']} replica(s): {run['qps']:8.1f} qps "
            f"({run['speedup_vs_1']:.2f}x)"
        )
    return "\n".join(lines)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small scale, 1->2 replicas, equivalence-focused (CI)",
    )
    parser.add_argument("--seed", type=int, default=2016)
    parser.add_argument("--output", metavar="PATH", default=None)
    parser.add_argument("--rounds", type=int, default=4)
    parser.add_argument("--concurrency", type=int, default=4)
    args = parser.parse_args()

    if args.smoke:
        config = ESharpConfig.small(seed=args.seed)
        fleet_sizes = [1, 2]
        working_set = 48
    else:
        config = ESharpConfig.standard(seed=args.seed)
        fleet_sizes = [1, 2, 4]
        working_set = 256

    payload = run_fleet_bench(
        config,
        fleet_sizes=fleet_sizes,
        working_set=working_set,
        rounds=args.rounds,
        concurrency=args.concurrency,
        smoke=args.smoke,
    )
    print(render(payload))
    output = (
        pathlib.Path(args.output)
        if args.output
        else REPO_ROOT / "BENCH_fleet.json"
    )
    output.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    print(f"[json written to {output}]")


if __name__ == "__main__":
    main()

"""ABL6 — the §3 production simplification: 3 features vs the dozen.

The paper keeps TS/MI/RI out of Pal & Counts' "dozen features" and runs
that simplified ranker in production.  This ablation compares the
production trio against the extended set (adding originality,
conversation share, self-similarity penalty, hashtag ratio, graph
influence) on ranking quality versus ground truth.

Expected shape: the extended set buys a modest precision/ordering gain at
higher per-query cost — consistent with the paper's judgment that the
trio is the right production trade.
"""

import time

from repro.detector.extended_features import ExtendedPalCountsDetector
from repro.eval.metrics import mean_over_queries, ndcg, precision_at_k
from repro.eval.reporting import render_table

from conftest import write_artifact


def test_ablation_feature_sets(benchmark, ctx, results_dir):
    system = ctx.system
    world = system.offline.world
    queries = [
        t.canonical.text
        for t in sorted(
            (t for t in world.topics if t.microblog_affinity > 0.5),
            key=lambda t: t.popularity,
            reverse=True,
        )[:60]
    ]

    extended = ExtendedPalCountsDetector(
        system.platform, ranking=system.detector.ranking
    )
    detectors = {"TS/MI/RI (paper)": system.detector, "extended": extended}

    def relevant_for(query):
        topic = world.primary_topic_for(query)

        def check(user_id: int) -> bool:
            if topic is None:
                return False
            user = system.platform.user(user_id)
            if user.is_expert_on(topic.topic_id):
                return True
            return user.persona == "broad_expert" and topic.domain in {
                world.topic(t).domain for t in user.expert_topics
            }

        return check

    def evaluate():
        rows = []
        quality = {}
        for name, detector in detectors.items():
            p_at_3, ndcgs = [], []
            started = time.perf_counter()
            answered = 0
            for query in queries:
                experts = detector.detect(query)
                if not experts:
                    continue
                answered += 1
                relevant = relevant_for(query)
                p_at_3.append(precision_at_k(experts, relevant, 3))
                ndcgs.append(ndcg(experts, relevant, k=10))
            elapsed = time.perf_counter() - started
            quality[name] = (
                mean_over_queries(p_at_3) if p_at_3 else 0.0,
                mean_over_queries(ndcgs) if ndcgs else 0.0,
            )
            rows.append(
                (
                    name,
                    answered,
                    f"{quality[name][0]:.3f}",
                    f"{quality[name][1]:.3f}",
                    f"{elapsed * 1000 / max(len(queries), 1):.1f} ms",
                )
            )
        return rows, quality

    rows, quality = benchmark.pedantic(evaluate, rounds=1, iterations=1)

    # both rankers must be far better than random on head queries
    for name, (p3, ndcg10) in quality.items():
        assert p3 > 0.5, f"{name}: precision@3 collapsed ({p3:.2f})"
        assert ndcg10 > 0.5, f"{name}: ndcg@10 collapsed ({ndcg10:.2f})"

    artifact = render_table(
        ["Feature set", "Answered", "P@3", "nDCG@10", "Per-query time"],
        rows,
        title="ABL6 — production TS/MI/RI vs the extended feature set",
    )
    write_artifact(results_dir, "ablation_feature_sets", artifact)

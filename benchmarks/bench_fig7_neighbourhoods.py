"""FIG7 — the community around the "49ers" analogue and its neighbours.

Paper: Figure 7 plots the community containing "49ers" (variants,
activities, players) plus its three closest communities (SF tourism,
SF Gate, Colin Kaepernick).  Expected shape here: the seed community
holds the topic's surface forms; neighbours are ranked by link weight.
"""

from repro.eval.experiments import run_fig7

from conftest import write_artifact


def test_fig7_neighbourhoods(benchmark, ctx, results_dir):
    result = benchmark(run_fig7, ctx)

    assert result.seed_term in result.community
    assert len(result.community) >= 2          # variants were clustered in
    assert 1 <= len(result.neighbours) <= 3
    weights = [n.link_weight for n in result.neighbours]
    assert weights == sorted(weights, reverse=True)

    lines = [
        f"Figure 7 — communities around the term {result.seed_term!r}",
        "",
        f"seed community ({len(result.community)} keywords):",
        "  " + ", ".join(result.community),
        "",
        "closest communities:",
    ]
    for neighbour in result.neighbours:
        members = ", ".join(neighbour.members[:8])
        lines.append(
            f"  [links={neighbour.link_weight}] {members}"
            + (" ..." if len(neighbour.members) > 8 else "")
        )
    write_artifact(results_dir, "fig7_neighbourhoods", "\n".join(lines))

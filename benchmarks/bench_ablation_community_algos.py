"""ABL1 — community-detection paradigms on the production graph.

§8 names "exploring different community detection paradigms" as future
work; this ablation runs them: the paper's parallel algorithm (all three
step-3 readings), Newman's sequential CNM, Louvain and label propagation,
comparing community count, total modularity, gold purity and wall time.

The headline finding (see DESIGN.md): the literal Figure 4 pointer
semantics is the variant whose output matches the paper's own Figure 5/6
statistics — running the merge process to ΔMod-exhaustion (Newman,
Louvain, matching/components) hits modularity's resolution limit and
produces communities too coarse for query expansion.
"""

import time

from repro.community.labelprop import LabelPropagationDetector
from repro.community.louvain import LouvainDetector
from repro.community.modularity import total_modularity
from repro.community.newman import NewmanGreedyDetector
from repro.community.parallel import ParallelCommunityDetector, ParallelConfig
from repro.community.quality import purity
from repro.eval.reporting import render_table

from conftest import write_artifact


def _gold_labels(world):
    labels = {}
    for topic_id, members in world.ground_truth_communities().items():
        for member in members:
            labels[member] = str(topic_id)
    return labels


def test_ablation_community_algorithms(benchmark, ctx, results_dir):
    graph = ctx.system.offline.multigraph
    gold = _gold_labels(ctx.system.offline.world)

    detectors = {
        "parallel/pointer (paper)": lambda: ParallelCommunityDetector(
            graph, ParallelConfig(merge_mode="pointer")
        ).run(),
        "parallel/matching": lambda: ParallelCommunityDetector(
            graph, ParallelConfig(merge_mode="matching")
        ).run(),
        "parallel/components": lambda: ParallelCommunityDetector(
            graph, ParallelConfig(merge_mode="components")
        ).run(),
        "newman greedy (CNM)": lambda: NewmanGreedyDetector(graph).run(),
        "louvain": lambda: LouvainDetector(graph).run(),
        "label propagation": lambda: LabelPropagationDetector(graph).run(),
    }

    rows = []
    outcomes = {}
    for name, run in detectors.items():
        started = time.perf_counter()
        partition = run()
        elapsed = time.perf_counter() - started
        outcomes[name] = partition
        rows.append(
            (
                name,
                partition.community_count(),
                f"{total_modularity(graph, partition):.1f}",
                f"{purity(partition, gold):.3f}",
                f"{elapsed * 1000:.0f} ms",
            )
        )

    benchmark(
        lambda: ParallelCommunityDetector(
            graph, ParallelConfig(merge_mode="pointer")
        ).run()
    )

    # the finding: pointer mode tracks gold topics far better than the
    # exhaustive-merge variants on this graph
    pointer_purity = purity(outcomes["parallel/pointer (paper)"], gold)
    exhaustive_purity = purity(outcomes["parallel/components"], gold)
    assert pointer_purity > exhaustive_purity

    artifact = render_table(
        ["Algorithm", "Communities", "Total modularity", "Gold purity",
         "Time"],
        rows,
        title="ABL1 — community detection paradigms on the standard graph",
    )
    write_artifact(results_dir, "ablation_community_algos", artifact)

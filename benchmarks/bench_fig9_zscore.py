"""FIG9 — impact of the z-score threshold on experts per query (Top 250).

Paper: Figure 9 sweeps the minimum z-score from 0 to ~8.75; the average
number of experts per query decreases monotonically, and e# stays above
the baseline over the whole sweep.  Expected shape here: identical.
"""

from repro.eval.experiments import run_fig9
from repro.eval.reporting import render_series

from conftest import write_artifact


def test_fig9_zscore_sweep(benchmark, ctx, results_dir):
    result = benchmark(run_fig9, ctx)

    for curve in (result.baseline_avg, result.esharp_avg):
        assert all(a >= b for a, b in zip(curve, curve[1:]))
    assert all(
        e >= b for e, b in zip(result.esharp_avg, result.baseline_avg)
    )
    # the sweep must actually bite: strictest ≪ loosest
    assert result.esharp_avg[-1] < result.esharp_avg[0]

    artifact = render_series(
        "min z-score",
        {
            "baseline avg experts": result.baseline_avg,
            "e# avg experts": result.esharp_avg,
        },
        result.thresholds,
        title=(
            "Figure 9 — impact of the z-score threshold on the number of "
            "experts (set: top 250)"
        ),
    )
    write_artifact(results_dir, "fig9_zscore", artifact)

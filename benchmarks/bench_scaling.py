"""Scaling behaviour of the offline pipeline (§4.2.3's motivation).

The paper parallelises the clustering because the production graph has
60M edges.  This bench measures how one clustering iteration scales with
graph size on our substrate: the per-iteration cost of the Figure 4
algorithm is O(E + C), so doubling the edge count should roughly double
the iteration time — the property that makes the map-reduce formulation
worthwhile in the first place.
"""

import random
import time

from repro.community.parallel import ParallelCommunityDetector, ParallelConfig
from repro.community.partition import singleton_partition
from repro.eval.reporting import render_table
from repro.simgraph.graph import MultiGraph

from conftest import write_artifact


def _planted_graph(blocks: int, block_size: int, seed: int) -> MultiGraph:
    rng = random.Random(seed)
    graph = MultiGraph()
    for block in range(blocks):
        vertices = [f"b{block}v{i}" for i in range(block_size)]
        for i, u in enumerate(vertices):
            for v in vertices[i + 1 :]:
                if rng.random() < 0.4:
                    graph.add_edge(u, v, rng.randint(1, 3))
    for block in range(blocks - 1):
        graph.add_edge(f"b{block}v0", f"b{block + 1}v0", 1)
    return graph


def _one_iteration_seconds(graph: MultiGraph) -> float:
    detector = ParallelCommunityDetector(graph, ParallelConfig())
    partition = singleton_partition(graph.vertices())
    started = time.perf_counter()
    targets = detector.choose_targets(partition)
    detector.apply_targets(partition, targets)
    return time.perf_counter() - started


def test_clustering_iteration_scales_near_linearly(benchmark, results_dir):
    sizes = (10, 20, 40, 80)
    rows = []
    timings: dict[int, float] = {}
    for blocks in sizes:
        graph = _planted_graph(blocks, block_size=14, seed=blocks)
        # median of 3 to smooth scheduler noise
        seconds = sorted(_one_iteration_seconds(graph) for _ in range(3))[1]
        timings[blocks] = seconds
        rows.append(
            (
                blocks,
                graph.vertex_count,
                graph.distinct_edge_count,
                f"{seconds * 1000:.1f} ms",
                f"{graph.distinct_edge_count / max(seconds, 1e-9) / 1e6:.2f} M edges/s",
            )
        )

    benchmark(
        _one_iteration_seconds, _planted_graph(40, block_size=14, seed=40)
    )

    # near-linear: 8x edges should cost < 24x time (3x headroom on linear)
    ratio = timings[sizes[-1]] / max(timings[sizes[0]], 1e-9)
    assert ratio < 24, f"iteration cost grew {ratio:.1f}x over an 8x graph"

    artifact = render_table(
        ["Blocks", "Vertices", "Edges", "Iteration time", "Throughput"],
        rows,
        title="Scaling — one Figure 4 iteration vs graph size",
    )
    write_artifact(results_dir, "scaling_clustering", artifact)

"""ABL2 — physical join strategies inside the SQL clustering (§4.2.3).

The paper discusses two distributed plans for the communities ⋈ graph
join: a replicated (broadcast) join when communities fit in node memory,
and chained map-side joins otherwise.  This ablation runs the full
Figure 4 clustering under each strategy (plus the single-node hash join)
and reports shuffle volumes and wall time.  All strategies must produce
the identical partition.
"""

import time

from repro.community.parallel import ParallelConfig
from repro.community.sql_runner import SqlCommunityDetector
from repro.eval.reporting import render_table
from repro.relational.engine import Engine
from repro.simgraph.graph import MultiGraph

from conftest import write_artifact


def _subgraph(graph: MultiGraph, max_edges: int) -> MultiGraph:
    small = MultiGraph()
    for index, (u, v, m) in enumerate(graph.edges()):
        if index >= max_edges:
            break
        small.add_edge(u, v, m)
    return small


def test_ablation_join_strategies(benchmark, ctx, results_dir):
    # the SQL path is the slow demonstration path; a subgraph keeps the
    # three full clustering runs inside a sensible bench budget
    graph = _subgraph(ctx.system.offline.multigraph, 2_000)
    config = ParallelConfig(max_iterations=8)

    rows = []
    partitions = {}
    for strategy in ("hash", "replicated", "map_side"):
        engine = Engine(join_strategy=strategy, partitions=8)
        detector = SqlCommunityDetector(graph, config, engine=engine)
        started = time.perf_counter()
        partitions[strategy] = detector.run()
        elapsed = time.perf_counter() - started
        stats = engine.stats
        rows.append(
            (
                strategy,
                stats.max_partitions,
                f"{stats.shuffled_bytes:,}",
                f"{stats.rows_read:,}",
                f"{elapsed:.2f} s",
            )
        )

    # correctness: identical clustering whatever the physical plan
    assert partitions["hash"].same_structure(partitions["replicated"])
    assert partitions["hash"].same_structure(partitions["map_side"])
    # §4.2.3: the broadcast join ships the communities table once per node
    shuffled = {row[0]: int(row[2].replace(",", "")) for row in rows}
    assert shuffled["hash"] == 0
    assert shuffled["replicated"] > shuffled["map_side"] > 0

    benchmark.pedantic(
        lambda: SqlCommunityDetector(
            graph, config, engine=Engine(join_strategy="hash")
        ).run(),
        rounds=1,
        iterations=1,
    )

    artifact = render_table(
        ["Join strategy", "Partitions", "Shuffled bytes", "Rows read",
         "Wall time"],
        rows,
        title="ABL2 — §4.2.3 join strategies for the Figure 4 clustering",
    )
    write_artifact(results_dir, "ablation_join_strategies", artifact)

"""TAB9 — resource consumption per pipeline stage.

Paper: Table 9 — Extraction (65 VMs, 38 min, 998 GB → 2.6 GB), Clustering
(65 VMs, 2 h), Expansion (<100 ms), Detection (<1 s).  Absolute numbers
are cluster-bound; the *profile* must hold: extraction reads orders of
magnitude more than it writes, the offline stages dwarf the online ones,
and the online path is interactive.
"""

from repro.eval.experiments import run_table9
from repro.eval.reporting import render_table

from conftest import write_artifact


def test_table9_resources(benchmark, ctx, results_dir):
    result = benchmark.pedantic(
        run_table9, args=(ctx,), kwargs={"sample_queries": 25},
        rounds=1, iterations=1,
    )

    names = [row[0] for row in result.rows]
    assert names == ["Extraction", "Clustering", "Expansion", "Detection"]
    # online stages at interactive latencies
    assert result.expansion_seconds < 0.1
    assert result.detection_seconds < 1.0
    # extraction is a massive reduction
    extraction = ctx.system.offline.clock.reports[0]
    assert extraction.bytes_read > 10 * extraction.bytes_written
    # offline stages dwarf the online path
    offline_seconds = ctx.system.offline.clock.total_seconds()
    assert offline_seconds > 10 * (
        result.expansion_seconds + result.detection_seconds
    )

    artifact = render_table(
        ["Step", "Workers", "Runtime", "Read", "Write"],
        result.rows,
        title="Table 9 — resource consumption for one pipeline iteration",
    )
    write_artifact(results_dir, "table9_resources", artifact)

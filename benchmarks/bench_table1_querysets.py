"""TAB1 — the evaluation query sets.

Paper: Table 1 lists six sets (Sports/Electronics/Finance/Health 100 each,
Wikipedia 100, Top 250) = 750 queries with examples.  Expected shape here:
six sets with the same names, drawn from the simulated log's popularity,
with example queries per set.
"""

from repro.eval.querysets import build_query_sets, total_queries
from repro.eval.reporting import render_table

from conftest import write_artifact


def test_table1_query_sets(benchmark, ctx, results_dir):
    offline = ctx.system.offline
    sets = benchmark(build_query_sets, offline.world, offline.store)

    names = [s.name for s in sets]
    assert names == [
        "sports", "electronics", "finance", "health", "wikipedia", "top 250",
    ]
    assert all(len(s) > 0 for s in sets)
    # the top set must be the largest, as in the paper
    assert len(sets[-1]) == max(len(s) for s in sets)

    rows = [
        (s.name, len(s), ", ".join(s.examples(4)))
        for s in sets
    ]
    artifact = render_table(
        ["Set Name", "Count", "Examples"],
        rows,
        title=(
            "Table 1 — queries used for the evaluation "
            f"({total_queries(sets)} total)"
        ),
    )
    write_artifact(results_dir, "table1_querysets", artifact)

"""RES1 — fleet resilience: availability, recovery time, and the cost
of chaos.

Three scenarios against a warm-started fleet, all under the contract
that the router **never returns a wrong answer** — every full-coverage
answer must be byte-identical to the single-replica reference, and
anything less must be explicitly marked ``coverage < 1.0``:

* **Availability under a crash.**  A subprocess fleet (supervised) loses
  one replica to SIGKILL mid-workload; the bench reports the fraction of
  queries answered in full, answered degraded, and failed — before the
  kill, during the outage, and after the supervisor restores the slot —
  plus the wall-clock recovery time (kill → fresh replica answering).
* **Deadline-bounded latency spikes.**  A seeded chaos plan injects
  latency at the replica-call site with fixed probability; the bench
  reports the added p99 versus the fault-free baseline on the same
  in-process fleet.
* **Exactness throughout.**  Any byte-divergent full-coverage answer
  fails the bench outright.

Writes ``BENCH_resilience.json`` at the repo root.  CI smoke::

    PYTHONPATH=src python benchmarks/bench_resilience.py --smoke \
        --output /tmp/BENCH_resilience.json
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import shutil
import signal
import tempfile
import time

from repro.chaos import FaultPlan, FaultSpec, inject
from repro.core.config import ESharpConfig
from repro.core.esharp import ESharp
from repro.fleet import (
    FleetConfig,
    FleetRouter,
    InProcessReplica,
    ReplicaSupervisor,
    SubprocessReplica,
    SupervisorConfig,
)
from repro.fleet.wire import answer_to_wire
from repro.serving.loadgen import candidate_queries
from repro.serving.service import ExpertService, ServiceConfig
from repro.utils.stats import percentile

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: probability / sleep of the injected latency spike (per replica call)
SPIKE_PROBABILITY = 0.25
SPIKE_SECONDS = 0.05


def answer_bytes(answer) -> str:
    """Canonical JSON of an answer's *content* (timings stripped)."""
    wire = answer_to_wire(answer)
    for volatile in (
        "expansion_seconds",
        "detection_seconds",
        "total_seconds",
        "cache_hit",
        "coalesced",
    ):
        wire.pop(volatile, None)
    return json.dumps(wire, sort_keys=True, separators=(",", ":"))


def make_inprocess_fleet(artifact: pathlib.Path, replicas: int):
    handles = [
        InProcessReplica(
            f"replica-{index}",
            ESharp.from_artifact(artifact),
            ServiceConfig(detection_workers=1),
        )
        for index in range(replicas)
    ]
    return FleetRouter.from_artifact(
        artifact,
        handles,
        sharding="hash",
        config=FleetConfig(hedging=False),
    )


def make_subprocess_fleet(artifact: pathlib.Path, replicas: int):
    handles = [
        SubprocessReplica(
            f"replica-{index}",
            artifact,
            detection_workers=1,
            request_timeout_seconds=30.0,
        )
        for index in range(replicas)
    ]
    router = FleetRouter.from_artifact(
        artifact,
        handles,
        sharding="hash",
        config=FleetConfig(hedging=False, allow_degraded=True),
    )
    factories = {
        handle.name: (
            lambda name=handle.name: SubprocessReplica(
                name,
                artifact,
                detection_workers=1,
                request_timeout_seconds=30.0,
            )
        )
        for handle in handles
    }
    supervisor = ReplicaSupervisor(
        router,
        factories,
        SupervisorConfig(
            poll_interval_seconds=0.1,
            probe_timeout_seconds=2.0,
            backoff_initial_seconds=0.05,
            restart_budget=10,
        ),
    )
    return router, supervisor


def run_lap(router, queries, reference) -> dict:
    """One pass over the workload: availability + latency percentiles."""
    latencies = []
    ok_full = ok_degraded = errors = mismatches = 0
    started = time.perf_counter()
    for query in queries:
        t0 = time.perf_counter()
        try:
            answer = router.query(query)
        except Exception:  # noqa: BLE001 - counted, not fatal
            errors += 1
            continue
        latencies.append(time.perf_counter() - t0)
        if answer.coverage < 1.0:
            ok_degraded += 1
        elif answer_bytes(answer) != reference[query]:
            mismatches += 1
        else:
            ok_full += 1
    wall = time.perf_counter() - started
    answered = ok_full + ok_degraded
    return {
        "requests": len(queries),
        "ok_full": ok_full,
        "ok_degraded": ok_degraded,
        "errors": errors,
        "mismatches": mismatches,
        "availability": answered / len(queries) if queries else 0.0,
        "full_availability": ok_full / len(queries) if queries else 0.0,
        "p50_ms": (percentile(latencies, 0.50) * 1000) if latencies else 0.0,
        "p99_ms": (percentile(latencies, 0.99) * 1000) if latencies else 0.0,
        "qps": (len(queries) - errors) / wall if wall else 0.0,
    }


def crash_scenario(
    artifact: pathlib.Path, replicas: int, queries, reference
) -> dict:
    router, supervisor = make_subprocess_fleet(artifact, replicas)
    try:
        supervisor.start()
        before = run_lap(router, queries, reference)

        victim = router.replica("replica-0")
        os.kill(victim.pid, signal.SIGKILL)
        killed_at = time.monotonic()
        during = run_lap(router, queries, reference)

        def restored() -> bool:
            fresh = router.replica("replica-0")
            return (
                fresh is not victim
                and fresh.is_alive()
                and fresh.ping(timeout=2.0)
            )

        deadline = time.monotonic() + 300.0
        while not restored() and time.monotonic() < deadline:
            time.sleep(0.05)
        if not restored():
            raise AssertionError(
                "supervisor failed to restore the killed replica"
            )
        recovery_seconds = time.monotonic() - killed_at
        after = run_lap(router, queries, reference)
        stats = supervisor.stats()
        return {
            "replicas": replicas,
            "before_kill": before,
            "during_outage": during,
            "after_recovery": after,
            "recovery_seconds": recovery_seconds,
            "supervisor": {
                "restarts": stats.restarts,
                "failed_restarts": stats.failed_restarts,
                "gave_up": stats.gave_up,
            },
        }
    finally:
        supervisor.close()
        router.close()


def latency_spike_scenario(
    artifact: pathlib.Path, replicas: int, queries, reference, seed: int
) -> dict:
    plan = FaultPlan(
        seed=seed,
        faults=(
            FaultSpec(
                site="replica.call",
                kind="latency",
                seconds=SPIKE_SECONDS,
                probability=SPIKE_PROBABILITY,
                times=0,
            ),
        ),
    )
    router = make_inprocess_fleet(artifact, replicas)
    try:
        baseline = run_lap(router, queries, reference)
        with inject.installed(plan):
            spiked = run_lap(router, queries, reference)
        return {
            "replicas": replicas,
            "spike_probability": SPIKE_PROBABILITY,
            "spike_seconds": SPIKE_SECONDS,
            "baseline": baseline,
            "spiked": spiked,
            "added_p99_ms": spiked["p99_ms"] - baseline["p99_ms"],
        }
    finally:
        router.close()


def run_resilience_bench(
    config: ESharpConfig, *, replicas: int, working_set: int, smoke: bool
) -> dict:
    tmp = pathlib.Path(tempfile.mkdtemp(prefix="bench-resilience-"))
    try:
        artifact = tmp / "artifact"
        t0 = time.perf_counter()
        system = ESharp(config).build(artifact_dir=artifact)
        build_seconds = time.perf_counter() - t0

        queries = candidate_queries(system, working_set) + [
            "no such phrase at all"
        ]
        with ExpertService(system) as single:
            reference = {q: answer_bytes(single.query(q)) for q in queries}

        spike = latency_spike_scenario(
            artifact, replicas, queries, reference, config.seed
        )
        crash = crash_scenario(artifact, replicas, queries, reference)

        mismatches = (
            spike["baseline"]["mismatches"]
            + spike["spiked"]["mismatches"]
            + crash["before_kill"]["mismatches"]
            + crash["during_outage"]["mismatches"]
            + crash["after_recovery"]["mismatches"]
        )
        if mismatches:
            raise AssertionError(
                f"{mismatches} full-coverage answers diverged from the "
                "single-replica reference — the fleet served a wrong answer"
            )
        if crash["after_recovery"]["full_availability"] < 1.0:
            raise AssertionError(
                "full coverage did not resume after supervised recovery"
            )
        return {
            "bench": "resilience",
            "mode": "smoke" if smoke else "full",
            "scale": "small",
            "host_cpus": os.cpu_count(),
            "build_seconds": build_seconds,
            "replicas": replicas,
            "working_set": len(queries),
            "never_wrong": True,
            "latency_spike": spike,
            "crash_recovery": crash,
        }
    finally:
        shutil.rmtree(tmp, ignore_errors=True)


def render(payload: dict) -> str:
    spike = payload["latency_spike"]
    crash = payload["crash_recovery"]
    return "\n".join(
        [
            f"resilience bench ({payload['mode']}, {payload['replicas']} "
            f"replicas, {payload['host_cpus']} host cpus)",
            f"  exactness:    never wrong over "
            f"{payload['working_set']} queries x 5 laps",
            f"  latency:      p99 {spike['baseline']['p99_ms']:.1f}ms -> "
            f"{spike['spiked']['p99_ms']:.1f}ms under "
            f"{spike['spike_probability']:.0%} x "
            f"{spike['spike_seconds'] * 1000:.0f}ms spikes "
            f"(+{spike['added_p99_ms']:.1f}ms)",
            f"  crash:        availability "
            f"{crash['before_kill']['availability']:.1%} -> "
            f"{crash['during_outage']['availability']:.1%} during outage -> "
            f"{crash['after_recovery']['availability']:.1%} recovered",
            f"  recovery:     {crash['recovery_seconds']:.2f}s from SIGKILL "
            f"to a warm replica answering "
            f"({crash['supervisor']['restarts']} restart(s))",
        ]
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small scale, 2 replicas, short workload (CI)",
    )
    parser.add_argument("--seed", type=int, default=2016)
    parser.add_argument("--output", metavar="PATH", default=None)
    parser.add_argument(
        "--replicas",
        type=int,
        default=None,
        help="fleet size (default: 2 smoke, 4 full)",
    )
    args = parser.parse_args()

    config = ESharpConfig.small(seed=args.seed)
    replicas = args.replicas or (2 if args.smoke else 4)
    working_set = 16 if args.smoke else 48

    payload = run_resilience_bench(
        config, replicas=replicas, working_set=working_set, smoke=args.smoke
    )
    print(render(payload))
    output = (
        pathlib.Path(args.output)
        if args.output
        else REPO_ROOT / "BENCH_resilience.json"
    )
    output.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    print(f"[json written to {output}]")


if __name__ == "__main__":
    main()

"""FIG10 — size vs quality trade-off (impurity).

Paper: Figure 10 plots impurity (fraction of results the crowd flagged as
non-experts) against the average number of experts per query; e#'s
accuracy penalty is "minimal, if not negligible" — at equal recall the
curves nearly coincide.  Expected shape here: compared at overlapping
recall levels, e#'s impurity is at or below the baseline's.
"""

from repro.eval.experiments import run_fig10
from repro.eval.reporting import render_table

from conftest import write_artifact


def test_fig10_impurity(benchmark, ctx, results_dir):
    results = benchmark.pedantic(
        run_fig10, args=(ctx,), rounds=1, iterations=1
    )

    assert len(results) == 6
    blocks = []
    for result in results:
        for point in result.baseline + result.esharp:
            assert 0.0 <= point.impurity <= 1.0
        # equal-recall comparison: for each baseline point, find the e#
        # point of closest avg_experts and compare impurity there
        penalties = []
        for b in result.baseline:
            if b.avg_experts <= 0:
                continue
            closest = min(
                result.esharp,
                key=lambda e: abs(e.avg_experts - b.avg_experts),
            )
            if abs(closest.avg_experts - b.avg_experts) <= 2.0:
                penalties.append(closest.impurity - b.impurity)
        if penalties:
            assert min(penalties) <= 0.12, (
                f"{result.dataset}: e# impurity penalty at equal recall "
                "is not minimal anywhere"
            )

        rows = [
            (
                f"{b.threshold:.1f}",
                f"{b.avg_experts:.2f}",
                f"{b.impurity:.3f}",
                f"{e.avg_experts:.2f}",
                f"{e.impurity:.3f}",
            )
            for b, e in zip(result.baseline, result.esharp)
        ]
        blocks.append(
            render_table(
                ["min z", "base avg n", "base impurity", "e# avg n",
                 "e# impurity"],
                rows,
                title=f"Figure 10 — size vs quality: {result.dataset}",
            )
        )
    write_artifact(results_dir, "fig10_impurity", "\n\n".join(blocks))

"""FIG8 — queries with at least n experts, n = 0..14, per query set.

Paper: Figure 8 shows, per set, the percentage of queries for which each
algorithm returns ≥n experts; e#'s curve dominates the baseline's almost
everywhere (avg ≈10% more experts, up to 30%).  Expected shape here:
monotone non-increasing curves with e# above the baseline.
"""

from repro.eval.experiments import run_fig8
from repro.eval.reporting import render_series

from conftest import write_artifact


def test_fig8_recall_curves(benchmark, ctx, results_dir):
    results = benchmark(run_fig8, ctx)

    assert len(results) == 6
    dominated, total = 0, 0
    for result in results:
        for curve in (result.baseline_pct, result.esharp_pct):
            assert all(a >= b for a, b in zip(curve, curve[1:]))
            assert curve[0] == 100.0
        for b, e in zip(result.baseline_pct, result.esharp_pct):
            total += 1
            dominated += e >= b
    assert dominated / total > 0.9, "e# does not dominate the baseline"

    blocks = []
    for result in results:
        blocks.append(
            render_series(
                "n",
                {
                    "baseline %": result.baseline_pct,
                    "e# %": result.esharp_pct,
                },
                result.n_values,
                title=f"Figure 8 — queries with ≥ n experts: {result.dataset}",
                precision=1,
            )
        )
    write_artifact(results_dir, "fig8_recall_curves", "\n\n".join(blocks))

"""FIG5 — convergence of the community detection algorithm.

Paper: Figure 5 plots the community count per iteration over a month of
query logs (≈2M communities at iteration 0, steep drop, convergence after
≈6 iterations).  Expected shape here: same steep drop and a plateau within
a handful of iterations.
"""

from repro.eval.experiments import run_fig5
from repro.eval.reporting import render_series

from conftest import write_artifact


def test_fig5_convergence(benchmark, ctx, results_dir):
    result = benchmark(run_fig5, ctx)

    assert result.community_counts[0] == ctx.system.offline.multigraph.vertex_count
    counts = result.community_counts
    assert all(a >= b for a, b in zip(counts, counts[1:]))
    assert result.converged_after <= 12
    # the steep first-iterations drop of Figure 5
    assert counts[1] <= 0.65 * counts[0]

    artifact = render_series(
        "iteration",
        {"communities": [float(c) for c in counts]},
        result.iterations,
        title="Figure 5 — community count per clustering iteration",
        precision=0,
    )
    write_artifact(results_dir, "fig5_convergence", artifact)

"""TAB8 — proportion of queries with at least one expert.

Paper: Table 8 reports coverage before/after expansion per query set;
baseline 0.64–0.94, e# 0.86–0.98, a "neat improvement" in all six cases
(3.1%–35%), smallest where the baseline is already strong.  Expected
shape here: e# ≥ baseline on every set, with relative gains in the same
order of magnitude.
"""

from repro.eval.experiments import run_table8
from repro.eval.reporting import render_table

from conftest import write_artifact


def test_table8_coverage(benchmark, ctx, results_dir):
    rows = benchmark(run_table8, ctx)

    assert len(rows) == 6
    for row in rows:
        assert row.esharp >= row.baseline, f"{row.dataset}: e# lost coverage"
    gains = [row.improvement for row in rows if row.baseline > 0]
    assert any(gain >= 0.02 for gain in gains), "no set improved by ≥2%"
    assert all(gain <= 2.0 for gain in gains), "implausible >200% gain"

    rendered = [
        (
            row.dataset,
            f"{row.baseline:.2f}",
            f"{row.esharp:.2f}",
            f"{row.improvement * 100:.1f}%",
        )
        for row in rows
    ]
    artifact = render_table(
        ["Data set", "Baseline", "e#", "Improvement"],
        rendered,
        title=(
            "Table 8 — proportion of queries with at least one candidate "
            "expert, before and after query expansion"
        ),
    )
    write_artifact(results_dir, "table8_coverage", artifact)

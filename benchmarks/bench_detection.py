"""DET1 — per-term detection latency: columnar index engine vs scan path.

Per-term scoring is the inner loop of the whole system (every expanded
query fans out into N per-term ``score`` calls), so this bench tracks it
directly: p50/p95 per-term latency for single-token and multi-token
terms, cold (score memo cleared before every call) and memoised (warm
repeats), on the seed scan-based detector versus the
:class:`~repro.detector.engine.IndexedDetectionEngine`-backed one.

Writes ``BENCH_detection.json`` at the repo root so detection speed
joins ``BENCH_serving.json`` in the cross-PR perf trajectory.  The
acceptance bar: the index must win single-token cold scoring by >= 3x
p50 at the default (standard-scale) config.

Also runnable standalone — the CI smoke uses a tiny config so the bench
itself cannot silently rot::

    PYTHONPATH=src python benchmarks/bench_detection.py --scale small \
        --single-terms 8 --multi-terms 8 --output /tmp/BENCH_detection.json
"""

from __future__ import annotations

import argparse
import json
import pathlib
import time

from repro.detector.palcounts import PalCountsDetector
from repro.utils.stats import percentile

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

SINGLE_TERMS = 24
MULTI_TERMS = 24
REPEATS = 3
MIN_SINGLE_COLD_SPEEDUP = 3.0


def _single_token_terms(platform, count: int) -> list[str]:
    """The ``count`` most frequent indexed tokens (longest postings)."""
    ranked = sorted(
        platform.posting_tokens(),
        key=lambda token: (-len(platform.posting_rows(token)), token),
    )
    return ranked[:count]


def _multi_token_terms(system, count: int) -> list[str]:
    """Popular logged queries of >= 2 tokens that match at least one tweet."""
    from repro.utils.text import tokenize

    store = system.offline.store
    frequency = {
        query: store.query_count(query) for query in store.supported_queries()
    }
    ranked = sorted(frequency, key=lambda q: (-frequency[q], q))
    picked = []
    for query in ranked:
        if len(set(tokenize(query))) < 2:
            continue
        if not system.platform.matching_rows(query):
            continue
        picked.append(query)
        if len(picked) == count:
            break
    return picked


def _time_per_term(detector, terms: list[str], repeats: int, cold: bool):
    """Per-call latencies (ms).  ``cold`` clears the score memo per call."""
    samples = []
    if not cold:
        for term in terms:  # warm the memo once
            detector.score(term)
    for _ in range(repeats):
        for term in terms:
            if cold:
                detector.cache_clear()
            started = time.perf_counter()
            detector.score(term)
            samples.append((time.perf_counter() - started) * 1000.0)
    return samples


def _summarise(scan_ms, engine_ms) -> dict:
    scan_p50 = percentile(scan_ms, 0.5)
    engine_p50 = percentile(engine_ms, 0.5)
    return {
        "scan_p50_ms": round(scan_p50, 4),
        "scan_p95_ms": round(percentile(scan_ms, 0.95), 4),
        "engine_p50_ms": round(engine_p50, 4),
        "engine_p95_ms": round(percentile(engine_ms, 0.95), 4),
        "speedup_p50": round(scan_p50 / engine_p50, 2) if engine_p50 else None,
    }


def run_detection_bench(
    system,
    single_terms: int = SINGLE_TERMS,
    multi_terms: int = MULTI_TERMS,
    repeats: int = REPEATS,
) -> dict:
    """Time scan vs engine per-term scoring; returns the JSON payload."""
    platform = system.platform
    scan = PalCountsDetector(
        platform,
        ranking=system.config.ranking,
        normalization=system.config.normalization,
        use_engine=False,
    )
    engine_detector = PalCountsDetector(
        platform,
        ranking=system.config.ranking,
        normalization=system.config.normalization,
    )
    started = time.perf_counter()
    engine_detector.engine.refresh()
    build_seconds = time.perf_counter() - started

    singles = _single_token_terms(platform, single_terms)
    multis = _multi_token_terms(system, multi_terms)
    if not singles:
        raise ValueError("no indexed tokens to benchmark")

    # the two paths must agree to the byte before their timings mean anything
    for term in singles[:5] + multis[:5]:
        if scan.score(term) != engine_detector.score(term):
            raise AssertionError(f"engine diverges from scan path on {term!r}")
    scan.cache_clear()
    engine_detector.cache_clear()
    engine_stats = engine_detector.engine.stats()

    payload: dict = {
        "config": {
            "tweets": platform.tweet_count,
            "users": platform.user_count,
            "single_terms": len(singles),
            "multi_terms": len(multis),
            "repeats": repeats,
        },
        "engine": {
            "build_seconds": round(build_seconds, 4),
            "estimated_bytes": engine_stats.estimated_bytes,
            "tokens": engine_stats.tokens,
            "candidate_rows": engine_stats.candidate_rows,
        },
    }
    for label, terms in (("single_token", singles), ("multi_token", multis)):
        if not terms:
            payload[label] = None
            continue
        payload[label] = {
            "cold": _summarise(
                _time_per_term(scan, terms, repeats, cold=True),
                _time_per_term(engine_detector, terms, repeats, cold=True),
            ),
            "memoised": _summarise(
                _time_per_term(scan, terms, repeats, cold=False),
                _time_per_term(engine_detector, terms, repeats, cold=False),
            ),
        }
    return payload


def render(payload: dict) -> str:
    lines = [
        "DET1 — per-term detection latency (ms), scan path vs indexed engine",
        f"  corpus: {payload['config']['tweets']} tweets / "
        f"{payload['config']['users']} users; index "
        f"{payload['engine']['estimated_bytes']:,} bytes over "
        f"{payload['engine']['tokens']} tokens "
        f"(built in {payload['engine']['build_seconds']}s)",
    ]
    for label in ("single_token", "multi_token"):
        block = payload.get(label)
        if not block:
            continue
        for mode in ("cold", "memoised"):
            row = block[mode]
            lines.append(
                f"  {label:<12} {mode:<9} "
                f"scan p50={row['scan_p50_ms']:>8.3f} p95={row['scan_p95_ms']:>8.3f}   "
                f"engine p50={row['engine_p50_ms']:>8.3f} p95={row['engine_p95_ms']:>8.3f}   "
                f"speedup={row['speedup_p50']}x"
            )
    return "\n".join(lines)


def write_payload(payload: dict, path: pathlib.Path) -> None:
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def test_detection_latency(benchmark, ctx, results_dir):
    payload = benchmark.pedantic(
        run_detection_bench,
        args=(ctx.system,),
        rounds=1,
        iterations=1,
    )
    single_cold = payload["single_token"]["cold"]
    assert single_cold["speedup_p50"] >= MIN_SINGLE_COLD_SPEEDUP
    assert payload["multi_token"] is not None
    assert payload["engine"]["estimated_bytes"] > 0

    bench_path = REPO_ROOT / "BENCH_detection.json"
    write_payload(payload, bench_path)

    from conftest import write_artifact

    write_artifact(
        results_dir,
        "detection_latency",
        render(payload) + f"\n[json written to {bench_path}]",
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", choices=("small", "standard"), default="standard")
    parser.add_argument("--seed", type=int, default=2016)
    parser.add_argument("--single-terms", type=int, default=SINGLE_TERMS)
    parser.add_argument("--multi-terms", type=int, default=MULTI_TERMS)
    parser.add_argument("--repeats", type=int, default=REPEATS)
    parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=REPO_ROOT / "BENCH_detection.json",
    )
    args = parser.parse_args()

    from repro.core.config import ESharpConfig
    from repro.core.esharp import ESharp

    config = (
        ESharpConfig.small(seed=args.seed)
        if args.scale == "small"
        else ESharpConfig.standard(seed=args.seed)
    )
    system = ESharp(config).build()
    payload = run_detection_bench(
        system,
        single_terms=args.single_terms,
        multi_terms=args.multi_terms,
        repeats=args.repeats,
    )
    write_payload(payload, args.output)
    print(render(payload))
    print(f"[json written to {args.output}]")


if __name__ == "__main__":
    main()

"""INC1 — incremental domain refresh (delta ingest) vs full rebuild.

§6.3 rebuilds the domain collection weekly; ``refresh_domains`` re-runs
the entire offline pipeline (log regeneration, similarity join,
clustering) even when only a sliver of new traffic arrived.  This bench
times the delta path — :meth:`ESharp.refresh_domains_delta` feeding a
batch of new impressions through the resumable join state and the
seed-and-local clusterer — against the batch path, for deltas of a few
percent of the corpus, and **checks the equivalence property first**: a
delta refresh must produce the identical domain store a full
:class:`OfflinePipeline` run on the union log produces, in both churn
regimes (local moves and the full-recluster fallback).

Acceptance bar: delta-refresh p50 >= 5x faster than a full
``refresh_domains`` for deltas <= 5% of corpus size at standard scale.

Writes ``BENCH_incremental.json`` at the repo root.  Also runnable
standalone; the CI smoke keeps the equivalence assertion on every push::

    PYTHONPATH=src python benchmarks/bench_incremental.py --smoke \
        --output /tmp/BENCH_incremental.json
"""

from __future__ import annotations

import argparse
import json
import pathlib
import time
from dataclasses import replace

from repro.community.incremental import IncrementalClusteringConfig
from repro.core.config import ESharpConfig
from repro.core.esharp import ESharp
from repro.core.incremental import DeltaRefresh, DeltaRefreshConfig
from repro.core.offline import OfflinePipeline
from repro.querylog.generator import QueryLogGenerator
from repro.querylog.store import QueryLogStore
from repro.utils.stats import percentile
from repro.worldmodel.builder import build_world

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

REPEATS = 3
DELTA_FRACTION = 0.05
MIN_SPEEDUP = 5.0


def check_equivalence(config: ESharpConfig, base_fraction: float = 0.95) -> dict:
    """Delta refresh ≡ full rebuild on the union, in both churn regimes."""
    world = build_world(config.world)
    generator = QueryLogGenerator(world, config.querylog)
    impressions = list(generator.impressions(config.querylog.impressions))
    cut = int(len(impressions) * base_fraction)
    min_support = config.querylog.min_support

    def store_of(rows):
        store = QueryLogStore(min_support=min_support)
        store.extend(rows)
        return store

    union = OfflinePipeline(config).run(world=world, store=store_of(impressions))
    regimes = {}
    for churn_threshold, regime in ((1.0, "local"), (0.0, "fallback")):
        base = OfflinePipeline(config).run(
            world=world, store=store_of(impressions[:cut])
        )
        refresher = DeltaRefresh(
            config,
            base,
            DeltaRefreshConfig(
                incremental=IncrementalClusteringConfig(
                    churn_threshold=churn_threshold
                )
            ),
        )
        outcome = refresher.refresh(store_of(impressions[cut:]))
        if outcome.artifacts.domain_store.domains() != union.domain_store.domains():
            raise AssertionError(
                f"delta refresh diverged from the union rebuild ({regime})"
            )
        delta_edges = {
            (u, v): w for u, v, w in outcome.artifacts.weighted_graph.edges()
        }
        union_edges = {
            (u, v): w for u, v, w in union.weighted_graph.edges()
        }
        if delta_edges != union_edges:
            raise AssertionError(
                f"delta edges diverged from the union join ({regime})"
            )
        regimes[regime] = {
            "cluster_mode": outcome.stats.cluster_mode,
            "join_mode_pairs_recomputed": outcome.stats.recomputed_pairs,
            "churn": round(outcome.stats.churn, 4),
            "domains": outcome.stats.domains,
            "domains_reused": outcome.stats.domains_reused,
        }
    return {"identical": True, "delta_impressions": len(impressions) - cut,
            "regimes": regimes}


def run_incremental_bench(
    config: ESharpConfig,
    repeats: int = REPEATS,
    delta_fraction: float = DELTA_FRACTION,
) -> dict:
    """Time full vs delta refresh on one built system; returns the payload."""
    system = ESharp(config).build()
    log_config = config.querylog
    delta_size = max(1, int(log_config.impressions * delta_fraction))

    full_samples = []
    for _ in range(repeats):
        started = time.perf_counter()
        system.refresh_domains()
        full_samples.append(time.perf_counter() - started)

    delta_samples = []
    last_stats = None
    world = system.offline.world
    # warm the incremental state: the first delta after a full rebuild
    # pays a one-off re-seeding of the resumable join from the published
    # artifacts; a production deployment keeps the refresher warm, so the
    # timed samples measure steady-state delta refreshes
    warm = QueryLogGenerator(
        world, replace(log_config, seed=log_config.seed + 999)
    )
    system.refresh_domains_delta(
        list(warm.impressions(max(1, delta_size // 10)))
    )
    for index in range(repeats):
        generator = QueryLogGenerator(
            world, replace(log_config, seed=log_config.seed + 1000 + index)
        )
        delta = list(generator.impressions(delta_size))
        started = time.perf_counter()
        last_stats = system.refresh_domains_delta(delta)
        delta_samples.append(time.perf_counter() - started)

    full_p50 = percentile(full_samples, 0.5)
    delta_p50 = percentile(delta_samples, 0.5)
    return {
        "config": {
            "impressions": log_config.impressions,
            "delta_impressions": delta_size,
            "delta_fraction": delta_fraction,
            "repeats": repeats,
        },
        "full_refresh": {
            "p50_s": round(full_p50, 4),
            "p95_s": round(percentile(full_samples, 0.95), 4),
        },
        "delta_refresh": {
            "p50_s": round(delta_p50, 4),
            "p95_s": round(percentile(delta_samples, 0.95), 4),
            "speedup_p50": round(full_p50 / delta_p50, 2) if delta_p50 else None,
            "dirty_queries": last_stats.dirty_queries,
            "recomputed_pairs": last_stats.recomputed_pairs,
            "cluster_mode": last_stats.cluster_mode,
            "churn": round(last_stats.churn, 4),
            "domains_reused": last_stats.domains_reused,
            "domains": last_stats.domains,
            "stage_seconds": {
                stage: round(seconds, 4)
                for stage, seconds in last_stats.stage_seconds.items()
            },
        },
    }


def render(payload: dict) -> str:
    config = payload["config"]
    full = payload["full_refresh"]
    delta = payload["delta_refresh"]
    equivalence = payload["equivalence"]
    lines = [
        "INC1 — incremental domain refresh (delta ingest) vs full rebuild (s)",
        f"  corpus: {config['impressions']} impressions, delta = "
        f"{config['delta_impressions']} ({config['delta_fraction']:.1%})",
        f"  full refresh   p50={full['p50_s']:>8.4f}  p95={full['p95_s']:>8.4f}",
        f"  delta refresh  p50={delta['p50_s']:>8.4f}  p95={delta['p95_s']:>8.4f}"
        f"  speedup={delta['speedup_p50']}x",
        f"  last delta: {delta['dirty_queries']} dirty queries, cluster "
        f"{delta['cluster_mode']} (churn {delta['churn']}), "
        f"{delta['domains_reused']}/{delta['domains']} domains reused",
        f"  equivalence: identical={equivalence['identical']} over "
        f"{equivalence['delta_impressions']} delta impressions "
        f"(regimes: {', '.join(sorted(equivalence['regimes']))})",
    ]
    return "\n".join(lines)


def write_payload(payload: dict, path: pathlib.Path) -> None:
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def test_incremental_refresh(benchmark, results_dir):
    # a dedicated system: the bench mutates serving state (delta merges +
    # snapshot swaps), which must not leak into the shared session system
    config = ESharpConfig.standard(seed=2016)
    payload = benchmark.pedantic(
        run_incremental_bench, args=(config,), rounds=1, iterations=1
    )
    payload["equivalence"] = check_equivalence(ESharpConfig.small(seed=2016))
    assert payload["delta_refresh"]["speedup_p50"] >= MIN_SPEEDUP
    assert payload["equivalence"]["identical"]

    bench_path = REPO_ROOT / "BENCH_incremental.json"
    write_payload(payload, bench_path)

    from conftest import write_artifact

    write_artifact(
        results_dir,
        "incremental_refresh",
        render(payload) + f"\n[json written to {bench_path}]",
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale", choices=("small", "standard"), default="standard"
    )
    parser.add_argument("--seed", type=int, default=2016)
    parser.add_argument("--repeats", type=int, default=REPEATS)
    parser.add_argument(
        "--delta-fraction", type=float, default=DELTA_FRACTION
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small config, one repeat, no speedup bar — the CI "
        "equivalence check",
    )
    parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=REPO_ROOT / "BENCH_incremental.json",
    )
    args = parser.parse_args()

    scale = "small" if args.smoke else args.scale
    repeats = 1 if args.smoke else args.repeats
    config = (
        ESharpConfig.small(seed=args.seed)
        if scale == "small"
        else ESharpConfig.standard(seed=args.seed)
    )
    payload = run_incremental_bench(
        config, repeats=repeats, delta_fraction=args.delta_fraction
    )
    payload["equivalence"] = check_equivalence(ESharpConfig.small(seed=args.seed))
    if not args.smoke and scale == "standard":
        if payload["delta_refresh"]["speedup_p50"] < MIN_SPEEDUP:
            raise AssertionError(
                f"delta refresh must be >= {MIN_SPEEDUP}x faster than a "
                f"full rebuild, got {payload['delta_refresh']['speedup_p50']}x"
            )
    write_payload(payload, args.output)
    print(render(payload))
    print(f"[json written to {args.output}]")


if __name__ == "__main__":
    main()

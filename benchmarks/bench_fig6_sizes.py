"""FIG6 — distribution of community sizes.

Paper: Figure 6 buckets communities into 1 / 2–10 / 10–50 / >50 queries;
≈60% of communities hold 2–10 queries, ≈20% are orphans, very few exceed
50.  Expected shape here: modal bucket 2–10, a real orphan fraction, a
negligible >50 tail.
"""

from repro.eval.experiments import run_fig6
from repro.eval.reporting import render_histogram

from conftest import write_artifact


def test_fig6_size_distribution(benchmark, ctx, results_dir):
    result = benchmark(run_fig6, ctx)

    buckets = {b.label: b for b in result.buckets}
    assert buckets["2 to 10"].fraction >= 0.3          # modal-ish bucket
    assert buckets["1"].fraction >= 0.05               # orphans exist
    assert buckets["More than 50"].fraction <= 0.05    # almost no giants
    assert abs(sum(b.fraction for b in result.buckets) - 1.0) < 1e-9

    artifact = render_histogram(
        [b.label for b in result.buckets],
        [b.count for b in result.buckets],
        title=(
            "Figure 6 — distribution of community sizes "
            f"({result.total_communities} communities)"
        ),
    )
    write_artifact(results_dir, "fig6_sizes", artifact)

"""ABL3 — Pal & Counts' optional cluster filter (the step §3 discards).

The paper drops the Gaussian cluster-analysis filter because it is
"computationally expensive, and it is contrary to our objective of
improving recall".  This ablation measures exactly that trade on our
corpus: with the filter on, fewer experts are returned per query
(recall ↓) while impurity does not get worse (precision ~/↑).
"""

from repro.detector.clusterfilter import GaussianClusterFilter
from repro.detector.palcounts import PalCountsDetector
from repro.eval.reporting import render_table

from conftest import write_artifact


def test_ablation_cluster_filter(benchmark, ctx, results_dir):
    system = ctx.system
    plain = system.detector
    filtered = PalCountsDetector(
        system.platform,
        ranking=plain.ranking,
        normalization=plain.normalization,
        cluster_filter=GaussianClusterFilter(),
    )

    queries = [q for s in ctx.query_sets for q in s.queries][:120]

    def run_both():
        plain_counts, filtered_counts = [], []
        for query in queries:
            plain_counts.append(len(plain.detect(query)))
            filtered_counts.append(len(filtered.detect(query)))
        return plain_counts, filtered_counts

    plain_counts, filtered_counts = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )

    avg_plain = sum(plain_counts) / len(queries)
    avg_filtered = sum(filtered_counts) / len(queries)
    # the filter can only remove candidates
    assert all(f <= p for p, f in zip(plain_counts, filtered_counts))
    assert avg_filtered <= avg_plain

    # impurity via ground truth (crowd noise would only blur the ablation)
    def impurity_of(detector):
        flagged = total = 0
        for query in queries:
            topic = system.offline.world.primary_topic_for(query)
            for expert in detector.detect(query):
                total += 1
                user = system.platform.user(expert.user_id)
                if topic is None or not (
                    user.is_expert_on(topic.topic_id)
                    or (
                        user.persona == "broad_expert"
                        and topic.domain
                        in {
                            system.offline.world.topic(t).domain
                            for t in user.expert_topics
                        }
                    )
                ):
                    flagged += 1
        return flagged / total if total else 0.0

    impurity_plain = impurity_of(plain)
    impurity_filtered = impurity_of(filtered)
    assert impurity_filtered <= impurity_plain + 0.05

    artifact = render_table(
        ["Setting", "Avg experts/query", "True impurity"],
        [
            ("no filter (paper)", f"{avg_plain:.2f}", f"{impurity_plain:.3f}"),
            ("gaussian filter", f"{avg_filtered:.2f}",
             f"{impurity_filtered:.3f}"),
        ],
        title="ABL3 — effect of the discarded Pal & Counts cluster filter",
    )
    write_artifact(results_dir, "ablation_cluster_filter", artifact)

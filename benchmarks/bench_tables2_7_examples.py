"""TAB2–7 — example experts for representative queries.

Paper: Tables 2–7 show the top experts (screen name, description,
verified, followers) returned by the baseline and by e# for six example
queries; e#'s rows feature experts the baseline missed.  Expected shape
here: the same two-block table per query, with e# surfacing new accounts.
"""

from repro.eval.experiments import run_example_tables
from repro.eval.reporting import render_table

from conftest import write_artifact


def test_tables_2_to_7_example_experts(benchmark, ctx, results_dir):
    tables = benchmark(run_example_tables, ctx)

    assert len(tables) >= 4
    answered = [t for t in tables if t.baseline or t.esharp]
    assert answered, "every example query came back empty"

    blocks: list[str] = []
    for index, table in enumerate(tables, start=2):
        rows = []
        for algorithm, experts in (
            ("Baseline", table.baseline),
            ("e#", table.esharp),
        ):
            for expert in experts:
                rows.append(
                    (
                        algorithm,
                        expert.screen_name,
                        expert.description[:48],
                        str(expert.verified),
                        f"{expert.followers:,}",
                    )
                )
        blocks.append(
            render_table(
                ["Algorithm", "Screen Name", "Description", "Verified",
                 "Followers"],
                rows,
                title=f"Table {index} — selected experts for {table.query!r}",
            )
        )
    write_artifact(results_dir, "tables2_7_examples", "\n\n".join(blocks))

"""Benchmark fixtures.

One standard-scale e# system is built per session and shared by every
bench.  Each bench both *times* its driver (pytest-benchmark) and *renders*
the paper artifact it reproduces into ``benchmarks/results/<name>.txt`` so
the rows/series can be inspected after the run (EXPERIMENTS.md quotes
them).
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.core.config import ESharpConfig
from repro.eval.experiments import ExperimentContext

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: one seed for the whole benchmark session — every artifact comes from
#: the same simulated world, exactly as the paper's figures all come from
#: the same May-2014 log and Twitter corpus
BENCH_SEED = 2016


@pytest.fixture(scope="session")
def ctx() -> ExperimentContext:
    """The shared standard-scale system.

    Set ``REPRO_FROM_ARTIFACT=<dir>`` to warm-start the session from a
    ``python -m repro build --out`` artifact instead of rebuilding —
    every bench (including the serving-throughput workload) then runs
    unchanged against the loaded generation.
    """
    config = ESharpConfig.standard(seed=BENCH_SEED)
    artifact = os.environ.get("REPRO_FROM_ARTIFACT")
    if artifact:
        from repro.core.esharp import ESharp

        system = ESharp.from_artifact(artifact, expected_config=config)
        return ExperimentContext.build(config, system=system)
    return ExperimentContext.build(config)


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def write_artifact(results_dir: pathlib.Path, name: str, content: str) -> None:
    """Persist a rendered artifact and echo it for ``-s`` runs."""
    path = results_dir / f"{name}.txt"
    path.write_text(content + "\n", encoding="utf-8")
    print(f"\n{content}\n[written to {path}]")

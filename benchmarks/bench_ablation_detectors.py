"""ABL4 — e# is detector-agnostic (§7: "can work with any ER system").

Runs the 2×2 grid {Pal & Counts, TwitterRank-style graph ranking} ×
{baseline, e# expansion} over the sports query set.  The paper's claim
holds if expansion improves coverage and expert counts for *both*
detectors — the expansion layer is orthogonal to the ranking model.
"""

from repro.detector.graphrank import GraphRankDetector
from repro.eval.reporting import render_table
from repro.expansion.domainstore import DomainStore
from repro.expansion.expander import QueryExpander

from conftest import write_artifact


def test_ablation_detector_agnostic(benchmark, ctx, results_dir):
    system = ctx.system
    store = DomainStore.from_partition(system.offline.partition)
    queries = next(
        s for s in ctx.query_sets if s.name == "sports"
    ).queries

    detectors = {
        "pal-counts": system.detector,
        "graph-rank": GraphRankDetector(
            system.platform, ranking=system.detector.ranking
        ),
    }

    def evaluate():
        rows = []
        gains = {}
        for name, detector in detectors.items():
            expander = QueryExpander(store, detector)
            base_cov = base_n = esh_cov = esh_n = 0
            for query in queries:
                baseline = detector.detect(query)
                expanded = expander.detect(query).experts
                base_cov += bool(baseline)
                esh_cov += bool(expanded)
                base_n += len(baseline)
                esh_n += len(expanded)
            size = len(queries)
            rows.append(
                (name, "baseline", f"{base_cov / size:.2f}",
                 f"{base_n / size:.2f}")
            )
            rows.append(
                (name, "e#", f"{esh_cov / size:.2f}", f"{esh_n / size:.2f}")
            )
            gains[name] = (esh_cov - base_cov, esh_n - base_n)
        return rows, gains

    rows, gains = benchmark.pedantic(evaluate, rounds=1, iterations=1)

    # the §7 claim: expansion helps regardless of the detector underneath
    for name, (coverage_gain, count_gain) in gains.items():
        assert coverage_gain >= 0, f"{name}: expansion lost coverage"
        assert count_gain > 0, f"{name}: expansion found no extra experts"

    artifact = render_table(
        ["Detector", "Setting", "Coverage", "Avg experts/query"],
        rows,
        title="ABL4 — expansion gains across expertise detectors (sports)",
    )
    write_artifact(results_dir, "ablation_detectors", artifact)

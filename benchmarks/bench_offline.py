"""OFF1 — offline extraction + clustering latency: accumulator vs seed scan.

The offline stage of Figure 1 (log → similarity graph → communities) is
what ``refresh_domains`` re-runs to keep serving fresh, so its wall-clock
is a serving-freshness number, not just a batch number.  This bench
times the two similarity-join implementations against each other on the
same click vectors — the seed two-pass scan
(:func:`repro.simgraph.similarity.similarity_edges`) versus the one-pass
accumulator join (:mod:`repro.simgraph.accumulate`) — asserts their edge
dicts are **byte-identical**, and then times the full extraction and the
clustering stage that consumes it.

It also exercises the honest worker pool: a sharded multi-process join
must produce the identical edge set, and the reported ``workers`` must
be the pool actually used (on a single-core machine the pool is forced
so the sharded merge is still exercised, and the payload records that no
wall-clock win is expected there).

Writes ``BENCH_offline.json`` at the repo root so offline-stage speed
joins ``BENCH_detection.json`` and ``BENCH_serving.json`` in the
cross-PR perf trajectory.  The acceptance bar: the accumulator must win
the join by >= 5x p50 at the standard (benchmark) scale.

Also runnable standalone; the CI smoke keeps the equivalence assertion
running on every push::

    PYTHONPATH=src python benchmarks/bench_offline.py --smoke \
        --output /tmp/BENCH_offline.json
"""

from __future__ import annotations

import argparse
import json
import pathlib
import time

from repro.community.parallel import ParallelCommunityDetector
from repro.simgraph.accumulate import _cpu_budget, accumulator_similarity_join
from repro.simgraph.extract import extract_similarity_graph
from repro.simgraph.similarity import similarity_edges
from repro.simgraph.vectors import build_click_vectors
from repro.utils.stats import percentile

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

REPEATS = 5
PARALLEL_WORKERS = 4
MIN_JOIN_SPEEDUP = 5.0


def _time(callable_, repeats: int) -> tuple[list[float], object]:
    """Per-call wall-clock seconds; returns (samples, last result)."""
    samples, result = [], None
    for _ in range(repeats):
        started = time.perf_counter()
        result = callable_()
        samples.append(time.perf_counter() - started)
    return samples, result


def _assert_identical(expected: dict, actual: dict, label: str) -> None:
    """Byte-identical edge dicts: same keys, bitwise-equal floats."""
    if set(expected) != set(actual):
        missing = len(set(expected) - set(actual))
        extra = len(set(actual) - set(expected))
        raise AssertionError(
            f"{label}: edge sets differ (missing={missing} extra={extra})"
        )
    for key, weight in expected.items():
        if actual[key] != weight:
            raise AssertionError(
                f"{label}: weight mismatch on {key}: {weight!r} != {actual[key]!r}"
            )


def run_offline_bench(
    store,
    similarity_config,
    clustering_config,
    repeats: int = REPEATS,
    workers: int = PARALLEL_WORKERS,
) -> dict:
    """Time scan vs accumulator joins + clustering; returns the payload."""
    vectors = build_click_vectors(store)

    scan_s, scan_edges = _time(
        lambda: similarity_edges(vectors, similarity_config), repeats
    )
    join_s, join = _time(
        lambda: accumulator_similarity_join(vectors, similarity_config),
        repeats,
    )
    # the timings mean nothing unless the two joins agree to the byte
    _assert_identical(scan_edges, join.edges, "accumulator vs seed scan")

    extract_s, extraction = _time(
        lambda: extract_similarity_graph(store, similarity_config), repeats
    )
    if extraction.report.workers != extraction.join_stats.workers:
        raise AssertionError(
            "extraction report must carry the join's honest worker count"
        )

    cluster_s, partition = _time(
        lambda: ParallelCommunityDetector(
            extraction.multigraph, clustering_config
        ).run(),
        repeats,
    )

    # -- sharded pool: identical edges, honest pool accounting -------------
    # forced past the core clamp and the work-size gate so the sharded
    # merge is exercised and timed on every machine; production joins
    # engage the pool only when cores > 1 AND the join is large enough
    # to amortise fork + pickle (_MIN_POOL_OPS)
    cores = _cpu_budget()
    pool_workers = min(workers, cores) if cores > 1 else workers
    pool_s, pool_join = _time(
        lambda: accumulator_similarity_join(
            vectors,
            similarity_config,
            workers=pool_workers,
            force_workers=True,
        ),
        repeats,
    )
    _assert_identical(scan_edges, pool_join.edges, "sharded pool vs seed scan")

    scan_p50 = percentile(scan_s, 0.5)
    join_p50 = percentile(join_s, 0.5)
    pool_p50 = percentile(pool_s, 0.5)
    return {
        "config": {
            "impressions": store.impressions,
            "queries": join.stats.queries,
            "urls": join.stats.urls,
            "raw_bytes": store.raw_bytes,
            "repeats": repeats,
        },
        "join": {
            "scan_p50_s": round(scan_p50, 4),
            "scan_p95_s": round(percentile(scan_s, 0.95), 4),
            "accumulator_p50_s": round(join_p50, 4),
            "accumulator_p95_s": round(percentile(join_s, 0.95), 4),
            "speedup_p50": round(scan_p50 / join_p50, 2) if join_p50 else None,
            "backend": join.stats.backend,
            "accumulate_ops": join.stats.accumulate_ops,
            "candidate_pairs": join.stats.candidate_pairs,
            "edges": join.stats.edges,
            "byte_identical": True,
        },
        "extraction": {
            "p50_s": round(percentile(extract_s, 0.5), 4),
            "workers_reported": extraction.report.workers,
            "vertices": extraction.multigraph.vertex_count,
            "bytes_read": extraction.report.bytes_read,
            "bytes_written": extraction.report.bytes_written,
        },
        "clustering": {
            "p50_s": round(percentile(cluster_s, 0.5), 4),
            "communities": partition.community_count(),
        },
        "parallel": {
            "cores": cores,
            "workers_requested": pool_workers,
            "workers_used": pool_join.stats.workers,
            "shards": pool_join.stats.shards,
            "forced": True,
            "p50_s": round(pool_p50, 4),
            "speedup_vs_serial": (
                round(join_p50 / pool_p50, 2) if pool_p50 else None
            ),
            "byte_identical": True,
        },
    }


def render(payload: dict) -> str:
    config = payload["config"]
    join = payload["join"]
    parallel = payload["parallel"]
    lines = [
        "OFF1 — offline extraction latency (s), seed scan vs accumulator join",
        f"  log: {config['impressions']} impressions → {config['queries']} "
        f"queries / {config['urls']} urls "
        f"({join['accumulate_ops']:,} accumulate ops, "
        f"{join['candidate_pairs']:,} candidate pairs, {join['edges']:,} edges)",
        f"  join         scan p50={join['scan_p50_s']:>8.4f} "
        f"accumulator p50={join['accumulator_p50_s']:>8.4f} "
        f"speedup={join['speedup_p50']}x [{join['backend']}]",
        f"  extraction   p50={payload['extraction']['p50_s']:>8.4f} "
        f"(workers={payload['extraction']['workers_reported']})",
        f"  clustering   p50={payload['clustering']['p50_s']:>8.4f} "
        f"({payload['clustering']['communities']} communities)",
        f"  pool         p50={parallel['p50_s']:>8.4f} "
        f"workers={parallel['workers_used']}/{parallel['cores']} cores "
        f"speedup={parallel['speedup_vs_serial']}x (forced past the "
        "work-size gate; no win expected below ~8M ops or on 1 core)",
    ]
    return "\n".join(lines)


def write_payload(payload: dict, path: pathlib.Path) -> None:
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def test_offline_latency(benchmark, ctx, results_dir):
    system = ctx.system
    payload = benchmark.pedantic(
        run_offline_bench,
        args=(
            system.offline.store,
            system.config.similarity,
            system.config.clustering,
        ),
        rounds=1,
        iterations=1,
    )
    assert payload["join"]["speedup_p50"] >= MIN_JOIN_SPEEDUP
    assert payload["join"]["byte_identical"]
    # honest accounting: the multi-worker join reports its real pool size
    assert payload["parallel"]["workers_used"] == min(
        payload["parallel"]["workers_requested"], payload["parallel"]["shards"]
    )
    assert payload["parallel"]["byte_identical"]

    bench_path = REPO_ROOT / "BENCH_offline.json"
    write_payload(payload, bench_path)

    from conftest import write_artifact

    write_artifact(
        results_dir,
        "offline_latency",
        render(payload) + f"\n[json written to {bench_path}]",
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", choices=("small", "standard"), default="standard")
    parser.add_argument("--seed", type=int, default=2016)
    parser.add_argument("--repeats", type=int, default=REPEATS)
    parser.add_argument("--workers", type=int, default=PARALLEL_WORKERS)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny config, one repeat — the CI equivalence check",
    )
    parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=REPO_ROOT / "BENCH_offline.json",
    )
    args = parser.parse_args()

    from repro.core.config import ESharpConfig
    from repro.querylog.generator import generate_query_log
    from repro.worldmodel.builder import build_world

    scale = "small" if args.smoke else args.scale
    repeats = 1 if args.smoke else args.repeats
    config = (
        ESharpConfig.small(seed=args.seed)
        if scale == "small"
        else ESharpConfig.standard(seed=args.seed)
    )
    world = build_world(config.world)
    store = generate_query_log(world, config.querylog)
    payload = run_offline_bench(
        store,
        config.similarity,
        config.clustering,
        repeats=repeats,
        workers=args.workers,
    )
    write_payload(payload, args.output)
    print(render(payload))
    print(f"[json written to {args.output}]")


if __name__ == "__main__":
    main()

"""ABL5 — expansion breadth vs disambiguation risk (§6.2.3).

The paper expands with the *entire* matched community and accepts the
occasional disambiguation error.  This ablation compares that choice
against two narrower policies (top-k most similar terms; shared-surface
terms only) on coverage, experts per query, and ground-truth impurity.

Expected shape: full expansion maximises recall; narrowing trims recall;
impurity differences stay small — which is exactly why the paper could
afford the simple policy.
"""

from repro.eval.reporting import render_table
from repro.expansion.domainstore import DomainStore
from repro.expansion.expander import QueryExpander
from repro.expansion.policies import POLICIES

from conftest import write_artifact


def test_ablation_expansion_policies(benchmark, ctx, results_dir):
    system = ctx.system
    world = system.offline.world
    store = DomainStore.from_partition(system.offline.partition)
    weighted = system.offline.weighted_graph
    queries = [q for s in ctx.query_sets for q in s.queries][:120]

    def relevant(query: str, user_id: int) -> bool:
        topic = world.primary_topic_for(query)
        if topic is None:
            return False
        user = system.platform.user(user_id)
        if user.is_expert_on(topic.topic_id):
            return True
        return user.persona == "broad_expert" and topic.domain in {
            world.topic(t).domain for t in user.expert_topics
        }

    def evaluate():
        results = {}
        for name, policy in POLICIES.items():
            expander = QueryExpander(
                store, system.detector, policy=policy, graph=weighted
            )
            covered = experts_total = flagged = 0
            for query in queries:
                experts = expander.detect(query).experts
                covered += bool(experts)
                experts_total += len(experts)
                flagged += sum(
                    1 for e in experts if not relevant(query, e.user_id)
                )
            results[name] = (
                covered / len(queries),
                experts_total / len(queries),
                flagged / experts_total if experts_total else 0.0,
            )
        return results

    results = benchmark.pedantic(evaluate, rounds=1, iterations=1)

    # full expansion is the recall frontier
    assert results["full"][1] >= results["top-k"][1]
    assert results["full"][1] >= results["shared-token"][1]
    assert results["full"][0] >= results["shared-token"][0]

    artifact = render_table(
        ["Policy", "Coverage", "Avg experts/query", "True impurity"],
        [
            (name, f"{cov:.2f}", f"{avg:.2f}", f"{imp:.3f}")
            for name, (cov, avg, imp) in results.items()
        ],
        title="ABL5 — expansion policies: breadth vs disambiguation risk",
    )
    write_artifact(results_dir, "ablation_expansion_policies", artifact)
